"""Core-operation counters (Table I of the paper).

The paper tallies, per party and mechanism, four operation classes:

* ``ZKP`` — zero-knowledge proofs (counting one per proof object;
  the paper does the same, e.g. "(8+i) ZKP" for PPMSdec's JO),
* ``Enc`` — encryptions *and* signature generations,
* ``Dec`` — decryptions *and* signature verifications,
* ``H``  — standalone hash invocations.

The protocol implementations call :meth:`OpCounter.record` at every
operation site, so the measured table can be printed next to the
paper's claimed rows (see ``benchmarks/bench_table1_opcounts.py``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.crypto import fastexp

__all__ = [
    "OpCounter",
    "OPS",
    "format_table",
    "fastexp_stats",
    "format_fastexp_stats",
    "publish_fastexp",
]

OPS = ("ZKP", "Enc", "Dec", "H")


@dataclass
class OpCounter:
    """Per-party operation tally."""

    counts: dict[str, dict[str, int]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(int))
    )

    def record(self, party: str, op: str, n: int = 1) -> None:
        """Add *n* operations of class *op* for *party*."""
        if op not in OPS:
            raise ValueError(f"unknown op class {op!r}; expected one of {OPS}")
        if n < 0:
            raise ValueError("operation count cannot be negative")
        self.counts[party][op] += n

    def get(self, party: str, op: str) -> int:
        return self.counts.get(party, {}).get(op, 0)

    def party_row(self, party: str) -> dict[str, int]:
        """All op counts for one party (zero-filled)."""
        return {op: self.get(party, op) for op in OPS}

    def merged(self, other: "OpCounter") -> "OpCounter":
        """A new counter combining both tallies."""
        out = OpCounter()
        for src in (self, other):
            for party, ops in src.counts.items():
                for op, n in ops.items():
                    out.counts[party][op] += n
        return out

    def reset(self) -> None:
        self.counts.clear()

    def summary(self, party: str) -> str:
        """Compact Table-I-style cell, e.g. ``"9ZKP+4Enc+1Dec+1H"``."""
        parts = [f"{self.get(party, op)}{op}" for op in OPS if self.get(party, op)]
        return "+".join(parts) if parts else "0"


def fastexp_stats() -> dict[str, dict[str, int]]:
    """Aggregated fixed-base table-cache counters, keyed by cache name.

    A thin re-export of :func:`repro.crypto.fastexp.stats` so perf
    dashboards and benchmarks pull every counter — op tallies *and*
    cache hit rates — from one metrics module.  Rows are e.g.
    ``fastexp.int`` (Schnorr-group comb tables), ``tate.pair``
    (precomputed Miller loops) and ``tate.exp`` (curve-point combs),
    each with ``hits``/``misses``/``builds``/``evictions``/
    ``bypasses``/``attached``/``tables`` (``attached`` counts tables
    adopted from a shared blob rather than built locally).
    """
    return fastexp.stats()


def publish_fastexp(registry=None) -> None:
    """Mirror the fastexp cache counters into a metrics registry.

    The caches keep their own monotonic tallies (they predate the
    registry and must stay import-light), so export is pull-style:
    each call overwrites gauges ``repro_fastexp_<counter>{cache=...}``
    with the current totals.  With *registry* ``None`` the process
    default from :func:`repro.obs.get_default` is used.
    """
    from repro import obs

    if registry is None:
        registry = obs.get_default().registry
    for cache, row in fastexp.stats().items():
        for counter, value in row.items():
            registry.gauge(
                f"repro_fastexp_{counter}",
                f"fastexp table-cache {counter} (monotonic total)",
                cache=cache,
            ).set(value)


def format_fastexp_stats(stats: dict[str, dict[str, int]] | None = None) -> str:
    """Render the cache counters as an ASCII table (current when None)."""
    if stats is None:
        stats = fastexp_stats()
    cols = ("hits", "misses", "builds", "evictions", "bypasses", "attached",
            "tables")
    header = f"{'cache':<14}" + "".join(f"{c:>11}" for c in cols) + f"{'hit_rate':>10}"
    lines = [header, "-" * len(header)]
    for name in sorted(stats):
        row = stats[name]
        looked = row["hits"] + row["misses"]
        rate = row["hits"] / looked if looked else 0.0
        lines.append(
            f"{name:<14}"
            + "".join(f"{row[c]:>11}" for c in cols)
            + f"{rate:>10.2%}"
        )
    return "\n".join(lines)


def format_table(counter: OpCounter, parties: list[str], title: str = "") -> str:
    """Render an ASCII table of per-party operation counts."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'party':<8}" + "".join(f"{op:>8}" for op in OPS)
    lines.append(header)
    lines.append("-" * len(header))
    for party in parties:
        row = counter.party_row(party)
        lines.append(f"{party:<8}" + "".join(f"{row[op]:>8}" for op in OPS))
    return "\n".join(lines)

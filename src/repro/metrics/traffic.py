"""Communication-traffic accounting (Table II of the paper).

Every message routed through :class:`repro.net.transport.Transport` is
serialized by the canonical codec and its byte length is charged to the
sender's *output* and the receiver's *input*.  Table II reports exactly
these quantities per party plus the total over all parties.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["TrafficMeter", "format_traffic_table"]


@dataclass
class TrafficMeter:
    """Bytes sent/received per party."""

    sent: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    received: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    messages: int = 0

    def record(self, sender: str, receiver: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("message size cannot be negative")
        self.sent[sender] += nbytes
        self.received[receiver] += nbytes
        self.messages += 1

    def output_bytes(self, party: str) -> int:
        """Table II's "Output" column for *party*."""
        return self.sent.get(party, 0)

    def input_bytes(self, party: str) -> int:
        """Table II's "Input" column for *party*."""
        return self.received.get(party, 0)

    def total_bytes(self) -> int:
        """Total unidirectional traffic (each message counted once)."""
        return sum(self.sent.values())

    def total_kb(self) -> float:
        return self.total_bytes() / 1024.0

    def reset(self) -> None:
        self.sent.clear()
        self.received.clear()
        self.messages = 0


def format_traffic_table(meter: TrafficMeter, parties: list[str], title: str = "") -> str:
    """Render a Table-II-style ASCII table (input/output bytes, total kB)."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'party':<8}{'input (B)':>12}{'output (B)':>12}"
    lines.append(header)
    lines.append("-" * len(header))
    for party in parties:
        lines.append(
            f"{party:<8}{meter.input_bytes(party):>12}{meter.output_bytes(party):>12}"
        )
    lines.append(f"{'total':<8}{meter.total_kb():>23.2f} kB")
    return "\n".join(lines)

"""One-shot experiment report: every paper artifact at CLI scale.

:func:`generate_report` runs reduced-scale versions of all six
evaluation artifacts (Figs. 2–5, Tables I–II) plus the privacy
experiments, and renders a single markdown document with measured
numbers next to the paper's claims.  It is the programmatic counterpart
of ``EXPERIMENTS.md`` — run it on your machine to get *your* numbers:

    repro-market report --out my_experiments.md

Scale knobs keep the full report in the minutes range; the pytest
benchmark suite remains the full-fidelity path.
"""

from __future__ import annotations

import random
import time

from repro.attacks.linkage import denomination_experiment
from repro.attacks.timing import timing_experiment
from repro.core.ppms_dec import PPMSdecSession
from repro.core.ppms_pbs import PPMSpbsSession
from repro.crypto.cl_sig import cl_blind_issue, cl_keygen
from repro.ecash.dec import begin_withdrawal, finish_withdrawal, setup
from repro.ecash.spend import create_spend, verify_spend
from repro.ecash.tree import NodeId, derive_key_chain
from repro.metrics.series import FigureData, render_table
from repro.metrics.timing import time_operation

__all__ = ["generate_report"]


def _fig2(rng: random.Random, out: list[str], *, max_level: int, chain_bits: int) -> None:
    fig = FigureData(title="Fig. 2 — setup time vs level (seconds)",
                     xlabel="L", ylabel="s")
    search = fig.new_series("chain-search")
    offline = fig.new_series("precomputed")
    for level in range(max_level + 1):
        t0 = time.perf_counter()
        setup(level, rng, use_known_chain=False, chain_bits=chain_bits,
              security_bits=32, real_pairing=False)
        search.add(level, time.perf_counter() - t0)
        t0 = time.perf_counter()
        setup(level, rng, use_known_chain=True, security_bits=32, real_pairing=False)
        offline.add(level, time.perf_counter() - t0)
    out.append("## Fig. 2\n\nPaper: setup explodes once the chain length "
               "grows; offline (precomputed chain) setup stays flat.\n")
    out.append("```\n" + render_table(fig, precision=4) + "\n```\n")


def _fig3_fig4(rng: random.Random, out: list[str], *, level: int) -> None:
    params = setup(level, rng, security_bits=48, edge_rounds=8)
    bank_kp = cl_keygen(params.backend, rng)
    secret, request = begin_withdrawal(params, rng)
    signature = cl_blind_issue(params.backend, bank_kp, request, rng)
    coin = finish_withdrawal(params, bank_kp.public, secret, signature)

    fig3 = FigureData(title=f"Fig. 3 — spend+verify per node level (ms, L={level})",
                      xlabel="Ni", ylabel="ms")
    series = fig3.new_series("spend+verify")
    fig4 = FigureData(title=f"Fig. 4 — path derivation per node level (ms, L={level})",
                      xlabel="Ni", ylabel="ms")
    deriv = fig4.new_series("derive")
    for ni in range(level + 1):
        node = NodeId(ni, 0)
        r = time_operation(
            lambda: verify_spend(params, bank_kp.public, create_spend(
                params, bank_kp.public, coin.secret, coin.signature, node, rng)),
            repeats=3, warmup=0,
        )
        series.add(ni, r.mean_ms)
        r = time_operation(lambda: derive_key_chain(params.tower, coin.secret, node),
                           repeats=30, warmup=1)
        deriv.add(ni, r.mean_ms)
    out.append("## Fig. 3\n\nPaper: grows with node depth, 'acceptable' "
               "rate (affine in Ni).\n")
    out.append("```\n" + render_table(fig3) + "\n```\n")
    out.append("## Fig. 4\n\nPaper: deeper breaking node ⇒ higher cost, "
               "small dynamic range.\n")
    out.append("```\n" + render_table(fig4) + "\n```\n")


def _fig5_tables(rng: random.Random, out: list[str], *, rounds: int) -> None:
    params = setup(3, rng, security_bits=64, edge_rounds=8)

    t0 = time.perf_counter()
    dec = PPMSdecSession(params, rng, rsa_bits=768)
    jo = dec.new_job_owner("jo", funds=8 * rounds)
    for i in range(rounds):
        dec.run_job(jo, [dec.new_participant(f"sp-{i}")], payment=1 + i % 8)
    dec_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    pbs = PPMSpbsSession(rng, rsa_bits=768)
    jo_p = pbs.new_job_owner(funds=rounds)
    for _ in range(rounds):
        pbs.run_job(jo_p, [pbs.new_participant()])
    pbs_time = time.perf_counter() - t0

    out.append("## Fig. 5\n")
    out.append(f"- PPMSdec: {rounds} rounds in {dec_time:.2f}s "
               f"({dec_time / rounds * 1000:.0f} ms/round)")
    out.append(f"- PPMSpbs: {rounds} rounds in {pbs_time:.2f}s "
               f"({pbs_time / rounds * 1000:.0f} ms/round)")
    out.append(f"- slope ratio ≈ {dec_time / pbs_time:.1f}× "
               "(paper's plot: PPMSpbs far below PPMSdec)\n")

    out.append("## Table I — operation counts (measured, whole run)\n")
    out.append("```")
    for name, counter in (("PPMSdec", dec.counter), ("PPMSpbs", pbs.counter)):
        out.append(f"[{name}]  " + "  ".join(
            f"{party}: {counter.summary(party)}" for party in ("JO", "SP", "MA")
        ))
    out.append("```")
    out.append("Paper (per round, minimal point): PPMSdec JO=(8+i)ZKP+4Enc+1Dec+1H, "
               "SP=4Dec, MA=1Enc; PPMSpbs JO=2Enc+1H, SP=2Dec+3H, MA=1Dec+2H.\n")

    out.append("## Table II — traffic (measured, whole run)\n")
    out.append("```")
    for name, meter in (("PPMSdec", dec.transport.meter), ("PPMSpbs", pbs.transport.meter)):
        per_round = meter.total_bytes() / rounds / 1024
        out.append(f"[{name}]  total {meter.total_kb():.2f} kB "
                   f"({per_round:.2f} kB/round)")
    out.append("```")
    out.append("Paper (one round): PPMSdec 11.27 kB, PPMSpbs 2.14 kB.\n")


def _privacy(rng: random.Random, out: list[str], *, trials: int) -> None:
    out.append("## Privacy experiments\n")
    out.append("Denomination attack (L=6, 12 jobs):\n\n```")
    out.append(f"{'strategy':>9} {'ident-rate':>11} {'anon-set':>9}")
    for strategy in ("none", "pcba", "epcba", "unitary"):
        s = denomination_experiment(strategy, level=6, n_jobs=12,
                                    trials=trials, rng=rng)
        out.append(f"{strategy:>9} {s.identification_rate:>10.1%} "
                   f"{s.mean_anonymity_set:>9.2f}")
    out.append("```\n")
    t = timing_experiment(participants=15, trials=max(20, trials // 5), rng=rng)
    out.append(f"Deposit timing attack: immediate deposits linked "
               f"{t.immediate_accuracy:.0%}, randomized waits "
               f"{t.randomized_accuracy:.0%} (chance {1/15:.0%}).\n")

    from repro.attacks.combined import combined_experiment

    out.append("Combined adversary (defence in depth):\n\n```")
    out.append(f"{'defences':<20} {'timing':>8} {'denom':>8} {'combined':>10}")
    for strategy, waits, label in (
        (None, False, "none"),
        (None, True, "waits only"),
        ("unitary", False, "break only"),
        ("unitary", True, "both"),
    ):
        r = combined_experiment(level=6, participants=10,
                                trials=max(10, trials // 10), rng=rng,
                                break_strategy=strategy, random_waits=waits)
        out.append(f"{label:<20} {r.timing_only:>7.0%} "
                   f"{r.denomination_only:>7.0%} {r.combined:>9.0%}")
    out.append("```\n")


def generate_report(
    *,
    seed: int = 2015,
    fig2_max_level: int = 3,
    fig2_chain_bits: int = 12,
    fig3_level: int = 4,
    fig5_rounds: int = 8,
    privacy_trials: int = 200,
) -> str:
    """Run every experiment at reduced scale and render markdown."""
    rng = random.Random(seed)
    out: list[str] = [
        "# Experiment report (generated)",
        "",
        f"Seed {seed}; reduced-scale run — see `pytest benchmarks/ "
        "--benchmark-only` for full fidelity.",
        "",
    ]
    _fig2(rng, out, max_level=fig2_max_level, chain_bits=fig2_chain_bits)
    _fig3_fig4(rng, out, level=fig3_level)
    _fig5_tables(rng, out, rounds=fig5_rounds)
    _privacy(rng, out, trials=privacy_trials)
    return "\n".join(out)

"""Per-request latency histograms and SLO evaluation.

The serving layer (:mod:`repro.service`) is judged the way production
systems are: not by the mean, but by the tail.  A
:class:`LatencyRecorder` accumulates per-request durations cheaply
(append-only; sorting is deferred to report time) and summarizes them
into the quantiles operators page on — p50/p95/p99 — plus throughput
over the recorded span.

:class:`SLOTarget` states an explicit latency/throughput contract and
:meth:`SLOTarget.check` returns findings (in the style of
:class:`repro.core.ledger.AuditReport`) rather than raising, so load
reports can print *which* objective was missed and by how much.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "LatencyRecorder",
    "LatencyReport",
    "SLOTarget",
    "format_latency_report",
]


def _quantile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation quantile of pre-sorted data (0 <= q <= 1)."""
    if not sorted_values:
        raise ValueError("no samples recorded")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    pos = q * (len(sorted_values) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return sorted_values[lo]
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def _nearest_rank(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile: the ceil(q*n)-th order statistic.

    Interpolation on a tail quantile of a small sample *invents* a
    latency between the worst two observations — a p99 of 10 samples
    reporting a value no request ever experienced, and one that
    understates the observed worst case.  Nearest-rank always returns
    an actual sample, so "p99" on small n degrades honestly to "the
    slowest request" instead of a fabricated midpoint.
    """
    if not sorted_values:
        raise ValueError("no samples recorded")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    rank = math.ceil(q * len(sorted_values))
    return sorted_values[max(rank, 1) - 1]


@dataclass(frozen=True)
class LatencyReport:
    """Summary of a recorded latency distribution (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float
    elapsed: float

    @property
    def throughput(self) -> float:
        """Completed requests per second over the recorded span."""
        if self.elapsed <= 0:
            return float("inf") if self.count else 0.0
        return self.count / self.elapsed

    @property
    def p50_ms(self) -> float:
        return self.p50 * 1e3

    @property
    def p95_ms(self) -> float:
        return self.p95 * 1e3

    @property
    def p99_ms(self) -> float:
        return self.p99 * 1e3


class LatencyRecorder:
    """Append-only latency accumulator with deferred aggregation."""

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._span_start: float | None = None
        self._span_end: float | None = None

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        self._samples.append(seconds)

    def mark_span(self, start: float, end: float) -> None:
        """Set the observation window used for throughput (widening only)."""
        if end < start:
            raise ValueError("span end precedes start")
        self._span_start = start if self._span_start is None else min(self._span_start, start)
        self._span_end = end if self._span_end is None else max(self._span_end, end)

    def report(self) -> LatencyReport:
        if not self._samples:
            raise ValueError("no samples recorded")
        data = sorted(self._samples)
        if self._span_start is not None and self._span_end is not None:
            elapsed = self._span_end - self._span_start
        else:
            elapsed = sum(data)
        # below 100 samples, interpolating p99 manufactures a latency
        # between the two slowest requests; report an order statistic
        quantile = _quantile if len(data) >= 100 else _nearest_rank
        return LatencyReport(
            count=len(data),
            mean=sum(data) / len(data),
            p50=quantile(data, 0.50),
            p95=quantile(data, 0.95),
            p99=quantile(data, 0.99),
            maximum=data[-1],
            elapsed=elapsed,
        )


@dataclass(frozen=True)
class SLOTarget:
    """A latency/throughput service-level objective.

    Any objective left ``None`` is not evaluated.  Latencies are in
    seconds, throughput in requests per second.
    """

    p50: float | None = None
    p95: float | None = None
    p99: float | None = None
    min_throughput: float | None = None

    def check(self, report: LatencyReport) -> tuple[str, ...]:
        """Findings for every missed objective (empty tuple == SLO met)."""
        findings: list[str] = []
        for name, target in (("p50", self.p50), ("p95", self.p95), ("p99", self.p99)):
            if target is None:
                continue
            measured = getattr(report, name)
            if measured > target:
                findings.append(
                    f"{name} {measured * 1e3:.2f} ms exceeds objective "
                    f"{target * 1e3:.2f} ms"
                )
        if self.min_throughput is not None and report.throughput < self.min_throughput:
            findings.append(
                f"throughput {report.throughput:.1f} req/s below objective "
                f"{self.min_throughput:.1f} req/s"
            )
        return tuple(findings)


def format_latency_report(report: LatencyReport, *, title: str = "latency") -> str:
    """Render a report as the fixed-width block the examples print."""
    lines = [
        f"[{title}]",
        f"  requests   {report.count}",
        f"  throughput {report.throughput:.1f} req/s",
        f"  mean       {report.mean * 1e3:.2f} ms",
        f"  p50        {report.p50_ms:.2f} ms",
        f"  p95        {report.p95_ms:.2f} ms",
        f"  p99        {report.p99_ms:.2f} ms",
        f"  max        {report.maximum * 1e3:.2f} ms",
    ]
    return "\n".join(lines)

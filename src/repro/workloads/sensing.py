"""Synthetic sensing-data generators.

The paper motivates the market with health care, intelligent
transportation and environmental monitoring (Section I).  These
generators produce realistic payload bytes for those three domains so
examples and benches exercise the protocols with data of plausible
shape and size — the substitution for the real deployments we obviously
cannot run (see DESIGN.md §3).

All generators take a ``numpy.random.Generator`` for reproducibility
and return ``bytes`` ready to drop into a
:class:`~repro.core.market.DataReport`.
"""

from __future__ import annotations

import numpy as np

from repro.net.codec import encode

__all__ = [
    "noise_map_reading",
    "health_telemetry",
    "transit_trace",
    "GENERATORS",
]


def noise_map_reading(rng: np.random.Generator, *, samples: int = 30) -> bytes:
    """Urban noise-mapping payload (cf. Ear-Phone, paper ref [5]).

    A short walk of GPS fixes with A-weighted decibel readings: ambient
    city noise is log-normal-ish around 60 dB with occasional spikes.
    """
    base_lat, base_lon = 32.05, 118.78  # Nanjing, as a nod to the authors
    lats = base_lat + rng.normal(0, 0.005, samples)
    lons = base_lon + rng.normal(0, 0.005, samples)
    db = np.clip(rng.normal(62.0, 7.0, samples) + rng.exponential(2.0, samples), 35, 110)
    t0 = float(rng.integers(1_400_000_000, 1_500_000_000))
    return encode(
        {
            "kind": "noise-map",
            "t0": int(t0),
            "fix": [
                [round(float(la), 6), round(float(lo), 6), round(float(d), 1)]
                for la, lo, d in zip(lats, lons, db)
            ],
        }
    )


def health_telemetry(rng: np.random.Generator, *, hours: int = 24) -> bytes:
    """Daily physical-status payload (the HIV-study example, Section I).

    Hourly heart rate, step count and skin temperature.  This is the
    data whose *submitter identity* the mechanisms exist to protect.
    """
    hr = np.clip(rng.normal(72, 9, hours) + 25 * (rng.random(hours) < 0.1), 45, 180)
    steps = rng.poisson(450, hours) * (rng.random(hours) > 0.3)
    temp = np.clip(rng.normal(33.4, 0.6, hours), 30.0, 39.0)
    return encode(
        {
            "kind": "health",
            "hr": [int(x) for x in hr],
            "steps": [int(x) for x in steps],
            "temp": [round(float(x), 1) for x in temp],
        }
    )


def transit_trace(rng: np.random.Generator, *, stops: int = 12) -> bytes:
    """Cooperative transit-tracking payload (paper ref [3]).

    Arrival times and dwell times along a bus route.
    """
    gaps = rng.exponential(180, stops)  # seconds between stops
    dwell = rng.exponential(25, stops)
    t = np.cumsum(gaps + dwell)
    return encode(
        {
            "kind": "transit",
            "route": int(rng.integers(1, 99)),
            "arrivals": [int(x) for x in t],
            "dwell": [int(x) for x in dwell],
        }
    )


#: registry used by examples / benches to sweep domains
GENERATORS = {
    "noise": noise_map_reading,
    "health": health_telemetry,
    "transit": transit_trace,
}

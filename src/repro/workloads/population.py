"""Market-population generators: jobs, payments, participation.

Produces the synthetic market compositions the benches and linkage
experiments sweep over.  Payment distributions matter for the
denomination attack: markets where many jobs share payment values give
SPs larger anonymity sets for free, while distinct-payment markets are
the attack's best case — both shapes are available here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["MarketSpec", "JobSpec", "generate_market"]


@dataclass(frozen=True)
class JobSpec:
    """One job to run through a mechanism."""

    description: str
    payment: int
    n_participants: int


@dataclass(frozen=True)
class MarketSpec:
    """A full synthetic market composition."""

    jobs: tuple[JobSpec, ...]
    level: int

    @property
    def total_payout(self) -> int:
        return sum(j.payment * j.n_participants for j in self.jobs)


_DOMAINS = ("noise mapping", "health telemetry", "transit tracking",
            "air quality", "road surface", "crowd density")


def generate_market(
    rng: random.Random,
    *,
    level: int,
    n_jobs: int,
    participants_per_job: tuple[int, int] = (1, 4),
    payment_mode: str = "uniform",
) -> MarketSpec:
    """Sample a market of *n_jobs* jobs for a level-*level* coin tree.

    ``payment_mode``:

    * ``"uniform"`` — payments i.i.d. uniform in ``[1, 2^level]``
      (the attack experiments' default);
    * ``"distinct"`` — payments drawn without replacement — the
      denomination attack's best case;
    * ``"unitary"`` — all payments 1 (the PPMSpbs market).
    """
    top = 1 << level
    if payment_mode == "uniform":
        payments = [rng.randint(1, top) for _ in range(n_jobs)]
    elif payment_mode == "distinct":
        if n_jobs > top:
            raise ValueError("cannot draw more distinct payments than 2^level")
        payments = rng.sample(range(1, top + 1), n_jobs)
    elif payment_mode == "unitary":
        payments = [1] * n_jobs
    else:
        raise ValueError(f"unknown payment mode {payment_mode!r}")
    lo, hi = participants_per_job
    jobs = tuple(
        JobSpec(
            description=f"{rng.choice(_DOMAINS)} #{i}",
            payment=payments[i],
            n_participants=rng.randint(lo, hi),
        )
        for i in range(n_jobs)
    )
    return MarketSpec(jobs=jobs, level=level)

"""Synthetic workloads: sensing payloads and market populations."""

from repro.workloads.arrivals import bursty_arrivals, diurnal_arrivals, poisson_arrivals
from repro.workloads.population import JobSpec, MarketSpec, generate_market
from repro.workloads.sensing import (
    GENERATORS,
    health_telemetry,
    noise_map_reading,
    transit_trace,
)

__all__ = [
    "JobSpec",
    "MarketSpec",
    "generate_market",
    "GENERATORS",
    "noise_map_reading",
    "health_telemetry",
    "transit_trace",
    "poisson_arrivals",
    "bursty_arrivals",
    "diurnal_arrivals",
]

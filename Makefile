# Convenience targets for the repro project.

PYTHON ?= python

.PHONY: install dev test bench bench-json service-bench fastexp-bench batchverify-bench report examples lint-imports check-docs test-faults coverage obs-demo cluster-demo cluster-smoke campaign campaign-smoke clean

# Coverage floor enforced by `make coverage` and the CI coverage job.
# Measured line coverage of src/repro under the full suite is ~96%;
# the floor leaves headroom for tool and version skew, not for rot.
COV_FLOOR ?= 90

install:
	$(PYTHON) -m pip install -e .

dev:
	$(PYTHON) -m pip install -e '.[dev]'

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q -p no:randomly -k "not Stateful and not hypothesis"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-json:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only --benchmark-json=bench_results.json

service-bench:
	$(PYTHON) -m pytest benchmarks/bench_service_throughput.py --benchmark-only --benchmark-json=bench_results.json

fastexp-bench:
	$(PYTHON) -m pytest benchmarks/bench_fastexp.py --benchmark-only --benchmark-json=BENCH_fastexp.json

# Batch-size -> throughput curve for RLC batch verification plus the
# shared-table worker spawn comparison; merges into BENCH_fastexp.json.
batchverify-bench:
	$(PYTHON) -m pytest benchmarks/bench_batchverify.py --benchmark-only --benchmark-json=BENCH_batchverify.json

lint-imports:
	$(PYTHON) tools/lint_imports.py

# Dead links, stale module/file refs, and api.md coverage over docs/
# and README.md.  See tools/check_docs.py.
check-docs:
	$(PYTHON) tools/check_docs.py

# Wide fault-schedule sweep (100 DEC + 40 PBS seeded schedules); the
# plain test run exercises a fast slice of the same matrix.
test-faults:
	REPRO_FAULT_SMOKE=1 $(PYTHON) -m pytest tests/testing/ -q

# Requires pytest-cov (in the dev extras; not vendored).
coverage:
	$(PYTHON) -m pytest tests/ -q --cov=repro --cov-report=term-missing --cov-fail-under=$(COV_FLOOR)

# Traced demo run: loads the toy market under full telemetry, drops
# trace.json / metrics.json / metrics.prom into ./telemetry/, then
# schema-checks the exports.  See docs/observability.md.
obs-demo:
	PYTHONPATH=src $(PYTHON) tools/obs_demo.py --out telemetry
	$(PYTHON) tools/check_telemetry.py telemetry

# Three-node sharded market administrator in one process: seeded
# deposit trace, node killed mid-trace, slice adopted by its peer,
# cluster-wide invariant sweep.  See docs/cluster.md.
cluster-demo:
	PYTHONPATH=src $(PYTHON) examples/cluster_market.py

# The subprocess version CI runs: a genuine SIGKILL against one of
# three node processes, then adoption + sweep.
cluster-smoke:
	$(PYTHON) tools/cluster_smoke.py

# One seeded mixed adversarial campaign against the live service
# (~100 parties, seconds).  See docs/simulation.md.
campaign:
	PYTHONPATH=src $(PYTHON) tools/run_campaign.py mixed --seed 2015

# The full campaign matrix the CI smoke job and the nightly cron run:
# every default campaign test plus the thousand-party mixed economy
# and the socket/cluster backends.
campaign-smoke:
	REPRO_CAMPAIGN_SMOKE=1 $(PYTHON) -m pytest tests/sim -q

report:
	$(PYTHON) -m repro.cli report --out experiment_report.md

examples:
	for s in examples/*.py; do echo "== $$s"; $(PYTHON) $$s || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis bench_results.json experiment_report.md telemetry
	find . -name __pycache__ -type d -exec rm -rf {} +

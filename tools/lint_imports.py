#!/usr/bin/env python
"""Import hygiene linter for ``src/repro`` (the ``make lint-imports`` rule).

Two checks, both over *top-level* imports only (imports inside function
bodies are deliberately lazy and exempt — that is the sanctioned way to
break a genuine layering knot, e.g. the codec registry):

1. **No module-level import cycles.**  Tarjan SCC over the module
   graph; any strongly connected component larger than one module is a
   cycle Python may or may not survive depending on import order.
2. **Package layering.**  Each top-level package may import only the
   packages listed for it in :data:`ALLOWED` — the codified
   architecture of ``docs/architecture.md``.  Adding a new dependency
   edge is a deliberate act: extend the table in the same change.

Exit status is non-zero when any finding is produced, so CI can gate
on it.  No third-party dependencies; stdlib ``ast`` only.
"""

from __future__ import annotations

import ast
import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

#: package -> packages it may import at module level (itself always allowed)
ALLOWED: dict[str, set[str]] = {
    "_util": set(),
    # telemetry is observed *by* every layer, so it may depend on none
    # of them (in particular: obs must never import service)
    "obs": set(),
    "crypto": {"_util"},
    "ecash": {"crypto", "net"},
    "net": {"crypto", "ecash", "metrics"},
    "metrics": {"attacks", "core", "crypto", "ecash", "obs"},
    "core": {"crypto", "ecash", "metrics", "net"},
    "attacks": {"core", "crypto", "ecash", "net"},
    "workloads": {"net"},
    # the campaign engine drives the real service and the invariant
    # sweeps; crypto/ecash stay reachable only through those layers
    # (the cluster backend is a sanctioned lazy import)
    "sim": {"attacks", "core", "service", "testing"},
    "service": {"core", "crypto", "ecash", "metrics", "net", "obs"},
    # the multi-node layer composes services over the wire; it sits
    # above service and below testing (which sweeps clusters too)
    "cluster": {"crypto", "ecash", "net", "obs", "service"},
    # the fault harness drives the whole stack, so it sits above it
    "testing": {"cluster", "core", "crypto", "ecash", "net", "obs", "service"},
    "cli": {"attacks", "core", "crypto", "ecash", "metrics"},
    # the root package re-exports everything
    "(root)": {
        "_util", "attacks", "cli", "cluster", "core", "crypto", "ecash",
        "metrics", "net", "obs", "service", "sim", "testing", "workloads",
    },
}

#: module -> exact modules it may import (overrides the package table,
#: including the same-package freebie).  For modules every layer leans
#: on: they must stay dependency-free so no import cycle can form.
MODULE_ALLOWED: dict[str, set[str]] = {
    # the fixed-base table cache is pure arithmetic — no repro imports
    # at all, so crypto/ecash/service can all use it without cycles
    "repro.crypto.fastexp": set(),
    # the RLC batch verifier is pure arithmetic over LinearChecks; it
    # must never grow a service- or ecash-layer dependency
    "repro.crypto.batchverify": {"repro.crypto.fastexp", "repro.crypto.hashing"},
    # the shared-memory table transport is stdlib-only by design
    "repro.crypto.tablestore": set(),
}


def _module_name(path: pathlib.Path) -> str:
    parts = list(path.relative_to(SRC).with_suffix("").parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _top_level_imports(tree: ast.Module):
    """Imports executed at module import time (incl. under try/if)."""
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
        elif isinstance(node, (ast.If, ast.Try)):
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    yield sub


def _package_of(module: str) -> str:
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else "(root)"


def build_graph() -> tuple[dict[str, pathlib.Path], dict[str, set[str]]]:
    modules = {_module_name(p): p for p in (SRC / "repro").rglob("*.py")}
    graph: dict[str, set[str]] = {m: set() for m in modules}
    for module, path in modules.items():
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in _top_level_imports(tree):
            targets: list[str] = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                # `from repro.x import y` may target module repro.x.y
                targets = [node.module] + [
                    f"{node.module}.{alias.name}" for alias in node.names
                ]
            for target in targets:
                if target in modules and target != module:
                    graph[module].add(target)
    return modules, graph


def find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Strongly connected components with more than one module."""
    sys.setrecursionlimit(max(sys.getrecursionlimit(), 4 * len(graph) + 100))
    counter = [0]
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    stack: list[str] = []
    on_stack: set[str] = set()
    cycles: list[list[str]] = []

    def connect(v: str) -> None:
        index[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(graph.get(v, ())):
            if w not in index:
                connect(w)
                lowlink[v] = min(lowlink[v], lowlink[w])
            elif w in on_stack:
                lowlink[v] = min(lowlink[v], index[w])
        if lowlink[v] == index[v]:
            component = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.append(w)
                if w == v:
                    break
            if len(component) > 1:
                cycles.append(sorted(component))

    for module in sorted(graph):
        if module not in index:
            connect(module)
    return cycles


def find_layering_violations(graph: dict[str, set[str]]) -> list[str]:
    findings = []
    for module, targets in sorted(graph.items()):
        module_allowed = MODULE_ALLOWED.get(module)
        if module_allowed is not None:
            for target in sorted(targets):
                if target not in module_allowed:
                    findings.append(
                        f"{module}: imports {target} "
                        f"(module is pinned to {sorted(module_allowed) or 'no imports'})"
                    )
            continue
        src_pkg = _package_of(module)
        allowed = ALLOWED.get(src_pkg)
        if allowed is None:
            findings.append(
                f"{module}: package {src_pkg!r} missing from the layering table"
            )
            continue
        for target in sorted(targets):
            dst_pkg = _package_of(target)
            if dst_pkg != src_pkg and dst_pkg not in allowed:
                findings.append(
                    f"{module}: imports {target} "
                    f"({src_pkg} may not depend on {dst_pkg})"
                )
    return findings


def main() -> int:
    modules, graph = build_graph()
    findings: list[str] = []
    for cycle in find_cycles(graph):
        findings.append("import cycle: " + " -> ".join(cycle))
    findings.extend(find_layering_violations(graph))
    if findings:
        print(f"lint-imports: {len(findings)} finding(s)")
        for finding in findings:
            print(f"  {finding}")
        return 1
    print(f"lint-imports: OK ({len(modules)} modules, no cycles, layering clean)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Documentation freshness checker (the ``make check-docs`` rule).

Docs rot in three ways, and this tool catches all of them over
``docs/*.md`` plus ``README.md``:

1. **Dead links.**  Every relative markdown link must resolve to a file
   in the repository, and every ``#fragment`` must match a heading in
   the target document (GitHub's slug rules: lowercase, punctuation
   stripped, spaces to hyphens).
2. **Stale module references.**  Every backticked dotted name
   ``repro.foo.bar`` must resolve to a real module or package under
   ``src/`` (trailing ``CamelCase``/attribute components are trimmed,
   but at least the ``repro.<package>`` level must exist on disk).
3. **Stale file references.**  Every backticked repo-relative path
   (``docs/…``, ``src/…``, ``tools/…``, …) must exist.

One coverage check rides along: ``docs/api.md`` must mention every
top-level ``repro`` subpackage and each module in :data:`FLAGSHIPS`,
so new subsystems cannot ship without an API-surface note.

Exit status is non-zero when any finding is produced, so CI can gate
on it.  No third-party dependencies; stdlib only.
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
DOCS = ROOT / "docs"

#: modules docs/api.md must mention even though they are not top-level
#: subpackages (the "flagship" subsystems users ask about by name)
FLAGSHIPS = (
    "repro.crypto.batchverify",
    "repro.service.journal",
    "repro.service.aio",
)

#: directories a backticked path may live under to be checked; paths
#: outside these roots (generated artifacts such as ``telemetry/``)
#: are not existence-checked
PATH_ROOTS = ("docs/", "src/", "tests/", "tools/", "examples/",
              "benchmarks/", ".github/")

_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_CODE_SPAN = re.compile(r"`([^`]+)`")
_DOTTED = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading."""
    text = heading.strip().lower().replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _strip_code_blocks(text: str) -> str:
    """Drop fenced code blocks: links and paths inside them are examples."""
    return re.sub(r"^```.*?^```", "", text, flags=re.MULTILINE | re.DOTALL)


def _anchors(path: pathlib.Path) -> set[str]:
    text = _strip_code_blocks(path.read_text(encoding="utf-8"))
    return {_slug(m.group(1)) for m in _HEADING.finditer(text)}


def _module_exists(dotted: str) -> bool:
    parts = dotted.split(".")
    base = SRC.joinpath(*parts)
    return base.with_suffix(".py").is_file() or (base / "__init__.py").is_file()


def _resolvable_prefix(dotted: str) -> str | None:
    """Longest leading component run of *dotted* that is a real module."""
    parts = dotted.split(".")
    for n in range(len(parts), 0, -1):
        if _module_exists(".".join(parts[:n])):
            return ".".join(parts[:n])
    return None


def _check_links(path: pathlib.Path, text: str, findings: list[str]) -> None:
    for match in _LINK.finditer(_strip_code_blocks(text)):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        name, _, fragment = target.partition("#")
        resolved = path if not name else (path.parent / name).resolve()
        if not resolved.exists():
            findings.append(f"{_rel(path)}: dead link `{target}` "
                            f"(no such file {_rel(resolved)})")
            continue
        if fragment and resolved.suffix == ".md":
            if _slug(fragment) not in _anchors(resolved):
                findings.append(f"{_rel(path)}: dead anchor `{target}` "
                                f"(no heading slugs to `#{fragment}` "
                                f"in {_rel(resolved)})")


def _check_code_spans(path: pathlib.Path, text: str,
                      findings: list[str]) -> None:
    # dotted module refs are checked over the *raw* text: stale imports
    # inside fenced ```python examples rot just as fast as prose refs
    for dotted_match in _DOTTED.finditer(text):
        dotted = dotted_match.group(0)
        prefix = _resolvable_prefix(dotted)
        if prefix == "repro" and dotted != "repro":
            findings.append(f"{_rel(path)}: stale module reference "
                            f"`{dotted}` (nothing under src/ matches "
                            f"any prefix past `repro`)")
    # file refs only in inline spans (fences hold example output, not
    # repo paths); fenced blocks would break single-backtick pairing
    for span_match in _CODE_SPAN.finditer(_strip_code_blocks(text)):
        span = span_match.group(1)
        if not span.startswith(PATH_ROOTS) or re.search(r"[%*<>{ ]", span):
            continue
        name, _, node = span.partition("::")
        target = ROOT / name.rstrip("/")
        if not target.exists():
            findings.append(f"{_rel(path)}: stale file reference "
                            f"`{span}` (no such path)")
        elif node:
            # pytest node id: the named test/class must still exist
            member = node.split("::")[-1].partition("[")[0]
            if member not in target.read_text(encoding="utf-8"):
                findings.append(f"{_rel(path)}: stale test reference "
                                f"`{span}` (`{member}` not in {name})")


def _check_api_coverage(findings: list[str]) -> None:
    api = DOCS / "api.md"
    if not api.is_file():
        findings.append("docs/api.md: missing (API overview is required)")
        return
    text = api.read_text(encoding="utf-8")
    packages = sorted(
        p.name for p in (SRC / "repro").iterdir()
        if p.is_dir() and (p / "__init__.py").is_file()
    )
    for package in packages:
        if not re.search(rf"\brepro\.{package}\b", text):
            findings.append(f"docs/api.md: no mention of subpackage "
                            f"`repro.{package}`")
    for module in FLAGSHIPS:
        leaf = module.rsplit(".", 1)[1]
        if not re.search(rf"\b{leaf}\b", text):
            findings.append(f"docs/api.md: no mention of flagship module "
                            f"`{module}`")


def _rel(path: pathlib.Path) -> str:
    try:
        return str(path.resolve().relative_to(ROOT))
    except ValueError:
        return str(path)


def main() -> int:
    files = sorted(DOCS.glob("*.md")) + [ROOT / "README.md"]
    findings: list[str] = []
    for path in files:
        text = path.read_text(encoding="utf-8")
        _check_links(path, text, findings)
        _check_code_spans(path, text, findings)
    _check_api_coverage(findings)
    for finding in findings:
        print(f"check_docs: {finding}")
    if findings:
        print(f"check_docs: {len(findings)} finding(s)")
        return 1
    print(f"check_docs: OK ({len(files)} files, 0 findings)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

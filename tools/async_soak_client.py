#!/usr/bin/env python
"""Client-side flood driver for the async frontend soak.

Opens ``--connections`` concurrent sockets against a running frontend
(ramped in batches so the listen backlog is never swamped), holds them
**all open at once**, then drives ``--rounds`` request/reply probes
down every connection and reports latency percentiles as JSON on
stdout:

.. code-block:: json

    {"connections": 10000, "opened": 10000, "connect_failures": 0,
     "peak_open": 10000, "connect_p50_ms": ..., "connect_p99_ms": ...,
     "rtt_p50_ms": ..., "rtt_p99_ms": ..., "rtt_max_ms": ...,
     "ok": ..., "busy": 0, "errors": 0, "elapsed_s": ...}

It runs as a **separate process** from the server on purpose: the
container's file-descriptor ceiling is per-process, so a 10k-socket
soak needs the 10k client fds and the 10k server fds in different fd
tables.  The soak test (``tests/service/test_async_soak.py``) spawns
this script and parses the report; it is also handy standalone against
any live frontend.  Stdlib + ``repro.net.wire`` only.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import resource
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.net.wire import read_frame_async, write_frame_async  # noqa: E402


def _raise_fd_limit(need: int) -> None:
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < need and hard > soft:
        resource.setrlimit(resource.RLIMIT_NOFILE, (min(need, hard), hard))


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


async def _soak(args: argparse.Namespace) -> dict:
    address = (args.host, args.port)
    connect_ms: list[float] = []
    rtt_ms: list[float] = []
    lanes: list[tuple] = []
    counts = {"ok": 0, "busy": 0, "errors": 0, "connect_failures": 0}

    async def dial(index: int) -> None:
        started = time.monotonic()
        for attempt in range(4):
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(*address), args.timeout)
                connect_ms.append((time.monotonic() - started) * 1000.0)
                lanes.append((index, reader, writer))
                return
            except (OSError, asyncio.TimeoutError):
                # the listen backlog pushed back — yield and retry
                await asyncio.sleep(0.05 * (attempt + 1))
        counts["connect_failures"] += 1

    # ramp: batches keep simultaneous SYNs under the listen backlog
    began = time.monotonic()
    for start in range(0, args.connections, args.ramp):
        batch = range(start, min(start + args.ramp, args.connections))
        await asyncio.gather(*(dial(i) for i in batch))
    peak_open = len(lanes)

    async def probe(index: int, reader, writer) -> None:
        for round_no in range(args.rounds):
            started = time.monotonic()
            try:
                await write_frame_async(writer, {
                    "cid": round_no, "kind": args.kind,
                    "payload": dict(args.payload), "now": 0.0,
                    "sender": f"soak{index}",
                })
                reply = await asyncio.wait_for(read_frame_async(reader),
                                               args.timeout)
            except Exception:  # any wire/socket/timeout failure is an error
                counts["errors"] += 1
                return
            if reply is None:
                counts["errors"] += 1
                return
            status = reply.get("status")
            if status == "BUSY":
                counts["busy"] += 1
            elif status == "OK":
                counts["ok"] += 1
                rtt_ms.append((time.monotonic() - started) * 1000.0)
            else:
                counts["errors"] += 1

    # every connection held open while every other one probes: this IS
    # the C10k claim, not sequential reuse of one socket
    await asyncio.gather(*(probe(i, r, w) for i, r, w in lanes))

    for _i, _r, writer in lanes:
        writer.close()
    for _i, _r, writer in lanes:
        try:
            await asyncio.wait_for(writer.wait_closed(), 5)
        except (OSError, asyncio.TimeoutError):
            pass

    return {
        "connections": args.connections,
        "opened": len(connect_ms),
        "peak_open": peak_open,
        "connect_failures": counts["connect_failures"],
        "connect_p50_ms": round(_percentile(connect_ms, 0.50), 3),
        "connect_p99_ms": round(_percentile(connect_ms, 0.99), 3),
        "connect_max_ms": round(max(connect_ms, default=0.0), 3),
        "rtt_count": len(rtt_ms),
        "rtt_p50_ms": round(_percentile(rtt_ms, 0.50), 3),
        "rtt_p99_ms": round(_percentile(rtt_ms, 0.99), 3),
        "rtt_max_ms": round(max(rtt_ms, default=0.0), 3),
        "ok": counts["ok"],
        "busy": counts["busy"],
        "errors": counts["errors"],
        "elapsed_s": round(time.monotonic() - began, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--connections", type=int, default=10_000)
    parser.add_argument("--rounds", type=int, default=2,
                        help="probes per connection once all are open")
    parser.add_argument("--ramp", type=int, default=250,
                        help="sockets dialed per ramp batch")
    parser.add_argument("--kind", default="balance")
    parser.add_argument("--payload", type=json.loads,
                        default={"aid": "soak"})
    parser.add_argument("--timeout", type=float, default=60.0)
    args = parser.parse_args(argv)

    _raise_fd_limit(args.connections + 64)
    report = asyncio.run(_soak(args))
    json.dump(report, sys.stdout)
    sys.stdout.write("\n")
    return 0 if report["errors"] == 0 and report["connect_failures"] == 0 else 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Traced demo run: load the market service, export all telemetry.

The ``make obs-demo`` entry point.  Builds a toy-pairing market
service with a fully-enabled telemetry stack, replays a minted deposit
workload (plus a few guaranteed double-spend replays and an admission
overload burst so every reply status appears), and writes the three
export artefacts into ``./telemetry/``:

* ``trace.json``    — Chrome/Perfetto trace (open in ui.perfetto.dev)
* ``metrics.json``  — the registry snapshot (schema-checked in CI by
  ``tools/check_telemetry.py``)
* ``metrics.prom``  — Prometheus text exposition

Runs on the toy backend in a few seconds; pass ``--deposits`` to
scale.  See docs/observability.md for how to read the trace.
"""

from __future__ import annotations

import argparse
import pathlib
import random
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import obs  # noqa: E402
from repro.ecash.dec import setup  # noqa: E402
from repro.service import (  # noqa: E402
    AdmissionController,
    Journal,
    MarketService,
    VerificationBatcher,
    ShardedBank,
)
from repro.service.loadgen import mint_deposit_traffic, run_trace  # noqa: E402
from repro.workloads.arrivals import poisson_arrivals  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="telemetry",
                        help="output directory (default: ./telemetry)")
    parser.add_argument("--deposits", type=int, default=24,
                        help="fresh deposits to replay (default: 24)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rng = random.Random(args.seed)
    telemetry = obs.Telemetry.enabled(capacity=65536)

    print(f"building toy market (seed {args.seed}) ...")
    params = setup(3, rng, security_bits=64, real_pairing=False, edge_rounds=4)
    bank = ShardedBank.create(params, rng, n_shards=4, journal=Journal())
    batcher = VerificationBatcher(params, bank.keypair, max_batch=8, seed=1)
    service = MarketService(
        bank,
        batcher=batcher,
        admission=AdmissionController(max_queue_depth=4 * args.deposits),
        rng=random.Random(1),
        telemetry=telemetry,
    )

    print(f"minting {args.deposits} deposits (plus 1-in-5 double-spend replays) ...")
    requests = mint_deposit_traffic(
        service, random.Random(2),
        n_accounts=4, n_deposits=args.deposits, replay_fraction=0.2,
    )
    arrivals = poisson_arrivals(
        random.Random(3), rate=200.0, horizon=len(requests) / 200.0
    )
    while len(arrivals) < len(requests):
        arrivals.append((arrivals[-1] if arrivals else 0.0) + 0.005)

    print("replaying under trace ...")
    report = run_trace(service, requests, arrivals)

    paths = service.dump_telemetry(args.out)
    tracer = telemetry.tracer
    print(
        f"served {report.submitted} requests: {report.ok} OK, "
        f"{report.rejected} REJECTED, {report.shed} BUSY, "
        f"{report.errors} ERROR"
    )
    if report.latency is not None:
        print(f"p50 {report.latency.p50_ms:.2f} ms   "
              f"p99 {report.latency.p99_ms:.2f} ms   "
              f"throughput {report.latency.throughput:.1f} req/s")
    print(f"{len(tracer.records())} spans recorded "
          f"({tracer.dropped} dropped by the ring)")
    for kind, path in paths.items():
        print(f"  {kind:<10} -> {path}")
    print("load trace.json at https://ui.perfetto.dev (or chrome://tracing)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Cluster smoke: boot 3 processes, SIGKILL one mid-trace, sweep.

The CI-facing end-to-end check for ``repro.cluster``:

1. boot a three-node :class:`~repro.cluster.launcher.ProcessCluster`
   (each node its own Python process, ephemeral ports, one shared
   issuing key from a seeded setup);
2. drive a seeded deposit trace through the router — accounts funded
   and coins withdrawn over the wire, so the books conserve;
3. SIGKILL the node that owns the next request's account, have its
   designated peer adopt the slice, and finish the trace;
4. assert nothing was lost or double-applied (fresh deposits all OK,
   deliberate replays all REJECTED) and run the cluster-wide invariant
   sweep over every surviving slice's journal dump.

Exit status 0 only if every check holds.  Usage::

    python tools/cluster_smoke.py [--rundir DIR] [--seed N]
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cluster.launcher import ProcessCluster  # noqa: E402
from repro.crypto.cl_sig import cl_keygen  # noqa: E402
from repro.ecash.dec import setup  # noqa: E402
from repro.service.loadgen import (  # noqa: E402
    mint_cluster_deposit_traffic,
    run_cluster_trace,
)
from repro.testing import check_cluster_invariants  # noqa: E402


def run(rundir: str, seed: int) -> int:
    rng = random.Random(seed)
    params = setup(4, rng, security_bits=80, real_pairing=False, edge_rounds=6)
    keypair = cl_keygen(params.backend, rng)
    failures: list[str] = []

    with ProcessCluster(params, keypair, rundir, n_nodes=3,
                        checkpoint_every=8) as cluster:
        print(f"booted {len(cluster.map.nodes)} node processes: "
              + ", ".join(f"{n}@{cluster.map.address_of(n)[1]}"
                          for n in cluster.map.nodes))
        with cluster.router(attempts=2, backoff=0.01,
                            refresh_backoff=0.01) as router:
            deposits = mint_cluster_deposit_traffic(
                router, params, keypair.public, rng,
                n_accounts=4, n_deposits=12, replay_fraction=0.25,
            )
            phase1, phase2 = deposits[:6], deposits[6:]
            report1 = run_cluster_trace(router, phase1)
            print(f"phase 1: {report1.ok} ok, {report1.rejected} rejected")

            victim = cluster.map.owner_of(phase2[0].payload["aid"])
            print(f"SIGKILL {victim} (owner of the next request)")
            cluster.kill(victim)
            adopter = cluster.failover(victim)
            print(f"{adopter} adopted {victim}'s slice; "
                  f"map version {cluster.map.version}")

            report2 = run_cluster_trace(router, phase2)
            print(f"phase 2: {report2.ok} ok, {report2.rejected} rejected, "
                  f"{router.reroutes} re-route(s)")

            ok = report1.ok + report2.ok
            rejected = report1.rejected + report2.rejected
            errors = report1.errors + report2.errors
            if ok != 9:
                failures.append(f"expected 9 fresh deposits OK, got {ok}")
            if rejected != 3:
                failures.append(f"expected 3 replays REJECTED, got {rejected}")
            if errors:
                failures.append(f"{errors} request(s) errored")
            if router.reroutes < 1:
                failures.append("router never re-routed across the failover")

        sweep = check_cluster_invariants(
            params, keypair, cluster.map, cluster.dump_journals(),
            conservation=True,
        )
        if not sweep.clean:
            failures.extend(f"sweep: {f}" for f in sweep.findings)
        print(f"invariant sweep: {'CLEAN' if sweep.clean else 'DIRTY'}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("cluster smoke passed: no request lost, none double-applied")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="3-node SIGKILL-mid-trace cluster smoke test",
    )
    parser.add_argument("--rundir", default=None,
                        help="rundir for node coordination files "
                             "(default: a fresh temp dir)")
    parser.add_argument("--seed", type=int, default=2015)
    args = parser.parse_args(argv)
    if args.rundir:
        os.makedirs(args.rundir, exist_ok=True)
        return run(args.rundir, args.seed)
    with tempfile.TemporaryDirectory(prefix="cluster-smoke-") as rundir:
        return run(rundir, args.seed)


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Run one named adversarial campaign against the live market service.

The command-line face of :mod:`repro.sim.campaign` — and the command a
failing :class:`~repro.sim.report.CampaignReport` embeds as its replay
line, so ``python tools/run_campaign.py <name> --seed N --backend B``
must reproduce any reported run byte-for-byte.

Prints the human summary (``--json`` for the canonical report instead)
and exits non-zero unless the report is clean, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.sim.campaign import CAMPAIGNS, run_campaign  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="run a seeded adversarial market campaign",
    )
    parser.add_argument("campaign", choices=sorted(CAMPAIGNS),
                        help="which canned campaign to run")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0); same seed, "
                             "same backend => byte-identical report")
    parser.add_argument("--scale", type=int, default=1,
                        help="roster multiplier (45 ~ a thousand parties "
                             "for the mixed campaign)")
    parser.add_argument("--backend", default="inprocess",
                        choices=("inprocess", "socket", "cluster"),
                        help="how the campaign reaches the MarketService")
    parser.add_argument("--json", action="store_true",
                        help="print the canonical JSON report instead of "
                             "the summary")
    args = parser.parse_args(argv)

    config = CAMPAIGNS[args.campaign](
        args.seed, scale=args.scale, backend=args.backend
    )
    report = run_campaign(config)
    print(report.to_json() if args.json else report.summary())
    if not args.json:
        print(f"report digest: {report.digest()}")
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())

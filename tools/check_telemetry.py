#!/usr/bin/env python
"""Validate exported telemetry against the checked-in schema.

CI gate for ``make obs-demo``: loads ``trace.json`` and
``metrics.json`` from the given directory and checks both against
``tools/telemetry_schema.json``.  The schema language is the small
JSON-Schema subset the validator below implements — ``type``,
``properties``, ``required``, ``items``, ``enum`` — which is enough to
pin the exporter's wire shape (Chrome trace events, registry
snapshot) without any third-party dependency.

Beyond the schema, a handful of semantic invariants are enforced:
traces are non-empty, complete events have non-negative ``ts``/
``dur``, histogram ``counts`` sum to ``count`` and carry one overflow
slot more than ``buckets``.

Exit status is non-zero on any finding; findings are printed one per
line as ``<file> <json-path>: <problem>``.
"""

from __future__ import annotations

import json
import pathlib
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def validate(value, schema: dict, path: str = "$") -> list[str]:
    """Check *value* against *schema*, returning a list of findings."""
    findings: list[str] = []
    expected = schema.get("type")
    if expected is not None:
        python_type = _TYPES[expected]
        ok = isinstance(value, python_type)
        if ok and expected in ("integer", "number") and isinstance(value, bool):
            ok = False
        if not ok:
            findings.append(f"{path}: expected {expected}, "
                            f"got {type(value).__name__}")
            return findings
    if "enum" in schema and value not in schema["enum"]:
        findings.append(f"{path}: {value!r} not in {schema['enum']}")
    for key in schema.get("required", ()):
        if not isinstance(value, dict) or key not in value:
            findings.append(f"{path}: missing required key {key!r}")
    for key, sub in schema.get("properties", {}).items():
        if isinstance(value, dict) and key in value:
            findings.extend(validate(value[key], sub, f"{path}.{key}"))
    if "items" in schema and isinstance(value, list):
        for i, item in enumerate(value):
            findings.extend(validate(item, schema["items"], f"{path}[{i}]"))
    return findings


def check_trace(events) -> list[str]:
    findings = validate(events, _SCHEMA["trace"], "$")
    if isinstance(events, list):
        if not events:
            findings.append("$: trace is empty — the demo recorded nothing")
        for i, event in enumerate(events):
            if not isinstance(event, dict) or event.get("ph") != "X":
                continue
            if event.get("ts", 0) < 0:
                findings.append(f"$[{i}].ts: negative timestamp")
            if event.get("dur", 0) < 0:
                findings.append(f"$[{i}].dur: negative duration")
    return findings


def check_metrics(snapshot) -> list[str]:
    findings = validate(snapshot, _SCHEMA["metrics"], "$")
    if isinstance(snapshot, dict):
        for i, entry in enumerate(snapshot.get("histograms", [])):
            if not isinstance(entry, dict):
                continue
            counts = entry.get("counts", [])
            buckets = entry.get("buckets", [])
            where = f"$.histograms[{i}]"
            if len(counts) != len(buckets) + 1:
                findings.append(f"{where}: want len(buckets)+1 counts "
                                f"(overflow slot), got {len(counts)}")
            if sum(counts) != entry.get("count"):
                findings.append(f"{where}: counts sum {sum(counts)} != "
                                f"count {entry.get('count')}")
    return findings


_SCHEMA = json.loads(
    (pathlib.Path(__file__).parent / "telemetry_schema.json").read_text()
)


def main(argv: list[str]) -> int:
    directory = pathlib.Path(argv[1] if len(argv) > 1 else "telemetry")
    findings: list[str] = []
    for name, checker in (("trace.json", check_trace),
                          ("metrics.json", check_metrics)):
        target = directory / name
        if not target.exists():
            findings.append(f"{target}: missing")
            continue
        try:
            data = json.loads(target.read_text())
        except json.JSONDecodeError as exc:
            findings.append(f"{target}: invalid JSON: {exc}")
            continue
        findings.extend(f"{target} {f}" for f in checker(data))
    if findings:
        print(f"telemetry check: {len(findings)} finding(s)")
        for finding in findings:
            print(f"  {finding}")
        return 1
    print(f"telemetry check: OK ({directory}/trace.json, metrics.json)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

"""Regenerate the golden serialization fixtures under tests/fixtures/.

The fixtures pin the on-disk byte format of :mod:`repro.ecash.params_io`
and :mod:`repro.ecash.wallet_io`: any codec or layout change that
silently breaks old blobs shows up as a byte diff against these files
(``tests/ecash/test_io_golden.py``).  Everything is derived from fixed
seeds on the toy pairing backend, so running this script twice — or on
another machine — produces identical bytes.

Usage::

    PYTHONPATH=src python tools/gen_golden_fixtures.py   # rewrite fixtures

Only rerun (and commit the diff) on a *deliberate* format change.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

FIXTURES_DIR = Path(__file__).resolve().parent.parent / "tests" / "fixtures"


def build_fixtures() -> dict[str, bytes]:
    """All golden blobs, keyed by fixture file name."""
    from repro.crypto.cl_sig import cl_keygen
    from repro.ecash.dec import begin_withdrawal, cl_blind_issue, finish_withdrawal, setup
    from repro.ecash.params_io import export_params
    from repro.ecash.wallet import Wallet
    from repro.ecash.wallet_io import snapshot_coins
    from repro.ecash.tree import CoinTree, NodeId

    params = setup(3, random.Random("golden:params"),
                   security_bits=40, real_pairing=False, edge_rounds=4)
    bank = cl_keygen(params.backend, random.Random("golden:bank"))

    rng = random.Random("golden:coins")
    coins = []
    for _ in range(2):
        secret, request = begin_withdrawal(params, rng)
        signature = cl_blind_issue(params.backend, bank, request, rng)
        coins.append(finish_withdrawal(params, bank.public, secret, signature))

    fresh_wallet = Wallet(tree=CoinTree(params.tree_level), secret=coins[0].secret)
    spent_wallet = Wallet(tree=CoinTree(params.tree_level), secret=coins[1].secret)
    for node in (NodeId(1, 0), NodeId(2, 2), NodeId(3, 6)):
        spent_wallet.spent.add(node)

    return {
        "dec_params_toy_l3.bin": export_params(params),
        "dec_params_toy_l3_with_pk.bin": export_params(params, bank.public),
        "wallet_snapshot_two_coins.bin": snapshot_coins(
            [(coins[0], fresh_wallet), (coins[1], spent_wallet)]
        ),
    }


def main() -> int:
    FIXTURES_DIR.mkdir(parents=True, exist_ok=True)
    for name, blob in sorted(build_fixtures().items()):
        path = FIXTURES_DIR / name
        changed = not path.exists() or path.read_bytes() != blob
        path.write_bytes(blob)
        print(f"{'wrote' if changed else 'unchanged'}  {path}  ({len(blob)} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Merge per-node metrics dumps into one cluster-wide snapshot.

Each cluster node runs its own :class:`repro.obs.MetricsRegistry` and
dumps it independently (``metrics.json`` from ``Telemetry.dump``, or
the ``telemetry`` control frame's ``metrics`` value saved to a file).
This tool folds N such snapshots into one registry the way the
registries themselves define merging — counters and histogram buckets
add, gauges take the last value — and tags every series with a
``node`` label first, so per-node series stay distinguishable after
the merge (``node`` is on the redaction allowlist; it is an
operator-chosen id like ``n0``, not participant data).

    python tools/merge_telemetry.py n0.json n1.json n2.json
    python tools/merge_telemetry.py --prometheus -o cluster.prom *.json
    python tools/merge_telemetry.py --aggregate n*.json   # drop node label

Node names default to each file's stem; override with ``name=path``
arguments (``n0=run/a.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs.registry import MetricsRegistry  # noqa: E402


def _load_snapshot(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    # accept a raw snapshot, a Telemetry.export() dict, or a saved
    # control-frame reply — anything that carries the snapshot shape
    for key in ("metrics",):
        if key in data and isinstance(data[key], dict):
            data = data[key]
    if not any(k in data for k in ("counters", "gauges", "histograms")):
        raise ValueError(f"{path}: not a metrics snapshot")
    return data


def _tag(snapshot: dict, node: str) -> dict:
    """The snapshot with ``node=<id>`` added to every series' labels."""
    tagged: dict = {}
    for family in ("counters", "gauges", "histograms"):
        tagged[family] = []
        for entry in snapshot.get(family, ()):
            entry = dict(entry)
            labels = dict(entry.get("labels", {}))
            labels.setdefault("node", node)
            entry["labels"] = labels
            tagged[family].append(entry)
    return tagged


def merge_snapshots(sources: list[tuple[str, dict]], *,
                    aggregate: bool = False) -> MetricsRegistry:
    """Fold ``(node, snapshot)`` pairs into one registry.

    With *aggregate* the node label is omitted and same-name series
    sum across nodes — the fleet-wide totals view.
    """
    registry = MetricsRegistry(enabled=True)
    for node, snapshot in sources:
        registry.merge(snapshot if aggregate else _tag(snapshot, node))
    return registry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="merge per-node metrics JSON dumps into one snapshot",
    )
    parser.add_argument("inputs", nargs="+", metavar="[NAME=]PATH",
                        help="per-node metrics.json files")
    parser.add_argument("-o", "--out", default=None,
                        help="write here instead of stdout")
    parser.add_argument("--prometheus", action="store_true",
                        help="emit text exposition format instead of JSON")
    parser.add_argument("--aggregate", action="store_true",
                        help="sum across nodes without a node label")
    args = parser.parse_args(argv)

    sources: list[tuple[str, dict]] = []
    for spec in args.inputs:
        if "=" in spec:
            node, path = spec.split("=", 1)
        else:
            path = spec
            node = os.path.splitext(os.path.basename(path))[0]
        sources.append((node, _load_snapshot(path)))

    registry = merge_snapshots(sources, aggregate=args.aggregate)
    text = registry.to_prometheus() if args.prometheus else registry.to_json()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"merged {len(sources)} snapshot(s) -> {args.out}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

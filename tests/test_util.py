"""Tests for the shared helpers in repro._util."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import (
    bit_length_bytes,
    bytes_to_int,
    chunked,
    int_to_bytes,
    make_rng,
    rand_below,
    rand_int_bits,
    rand_range,
)


class TestIntBytes:
    @given(st.integers(min_value=0, max_value=10**50))
    def test_roundtrip_minimal(self, v):
        assert bytes_to_int(int_to_bytes(v)) == v

    def test_zero_encodes_to_one_byte(self):
        assert int_to_bytes(0) == b"\x00"

    def test_fixed_length(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bytes(-1)

    def test_overflowing_length_rejected(self):
        with pytest.raises(OverflowError):
            int_to_bytes(256, 1)


class TestBitLengthBytes:
    @pytest.mark.parametrize("bits,expected", [(0, 0), (1, 1), (8, 1), (9, 2), (64, 8)])
    def test_values(self, bits, expected):
        assert bit_length_bytes(bits) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit_length_bytes(-1)


class TestRng:
    def test_seeded_rng_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_rand_int_bits_exact(self):
        rng = make_rng(1)
        for bits in (1, 2, 8, 64):
            for _ in range(20):
                assert rand_int_bits(rng, bits).bit_length() == bits

    def test_rand_int_bits_rejects_zero(self):
        with pytest.raises(ValueError):
            rand_int_bits(make_rng(1), 0)

    def test_rand_below_range(self):
        rng = make_rng(2)
        assert all(0 <= rand_below(rng, 7) < 7 for _ in range(50))
        with pytest.raises(ValueError):
            rand_below(rng, 0)

    def test_rand_range(self):
        rng = make_rng(3)
        assert all(3 <= rand_range(rng, 3, 9) < 9 for _ in range(50))
        with pytest.raises(ValueError):
            rand_range(rng, 5, 5)


class TestChunked:
    def test_even_split(self):
        assert list(chunked(b"abcdef", 2)) == [b"ab", b"cd", b"ef"]

    def test_ragged_tail(self):
        assert list(chunked(b"abcde", 2)) == [b"ab", b"cd", b"e"]

    def test_empty(self):
        assert list(chunked(b"", 4)) == []

    def test_bad_size(self):
        with pytest.raises(ValueError):
            list(chunked(b"ab", 0))

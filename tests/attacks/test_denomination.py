"""Tests for the denomination attack implementation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.denomination import (
    candidate_jobs,
    reachable_sums,
    run_denomination_attack,
)


class TestReachableSums:
    def test_examples(self):
        assert reachable_sums([1, 2, 4]) == set(range(1, 8))
        assert reachable_sums([2, 2]) == {2, 4}
        assert reachable_sums([]) == set()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            reachable_sums([0])

    @given(st.lists(st.integers(min_value=1, max_value=16), max_size=8))
    @settings(max_examples=60)
    def test_matches_bruteforce(self, deposits):
        from itertools import combinations

        expected = set()
        for k in range(1, len(deposits) + 1):
            for combo in combinations(deposits, k):
                expected.add(sum(combo))
        assert reachable_sums(deposits) == expected

    @given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=10))
    @settings(max_examples=40)
    def test_total_always_reachable(self, deposits):
        assert sum(deposits) in reachable_sums(deposits)


class TestCandidateJobs:
    def test_exact_match(self):
        jobs = {"a": 5, "b": 9}
        assert candidate_jobs(jobs, [5]) == {"a"}

    def test_subset_sum_match(self):
        jobs = {"a": 3, "b": 7, "c": 100}
        assert candidate_jobs(jobs, [1, 2, 4]) == {"a", "b"}

    def test_empty_deposits(self):
        assert candidate_jobs({"a": 1}, []) == set()


class TestAttack:
    def test_unbroken_payment_usually_identified(self):
        """The strawman the paper attacks: whole payment deposited at once
        uniquely identifies a distinct-payment job."""
        jobs = {"a": 3, "b": 5, "c": 11}
        result = run_denomination_attack(jobs, "b", [5])
        assert result.uniquely_identified

    def test_broken_payment_grows_candidates(self):
        jobs = {"a": 3, "b": 5, "c": 11, "d": 8, "e": 1, "f": 4}
        result = run_denomination_attack(jobs, "b", [1, 4])  # 5 broken as 1+4
        assert not result.uniquely_identified
        assert result.candidates == {"b", "e", "f"}  # payments 5, 1, 4 all reachable
        assert result.anonymity_set_size == 3

    def test_true_job_always_covered_with_full_stream(self):
        jobs = {"a": 6}
        result = run_denomination_attack(jobs, "a", [1, 2, 2, 1])
        assert result.true_job_covered

    def test_requires_published_true_job(self):
        with pytest.raises(ValueError):
            run_denomination_attack({"a": 1}, "ghost", [1])

    def test_result_properties(self):
        jobs = {"a": 2, "b": 4}
        result = run_denomination_attack(jobs, "a", [2])
        assert result.anonymity_set_size == 1
        assert result.uniquely_identified
        assert result.true_job == "a"

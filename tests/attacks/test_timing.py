"""Tests for the deposit timing-correlation attack and its defence."""

from __future__ import annotations

import random

import pytest

from repro.attacks.timing import (
    DeliveryEvent,
    TimedDeposit,
    TimingAdversary,
    timing_experiment,
)


class TestAdversary:
    def test_perfect_match_when_immediate(self):
        adversary = TimingAdversary()
        deliveries = [DeliveryEvent(time=float(i), pseudonym=i) for i in range(5)]
        deposits = [TimedDeposit(time=float(i) + 0.01, aid=i) for i in range(5)]
        guesses = adversary.link(deliveries, deposits)
        assert guesses == {i: i for i in range(5)}

    def test_no_candidate_before_delivery(self):
        adversary = TimingAdversary()
        deliveries = [DeliveryEvent(time=10.0, pseudonym=0)]
        deposits = [TimedDeposit(time=5.0, aid=0)]
        assert adversary.link(deliveries, deposits) == {}

    def test_each_delivery_used_once(self):
        adversary = TimingAdversary()
        deliveries = [DeliveryEvent(time=0.0, pseudonym=0), DeliveryEvent(time=1.0, pseudonym=1)]
        deposits = [TimedDeposit(time=2.0, aid=7), TimedDeposit(time=3.0, aid=8)]
        guesses = adversary.link(deliveries, deposits)
        assert sorted(guesses.values()) == [0, 1]

    def test_shuffled_waits_break_matching(self):
        """If SP 0 waits long and SP 1 deposits first, greedy matching
        misassigns — the core of the defence."""
        adversary = TimingAdversary()
        deliveries = [DeliveryEvent(time=0.0, pseudonym=0), DeliveryEvent(time=1.0, pseudonym=1)]
        deposits = [TimedDeposit(time=1.5, aid=1), TimedDeposit(time=9.0, aid=0)]
        guesses = adversary.link(deliveries, deposits)
        assert guesses[1] == 0 and guesses[0] == 1  # both wrong


class TestExperiment:
    def test_immediate_policy_is_fully_linkable(self, rng):
        result = timing_experiment(participants=10, trials=30, rng=rng)
        assert result.immediate_accuracy > 0.95

    def test_random_waits_collapse_accuracy(self, rng):
        result = timing_experiment(participants=10, trials=30, rng=rng)
        assert result.randomized_accuracy < 0.5
        assert result.randomized_accuracy < result.immediate_accuracy

    def test_longer_waits_weaker_linking(self, rng):
        short = timing_experiment(
            participants=10, trials=40, rng=random.Random(1), wait_mean=0.5
        )
        long = timing_experiment(
            participants=10, trials=40, rng=random.Random(1), wait_mean=20.0
        )
        assert long.randomized_accuracy <= short.randomized_accuracy

    def test_result_fields(self, rng):
        result = timing_experiment(participants=4, trials=5, rng=rng)
        assert result.participants == 4 and result.trials == 5
        assert 0.0 <= result.randomized_accuracy <= 1.0

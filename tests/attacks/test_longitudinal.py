"""Tests for the longitudinal (multi-epoch) denomination analysis."""

from __future__ import annotations

import random

from repro.attacks.longitudinal import longitudinal_experiment


def run(epochs, seed=7, trials=80, **kw):
    return longitudinal_experiment(
        level=6, epochs=epochs, jobs_per_epoch=10, trials=trials,
        rng=random.Random(seed), **kw
    )


class TestPaperClaim:
    def test_pooled_adversary_collapses_with_epochs(self):
        """Section IV-B1's claim, for the adversary it implicitly models:
        accumulation makes the pooled denomination attack fail."""
        one = run(1)
        many = run(6)
        assert many.pooled_rate < one.pooled_rate
        assert many.pooled_rate <= 0.05

    def test_single_epoch_adversaries_coincide(self):
        r = run(1)
        assert r.pooled_rate == r.segmenting_rate


class TestSegmentingRefinement:
    def test_segmenting_adversary_grows_with_epochs(self):
        """The refinement the paper misses: a time-segmenting MA gets a
        fresh attack per participation."""
        rates = [run(e).segmenting_rate for e in (1, 3, 6)]
        assert rates[0] < rates[-1]
        assert rates[-1] > 0.7

    def test_finer_breaks_still_help_the_recurring_sp(self):
        """The mitigation is the paper's own: finer cash breaks."""
        coarse = run(4, break_strategy="pcba")
        fine = run(4, break_strategy="unitary")
        assert fine.segmenting_rate <= coarse.segmenting_rate

    def test_zero_trials(self):
        r = longitudinal_experiment(level=4, epochs=2, jobs_per_epoch=3,
                                    trials=0, rng=random.Random(1))
        assert r.pooled_rate == 0.0 and r.segmenting_rate == 0.0

"""Tests for staged malicious-party behaviours: every defence must fire."""

from __future__ import annotations

import pytest

from repro.attacks.malicious import (
    jo_reuses_node,
    jo_ships_garbage,
    jo_underpays,
    ma_peeks_payment,
    sp_replays_token,
)
from repro.core.ppms_dec import PPMSdecSession


@pytest.fixture()
def session(dec_params, rng):
    return PPMSdecSession(dec_params, rng, rsa_bits=512)


class TestMaliciousJO:
    def test_underpayment_detected(self, session):
        outcome = jo_underpays(session, advertised=5, shipped=3)
        assert not outcome.succeeded
        assert "coin-count" in outcome.caught_by
        assert "3 valid credits" in outcome.detail

    def test_underpayment_requires_actual_underpayment(self, session):
        with pytest.raises(ValueError):
            jo_underpays(session, advertised=3, shipped=3)

    def test_node_reuse_detected(self, session):
        outcome = jo_reuses_node(session)
        assert not outcome.succeeded
        assert "serial" in outcome.caught_by

    def test_garbage_payment_detected(self, session):
        outcome = jo_ships_garbage(session)
        assert not outcome.succeeded
        assert "zero valid coins" in outcome.caught_by
        assert "6 fakes" in outcome.detail


class TestMaliciousSP:
    def test_replay_detected(self, session):
        outcome = sp_replays_token(session)
        assert not outcome.succeeded
        assert "serial" in outcome.caught_by


class TestCuriousMA:
    def test_payment_opaque(self, session, rng):
        outcome = ma_peeks_payment(session, rng)
        assert not outcome.succeeded
        assert "designated-receiver" in outcome.caught_by
        assert "length visible" in outcome.detail  # it DOES learn the size


class TestMaliciousPbs:
    @pytest.fixture()
    def pbs_session(self, rng):
        from repro.core.ppms_pbs import PPMSpbsSession

        return PPMSpbsSession(rng, rsa_bits=512)

    def test_unsigned_coin_rejected(self, pbs_session, rng):
        from repro.attacks.malicious import pbs_sp_mints_unsigned_coin

        outcome = pbs_sp_mints_unsigned_coin(pbs_session, rng)
        assert not outcome.succeeded
        assert "verification" in outcome.caught_by

    def test_stolen_coin_rejected(self, pbs_session):
        from repro.attacks.malicious import pbs_sp_steals_coin

        outcome = pbs_sp_steals_coin(pbs_session)
        assert not outcome.succeeded
        assert "payee key" in outcome.caught_by

    def test_serial_swap_caught_by_sp(self, pbs_session, rng):
        from repro.attacks.malicious import pbs_jo_swaps_serial

        outcome = pbs_jo_swaps_serial(pbs_session, rng)
        assert not outcome.succeeded
        assert "unblinding" in outcome.caught_by

"""Tests for the linkage experiments and adversary views."""

from __future__ import annotations

import random

import pytest

from repro.attacks.adversary import CuriousJOView, CuriousMAView, NetworkEavesdropperView
from repro.attacks.linkage import (
    denomination_experiment,
    withdrawal_unlinkability_experiment,
)
from repro.net.transport import Transport


class TestDenominationExperiment:
    def test_break_strategies_ordered(self, rng):
        """The paper's core privacy claim, quantitatively: breaking the
        cash monotonically weakens the denomination attack."""
        results = {
            s: denomination_experiment(s, level=6, n_jobs=12, trials=150, rng=rng)
            for s in ("none", "pcba", "epcba", "unitary")
        }
        assert results["none"].identification_rate > results["pcba"].identification_rate
        assert results["pcba"].identification_rate >= results["epcba"].identification_rate
        assert results["epcba"].identification_rate >= results["unitary"].identification_rate

    def test_anonymity_sets_grow(self, rng):
        none = denomination_experiment("none", level=6, n_jobs=12, trials=100, rng=rng)
        unit = denomination_experiment("unitary", level=6, n_jobs=12, trials=100, rng=rng)
        assert unit.mean_anonymity_set > none.mean_anonymity_set

    def test_partial_visibility_weakens_attack_confidence(self, rng):
        """With half the stream hidden the candidate set shifts; the
        experiment must still run and produce sane rates."""
        summary = denomination_experiment(
            "unitary", level=5, n_jobs=10, trials=80, rng=rng, deposits_visible="half"
        )
        assert 0.0 <= summary.identification_rate <= 1.0

    def test_rejects_unknown_visibility(self, rng):
        with pytest.raises(ValueError):
            denomination_experiment(
                "pcba", level=4, n_jobs=5, trials=5, rng=rng, deposits_visible="some"
            )

    def test_zero_trials(self, rng):
        summary = denomination_experiment("pcba", level=4, n_jobs=5, trials=0, rng=rng)
        assert summary.identification_rate == 0.0


class TestWithdrawalUnlinkability:
    def test_linking_rate_near_chance(self, dec_params, rng):
        from repro.ecash.dec import DECBank

        bank = DECBank.create(dec_params, rng)
        rate = withdrawal_unlinkability_experiment(dec_params, bank, n_coins=8, rng=rng)
        # chance level is 1/8 = 0.125; anything resembling certainty fails
        assert rate <= 0.5


class TestAdversaryViews:
    def test_curious_ma_accumulates(self):
        view = CuriousMAView()
        view.observe_job("j1", 5)
        view.observe_withdrawal("jo", 8)
        view.observe_deposit("sp", 1, 0.5)
        view.observe_deposit("sp", 4, 1.5)
        view.observe_deposit("other", 2, 2.0)
        assert view.published_jobs == {"j1": 5}
        assert view.deposits_of("sp") == [1, 4]

    def test_curious_ma_taps_transport(self):
        view = CuriousMAView()
        t = Transport()
        view.attach(t)
        t.send("A", "B", "k", 1)
        assert len(view.envelopes) == 1

    def test_curious_jo_view(self):
        view = CuriousJOView()
        view.observe_labor(b"pseud")
        view.observe_blinded_request(12345)
        view.observe_report(b"data")
        assert view.labor_pseudonyms == [b"pseud"]
        assert view.blinded_requests == [12345]

    def test_eavesdropper_histogram(self):
        view = NetworkEavesdropperView()
        t = Transport()
        view.attach(t)
        t.send("A", "B", "k", b"x" * 10)
        t.send("C", "D", "k", b"y" * 10)
        hist = view.size_histogram()
        assert sum(hist.values()) == 2
        assert len(hist) == 1  # identical sizes -> indistinguishable


class TestGridSweep:
    def test_parallel_equals_sequential(self):
        from repro.attacks.linkage import denomination_experiment_grid

        grid = [(s, 5, 6, 30) for s in ("none", "unitary")]
        seq = denomination_experiment_grid(grid, seed=9, processes=1)
        par = denomination_experiment_grid(grid, seed=9, processes=2)
        assert seq == par

    def test_results_in_grid_order(self):
        from repro.attacks.linkage import denomination_experiment_grid

        grid = [("pcba", 4, 5, 10), ("epcba", 4, 5, 10)]
        results = denomination_experiment_grid(grid, seed=1, processes=1)
        assert [r.strategy for r in results] == ["pcba", "epcba"]

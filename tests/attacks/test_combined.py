"""Tests for the combined (timing × denomination) adversary."""

from __future__ import annotations

import random

import pytest

from repro.attacks.combined import combined_experiment


def run(break_strategy, random_waits, seed=11, participants=10, trials=25):
    return combined_experiment(
        level=6,
        participants=participants,
        trials=trials,
        rng=random.Random(seed),
        break_strategy=break_strategy,
        random_waits=random_waits,
    )


class TestDefenceInDepth:
    def test_no_defences_fully_broken(self):
        result = run(break_strategy=None, random_waits=False)
        assert result.combined > 0.9

    def test_timing_defence_alone_insufficient(self):
        """Random waits but no break: denominations still identify."""
        result = run(break_strategy=None, random_waits=True)
        assert result.denomination_only > 0.5
        assert result.combined >= result.denomination_only - 0.05

    def test_break_defence_alone_insufficient(self):
        """Cash break but immediate deposits: timing still identifies."""
        result = run(break_strategy="unitary", random_waits=False)
        assert result.timing_only > 0.9
        assert result.combined > 0.9

    def test_both_defences_protect(self):
        result = run(break_strategy="unitary", random_waits=True)
        assert result.combined < 0.5
        # and both single signals are individually weak too
        assert result.timing_only < 0.5
        assert result.denomination_only < 0.5

    def test_combined_never_much_worse_than_best_single(self):
        """Fusing signals should not hurt the adversary."""
        for strategy, waits in ((None, False), ("pcba", False), ("unitary", True)):
            result = run(break_strategy=strategy, random_waits=waits, seed=3)
            best_single = max(result.timing_only, result.denomination_only)
            assert result.combined >= best_single - 0.15

    def test_result_fields(self):
        result = run(break_strategy="epcba", random_waits=True, trials=5, participants=4)
        assert result.trials == 5 and result.participants == 4
        for rate in (result.timing_only, result.denomination_only, result.combined):
            assert 0.0 <= rate <= 1.0

"""Tests for the instrumentation layer: op counts, traffic, timing."""

from __future__ import annotations

import time

import pytest

from repro.metrics.opcount import OPS, OpCounter, format_table
from repro.metrics.timing import Stopwatch, time_operation
from repro.metrics.traffic import TrafficMeter, format_traffic_table


class TestOpCounter:
    def test_record_and_get(self):
        c = OpCounter()
        c.record("JO", "Enc")
        c.record("JO", "Enc", 3)
        assert c.get("JO", "Enc") == 4
        assert c.get("JO", "Dec") == 0
        assert c.get("SP", "Enc") == 0

    def test_rejects_unknown_op(self):
        c = OpCounter()
        with pytest.raises(ValueError):
            c.record("JO", "Sign")

    def test_rejects_negative(self):
        c = OpCounter()
        with pytest.raises(ValueError):
            c.record("JO", "Enc", -1)

    def test_party_row_zero_filled(self):
        c = OpCounter()
        c.record("MA", "H", 2)
        assert c.party_row("MA") == {"ZKP": 0, "Enc": 0, "Dec": 0, "H": 2}

    def test_summary_format(self):
        c = OpCounter()
        c.record("JO", "ZKP", 9)
        c.record("JO", "Enc", 4)
        assert c.summary("JO") == "9ZKP+4Enc"
        assert c.summary("SP") == "0"

    def test_merged(self):
        a, b = OpCounter(), OpCounter()
        a.record("JO", "Enc", 2)
        b.record("JO", "Enc", 3)
        b.record("SP", "Dec")
        m = a.merged(b)
        assert m.get("JO", "Enc") == 5 and m.get("SP", "Dec") == 1
        assert a.get("JO", "Enc") == 2  # originals untouched

    def test_reset(self):
        c = OpCounter()
        c.record("JO", "Enc")
        c.reset()
        assert c.get("JO", "Enc") == 0

    def test_format_table_contains_all_parties(self):
        c = OpCounter()
        c.record("JO", "ZKP", 5)
        text = format_table(c, ["JO", "SP", "MA"], title="Table I")
        assert "Table I" in text and "JO" in text and "MA" in text
        for op in OPS:
            assert op in text


class TestTrafficMeter:
    def test_record(self):
        m = TrafficMeter()
        m.record("JO", "MA", 100)
        assert m.output_bytes("JO") == 100
        assert m.input_bytes("MA") == 100
        assert m.total_bytes() == 100

    def test_total_counts_each_message_once(self):
        m = TrafficMeter()
        m.record("A", "B", 50)
        m.record("B", "A", 70)
        assert m.total_bytes() == 120
        assert m.total_kb() == pytest.approx(120 / 1024)

    def test_rejects_negative(self):
        m = TrafficMeter()
        with pytest.raises(ValueError):
            m.record("A", "B", -1)

    def test_reset(self):
        m = TrafficMeter()
        m.record("A", "B", 10)
        m.reset()
        assert m.total_bytes() == 0 and m.messages == 0

    def test_format_table(self):
        m = TrafficMeter()
        m.record("JO", "MA", 664)
        text = format_traffic_table(m, ["JO", "MA"], title="Table II")
        assert "Table II" in text and "664" in text and "total" in text


class TestTiming:
    def test_time_operation_counts(self):
        calls = []
        result = time_operation(lambda: calls.append(1), repeats=5, warmup=2)
        assert len(calls) == 7
        assert result.repeats == 5
        assert result.mean >= 0 and result.minimum <= result.mean <= result.maximum

    def test_measures_real_time(self):
        result = time_operation(lambda: time.sleep(0.002), repeats=3, warmup=0)
        assert result.mean >= 0.0015
        assert result.mean_ms >= 1.5

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_operation(lambda: None, repeats=0)

    def test_str_mentions_ms(self):
        result = time_operation(lambda: None, repeats=2, warmup=0)
        assert "ms" in str(result)

    def test_stopwatch_phases(self):
        sw = Stopwatch()
        sw.start("a")
        time.sleep(0.001)
        sw.start("b")
        time.sleep(0.001)
        sw.stop()
        assert set(sw.phases) == {"a", "b"}
        assert sw.total() == pytest.approx(sum(sw.phases.values()))

    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        for _ in range(2):
            sw.start("x")
            sw.stop()
        assert sw.phases["x"] >= 0

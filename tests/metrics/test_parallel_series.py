"""Tests for the parallel sweep helper and the series/figure renderer."""

from __future__ import annotations

import pytest

from repro.metrics.parallel import SweepPoint, default_processes, sweep
from repro.metrics.series import FigureData, Series, render_ascii_plot, render_table


def _square(point: SweepPoint) -> int:
    return point.params * point.params


def _seeded(point: SweepPoint) -> tuple[int, int]:
    return (point.index, point.seed)


def _boom(point: SweepPoint) -> None:
    raise RuntimeError("worker exploded")


class TestSweep:
    def test_in_process_results_ordered(self):
        assert sweep(_square, [1, 2, 3, 4], processes=1) == [1, 4, 9, 16]

    def test_multiprocess_matches_in_process(self):
        grid = list(range(8))
        assert sweep(_square, grid, processes=2) == sweep(_square, grid, processes=1)

    def test_seeds_deterministic_and_distinct(self):
        a = sweep(_seeded, ["x", "y", "z"], seed=5, processes=1)
        b = sweep(_seeded, ["x", "y", "z"], seed=5, processes=1)
        assert a == b
        assert len({s for (_, s) in a}) == 3

    def test_seed_changes_with_master_seed(self):
        a = sweep(_seeded, ["x"], seed=1, processes=1)
        b = sweep(_seeded, ["x"], seed=2, processes=1)
        assert a != b

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="exploded"):
            sweep(_boom, [1], processes=1)
        with pytest.raises(RuntimeError, match="exploded"):
            sweep(_boom, [1, 2], processes=2)

    def test_empty_grid(self):
        assert sweep(_square, [], processes=4) == []

    def test_default_processes_positive(self):
        assert default_processes() >= 1


class TestSeries:
    def test_add_and_accessors(self):
        s = Series("curve")
        s.add(1, 2.0)
        s.add(2, 4.0)
        assert s.xs() == [1.0, 2.0] and s.ys() == [2.0, 4.0]

    def test_figure_new_series(self):
        fig = FigureData(title="t", xlabel="x", ylabel="y")
        s = fig.new_series("a")
        s.add(0, 1)
        assert fig.all_points() == [(0.0, 1.0)]


class TestRendering:
    @pytest.fixture()
    def fig(self):
        fig = FigureData(title="Fig. X", xlabel="level", ylabel="ms")
        a = fig.new_series("dec")
        b = fig.new_series("pbs")
        for x in range(5):
            a.add(x, 10.0 * (x + 1))
            b.add(x, 1.0 * (x + 1))
        return fig

    def test_table_contains_labels_and_values(self, fig):
        text = render_table(fig)
        assert "Fig. X" in text and "dec" in text and "pbs" in text
        assert "50.000" in text and "5.000" in text

    def test_table_handles_missing_points(self):
        fig = FigureData(title="t", xlabel="x", ylabel="y")
        a = fig.new_series("a")
        b = fig.new_series("b")
        a.add(1, 1)
        b.add(2, 2)
        text = render_table(fig)
        assert "-" in text

    def test_plot_dimensions(self, fig):
        text = render_ascii_plot(fig, width=40, height=8)
        lines = text.splitlines()
        plot_rows = [l for l in lines if l.startswith("|")]
        assert len(plot_rows) == 8
        assert all(len(l) == 41 for l in plot_rows)

    def test_plot_legend_and_markers(self, fig):
        text = render_ascii_plot(fig)
        assert "a=dec" in text and "b=pbs" in text
        assert "a" in "".join(l for l in text.splitlines() if l.startswith("|"))

    def test_log_scale(self, fig):
        text = render_ascii_plot(fig, logy=True)
        assert "log10" in text

    def test_empty_figure(self):
        fig = FigureData(title="empty", xlabel="x", ylabel="y")
        assert "(no data)" in render_ascii_plot(fig)

    def test_single_point(self):
        fig = FigureData(title="one", xlabel="x", ylabel="y")
        fig.new_series("s").add(3, 7)
        text = render_ascii_plot(fig)
        assert "one" in text  # degenerate spans must not divide by zero

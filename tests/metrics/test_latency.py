"""Latency recorder, quantiles, SLO checks."""

from __future__ import annotations

import pytest

from repro.metrics.latency import (
    LatencyRecorder,
    SLOTarget,
    _quantile,
    format_latency_report,
)


class TestQuantile:
    def test_endpoints_and_median(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert _quantile(data, 0.0) == 1.0
        assert _quantile(data, 0.5) == 3.0
        assert _quantile(data, 1.0) == 5.0

    def test_linear_interpolation(self):
        assert _quantile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_single_sample(self):
        assert _quantile([7.0], 0.99) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            _quantile([], 0.5)
        with pytest.raises(ValueError):
            _quantile([1.0], 1.5)


class TestRecorder:
    def test_report_statistics(self):
        recorder = LatencyRecorder()
        for v in (0.030, 0.010, 0.020):
            recorder.record(v)
        report = recorder.report()
        assert report.count == 3
        assert report.mean == pytest.approx(0.020)
        assert report.p50 == pytest.approx(0.020)
        assert report.maximum == pytest.approx(0.030)
        assert report.p50_ms == pytest.approx(20.0)

    def test_throughput_uses_marked_span(self):
        recorder = LatencyRecorder()
        recorder.record(0.001)
        recorder.record(0.001)
        recorder.mark_span(10.0, 14.0)
        assert recorder.report().throughput == pytest.approx(0.5)

    def test_span_only_widens(self):
        recorder = LatencyRecorder()
        recorder.record(0.001)
        recorder.mark_span(5.0, 6.0)
        recorder.mark_span(5.5, 5.8)  # inside: no effect
        recorder.mark_span(4.0, 7.0)  # wider: wins
        assert recorder.report().elapsed == pytest.approx(3.0)

    def test_empty_report_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder().report()

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-0.1)

    def test_len(self):
        recorder = LatencyRecorder()
        assert len(recorder) == 0
        recorder.record(0.5)
        assert len(recorder) == 1


class TestSLO:
    def _report(self):
        recorder = LatencyRecorder()
        for v in (0.010, 0.020, 0.100):
            recorder.record(v)
        recorder.mark_span(0.0, 1.0)
        return recorder.report()

    def test_met(self):
        report = self._report()
        assert SLOTarget(p99=0.2, min_throughput=1.0).check(report) == ()

    def test_latency_objective_missed(self):
        findings = SLOTarget(p95=0.010).check(self._report())
        assert len(findings) == 1 and "p95" in findings[0]

    def test_throughput_objective_missed(self):
        findings = SLOTarget(min_throughput=100.0).check(self._report())
        assert len(findings) == 1 and "throughput" in findings[0]

    def test_none_objectives_skipped(self):
        assert SLOTarget().check(self._report()) == ()


def test_format_latency_report_renders_fields():
    recorder = LatencyRecorder()
    recorder.record(0.042)
    recorder.mark_span(0.0, 1.0)
    text = format_latency_report(recorder.report(), title="deposits")
    assert "[deposits]" in text
    assert "p99" in text and "42.00 ms" in text

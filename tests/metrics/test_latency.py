"""Latency recorder, quantiles, SLO checks."""

from __future__ import annotations

import pytest

from repro.metrics.latency import (
    LatencyRecorder,
    SLOTarget,
    _nearest_rank,
    _quantile,
    format_latency_report,
)


class TestQuantile:
    def test_endpoints_and_median(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert _quantile(data, 0.0) == 1.0
        assert _quantile(data, 0.5) == 3.0
        assert _quantile(data, 1.0) == 5.0

    def test_linear_interpolation(self):
        assert _quantile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_single_sample(self):
        assert _quantile([7.0], 0.99) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            _quantile([], 0.5)
        with pytest.raises(ValueError):
            _quantile([1.0], 1.5)


class TestNearestRank:
    def test_returns_an_order_statistic(self):
        data = [1.0, 2.0, 3.0, 4.0]
        # ceil(q*n)-th sample, 1-indexed
        assert _nearest_rank(data, 0.0) == 1.0
        assert _nearest_rank(data, 0.25) == 1.0
        assert _nearest_rank(data, 0.26) == 2.0
        assert _nearest_rank(data, 0.5) == 2.0
        assert _nearest_rank(data, 0.99) == 4.0
        assert _nearest_rank(data, 1.0) == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            _nearest_rank([], 0.5)
        with pytest.raises(ValueError):
            _nearest_rank([1.0], -0.1)

    def test_small_sample_tail_is_the_observed_worst_case(self):
        # the regression this guards: interpolation on 10 samples
        # reported p99 = 0.059 — a latency NO request experienced —
        # where the honest answer is the slowest observation
        recorder = LatencyRecorder()
        for v in [0.010] * 9 + [0.500]:
            recorder.record(v)
        report = recorder.report()
        assert report.p99 == 0.500  # rank ceil(0.99*10) = 10th sample
        assert report.p95 == 0.500  # rank ceil(0.95*10) = 10th sample
        assert report.p50 == 0.010  # rank ceil(0.50*10) = 5th sample
        assert report.p99 in recorder._samples

    def test_large_samples_keep_interpolation(self):
        recorder = LatencyRecorder()
        for i in range(100):
            recorder.record(float(i + 1))
        report = recorder.report()
        # 100 samples: the interpolated path, pos = 0.99 * 99 = 98.01
        assert report.p99 == pytest.approx(99.01)
        assert report.p50 == pytest.approx(50.5)


class TestRecorder:
    def test_report_statistics(self):
        recorder = LatencyRecorder()
        for v in (0.030, 0.010, 0.020):
            recorder.record(v)
        report = recorder.report()
        assert report.count == 3
        assert report.mean == pytest.approx(0.020)
        assert report.p50 == pytest.approx(0.020)
        assert report.maximum == pytest.approx(0.030)
        assert report.p50_ms == pytest.approx(20.0)

    def test_throughput_uses_marked_span(self):
        recorder = LatencyRecorder()
        recorder.record(0.001)
        recorder.record(0.001)
        recorder.mark_span(10.0, 14.0)
        assert recorder.report().throughput == pytest.approx(0.5)

    def test_span_only_widens(self):
        recorder = LatencyRecorder()
        recorder.record(0.001)
        recorder.mark_span(5.0, 6.0)
        recorder.mark_span(5.5, 5.8)  # inside: no effect
        recorder.mark_span(4.0, 7.0)  # wider: wins
        assert recorder.report().elapsed == pytest.approx(3.0)

    def test_empty_report_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder().report()

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-0.1)

    def test_len(self):
        recorder = LatencyRecorder()
        assert len(recorder) == 0
        recorder.record(0.5)
        assert len(recorder) == 1


class TestSLO:
    def _report(self):
        recorder = LatencyRecorder()
        for v in (0.010, 0.020, 0.100):
            recorder.record(v)
        recorder.mark_span(0.0, 1.0)
        return recorder.report()

    def test_met(self):
        report = self._report()
        assert SLOTarget(p99=0.2, min_throughput=1.0).check(report) == ()

    def test_latency_objective_missed(self):
        findings = SLOTarget(p95=0.010).check(self._report())
        assert len(findings) == 1 and "p95" in findings[0]

    def test_throughput_objective_missed(self):
        findings = SLOTarget(min_throughput=100.0).check(self._report())
        assert len(findings) == 1 and "throughput" in findings[0]

    def test_none_objectives_skipped(self):
        assert SLOTarget().check(self._report()) == ()


def test_format_latency_report_renders_fields():
    recorder = LatencyRecorder()
    recorder.record(0.042)
    recorder.mark_span(0.0, 1.0)
    text = format_latency_report(recorder.report(), title="deposits")
    assert "[deposits]" in text
    assert "p99" in text and "42.00 ms" in text

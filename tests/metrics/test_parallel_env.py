"""The REPRO_PROCESSES environment override for worker counts."""

from __future__ import annotations

import os

from repro.metrics.parallel import default_processes


def test_env_override_wins(monkeypatch):
    monkeypatch.setenv("REPRO_PROCESSES", "3")
    assert default_processes() == 3
    monkeypatch.setenv("REPRO_PROCESSES", "1")
    assert default_processes() == 1


def test_env_override_allows_oversubscription(monkeypatch):
    cores = os.cpu_count() or 2
    monkeypatch.setenv("REPRO_PROCESSES", str(cores * 4))
    assert default_processes() == cores * 4


def test_invalid_values_fall_back_to_heuristic(monkeypatch):
    expected = max(1, (os.cpu_count() or 2) - 1)
    for bad in ("0", "-2", "lots", "", "  "):
        monkeypatch.setenv("REPRO_PROCESSES", bad)
        assert default_processes() == expected


def test_unset_uses_heuristic(monkeypatch):
    monkeypatch.delenv("REPRO_PROCESSES", raising=False)
    assert default_processes() == max(1, (os.cpu_count() or 2) - 1)

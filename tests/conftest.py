"""Shared fixtures.

Expensive artefacts (group towers, pairing curves, RSA keys, DEC
parameter sets) are session-scoped and deterministic; anything mutable
(banks, wallets, sessions) is built per test from them.  All bit sizes
are test-sized — the benches use the documented defaults.

Every RNG fixture honours ``REPRO_TEST_SEED`` (int literal, hex ok).
Unset, the historical defaults apply (``0xC0FFEE`` per-test,
``0xDEC0DE`` for the session artefacts) so baseline runs are
bit-for-bit what they always were; set, both streams derive from the
override and every failure report prints the effective seed plus the
exact command that replays it.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, settings as hypothesis_settings

import repro.net  # noqa: F401  — registers codec wire types

# Arbitrary-precision arithmetic is timing-noisy; wall-clock deadlines
# would make property tests flaky on slow or contended machines.
hypothesis_settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
hypothesis_settings.load_profile("repro")
from repro.crypto import rsa
from repro.crypto.groups import SchnorrGroup, build_tower
from repro.crypto.pairing import TatePairing, ToyPairing, generate_curve
from repro.ecash.dec import DECBank
from repro.ecash.spend import DECParams
from repro.testing.properties import env_seed

#: Effective base seed; ``REPRO_TEST_SEED`` overrides, default 0xC0FFEE.
BASE_SEED = env_seed()
_OVERRIDDEN = bool(os.environ.get("REPRO_TEST_SEED", "").strip())
#: Session artefacts keep their historical seed unless overridden.
SESSION_SEED: object = f"session:{BASE_SEED:#x}" if _OVERRIDDEN else 0xDEC0DE


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Stamp every failure with the seed and a one-line replay command."""
    outcome = yield
    report = outcome.get_result()
    if report.failed and call.when == "call":
        report.sections.append((
            "repro seed",
            f"effective REPRO_TEST_SEED={BASE_SEED:#x}"
            f" (session seed {SESSION_SEED!r})\n"
            f"replay: REPRO_TEST_SEED={BASE_SEED:#x} "
            f"python -m pytest '{item.nodeid}'",
        ))


@pytest.fixture()
def rng() -> random.Random:
    """Fresh deterministic RNG per test."""
    return random.Random(BASE_SEED)


@pytest.fixture(scope="session")
def session_rng() -> random.Random:
    return random.Random(SESSION_SEED)


@pytest.fixture(scope="session")
def schnorr_group(session_rng) -> SchnorrGroup:
    return SchnorrGroup.generate(64, session_rng)


@pytest.fixture(scope="session")
def tower3(session_rng):
    """Depth-3 Cunningham tower (precomputed chain)."""
    return build_tower(3, session_rng)


@pytest.fixture(scope="session")
def tate_backend(session_rng) -> TatePairing:
    return TatePairing(generate_curve(32, session_rng))


@pytest.fixture(scope="session")
def toy_backend(session_rng) -> ToyPairing:
    return ToyPairing.generate(48, session_rng)


@pytest.fixture(scope="session")
def rsa_key(session_rng) -> rsa.RSAPrivateKey:
    return rsa.generate_keypair(512, session_rng)


@pytest.fixture(scope="session")
def rsa_key_other(session_rng) -> rsa.RSAPrivateKey:
    return rsa.generate_keypair(512, session_rng)


@pytest.fixture(scope="session")
def dec_params(session_rng) -> DECParams:
    """Level-3 DEC instance with a real (small) Tate pairing."""
    from repro.ecash.dec import setup

    return setup(3, session_rng, security_bits=40, edge_rounds=8)


@pytest.fixture()
def dec_bank(dec_params, rng) -> DECBank:
    return DECBank.create(dec_params, rng)


@pytest.fixture(scope="session")
def dec_params_toy(session_rng) -> DECParams:
    """Level-4 DEC instance on the toy backend (fast protocol tests)."""
    from repro.ecash.dec import setup

    return setup(4, session_rng, security_bits=80, real_pairing=False, edge_rounds=6)


@pytest.fixture(scope="session")
def campaign_substrate(session_rng):
    """Shared toy ``(params, keypair)`` for the campaign-engine tests.

    Derived from the session seed so every campaign test (and the
    byte-for-byte replay regression) runs over one deterministic
    substrate instead of regrowing group towers per test.
    """
    from repro.testing.scenario import toy_market_params

    return toy_market_params(random.Random(f"campaign:{SESSION_SEED!r}"))

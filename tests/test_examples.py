"""Smoke coverage for the example scripts.

Full example runs take tens of seconds each (they use bench-sized
parameters on purpose), so the suite compiles every script and executes
only the fast one end-to-end; the others are exercised implicitly by
the protocol/integration tests that cover the same code paths.
"""

from __future__ import annotations

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in ALL_EXAMPLES}
    assert {"quickstart.py", "hiv_study_market.py", "noise_mapping_unitary.py",
            "denomination_attack_demo.py", "market_day.py",
            "resilient_market.py"} <= names


@pytest.mark.parametrize("script", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(script):
    py_compile.compile(str(script), doraise=True)


def test_denomination_demo_runs():
    """The fastest example, run for real with a tiny trial count."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "denomination_attack_demo.py"), "20"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "unitary" in result.stdout
    assert "ident%" in result.stdout

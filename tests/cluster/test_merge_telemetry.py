"""tools/merge_telemetry.py: fold per-node metric dumps into one view."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

from repro.obs.registry import MetricsRegistry

_TOOL = os.path.join(os.path.dirname(__file__), "..", "..", "tools",
                     "merge_telemetry.py")


@pytest.fixture(scope="module")
def tool():
    spec = importlib.util.spec_from_file_location("merge_telemetry", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _node_snapshot(frames: int, lsn: int) -> dict:
    registry = MetricsRegistry(enabled=True)
    registry.counter("repro_frontend_frames_total", "request frames").inc(frames)
    registry.gauge("repro_journal_lsn", "newest lsn").set(lsn)
    return registry.snapshot()


def test_merge_tags_every_series_with_its_node(tool):
    merged = tool.merge_snapshots([
        ("n0", _node_snapshot(frames=3, lsn=7)),
        ("n1", _node_snapshot(frames=5, lsn=2)),
    ])
    snapshot = merged.snapshot()
    counters = {(c["name"], c["labels"].get("node")): c["value"]
                for c in snapshot["counters"]}
    assert counters[("repro_frontend_frames_total", "n0")] == 3
    assert counters[("repro_frontend_frames_total", "n1")] == 5
    gauges = {(g["name"], g["labels"].get("node")): g["value"]
              for g in snapshot["gauges"]}
    assert gauges[("repro_journal_lsn", "n0")] == 7
    assert gauges[("repro_journal_lsn", "n1")] == 2


def test_aggregate_sums_counters_across_nodes(tool):
    merged = tool.merge_snapshots(
        [("n0", _node_snapshot(frames=3, lsn=7)),
         ("n1", _node_snapshot(frames=5, lsn=2))],
        aggregate=True,
    )
    snapshot = merged.snapshot()
    counters = {c["name"]: c["value"] for c in snapshot["counters"]}
    assert counters["repro_frontend_frames_total"] == 8
    for entry in snapshot["counters"] + snapshot["gauges"]:
        assert "node" not in entry["labels"]


def test_cli_merges_files_and_writes_json(tool, tmp_path, capsys):
    for name, frames in (("n0", 2), ("n1", 4)):
        with open(tmp_path / f"{name}.json", "w", encoding="utf-8") as fh:
            json.dump(_node_snapshot(frames=frames, lsn=frames), fh)
    out = tmp_path / "merged.json"
    rc = tool.main([str(tmp_path / "n0.json"), str(tmp_path / "n1.json"),
                    "-o", str(out)])
    assert rc == 0
    merged = json.loads(out.read_text())
    nodes = {c["labels"].get("node") for c in merged["counters"]
             if c["name"] == "repro_frontend_frames_total"}
    assert nodes == {"n0", "n1"}  # node names default to the file stems


def test_cli_accepts_wrapped_dumps_and_name_overrides(tool, tmp_path, capsys):
    # a saved control-frame reply nests the snapshot under "metrics"
    with open(tmp_path / "reply.json", "w", encoding="utf-8") as fh:
        json.dump({"ok": True, "metrics": _node_snapshot(frames=9, lsn=1)}, fh)
    rc = tool.main([f"alpha={tmp_path / 'reply.json'}", "--prometheus",
                    "-o", str(tmp_path / "out.prom")])
    assert rc == 0
    text = (tmp_path / "out.prom").read_text()
    assert 'node="alpha"' in text
    assert "repro_frontend_frames_total" in text


def test_cli_rejects_non_snapshot_files(tool, tmp_path):
    with open(tmp_path / "junk.json", "w", encoding="utf-8") as fh:
        json.dump({"hello": "world"}, fh)
    with pytest.raises(ValueError, match="not a metrics snapshot"):
        tool.main([str(tmp_path / "junk.json")])

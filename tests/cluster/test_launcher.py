"""Bootstrap blob round-trip and the real-SIGKILL subprocess smoke."""

from __future__ import annotations

import os

import pytest

from repro.cluster.launcher import (
    ProcessCluster,
    main,
    read_bootstrap,
    write_bootstrap,
)


def test_bootstrap_blob_round_trips(tmp_path, dec_params_toy, cluster_keypair):
    path = str(tmp_path / "bootstrap.blob")
    write_bootstrap(path, dec_params_toy, cluster_keypair,
                    nodes=["n0", "n1"], vnodes=32, n_shards=2,
                    checkpoint_every=16)
    loaded = read_bootstrap(path)
    assert loaded["nodes"] == ["n0", "n1"]
    assert loaded["vnodes"] == 32
    assert loaded["n_shards"] == 2
    assert loaded["checkpoint_every"] == 16
    assert loaded["params"].tree_level == dec_params_toy.tree_level
    kp = loaded["keypair"]
    assert (kp.x, kp.y) == (cluster_keypair.x, cluster_keypair.y)
    assert kp.public == cluster_keypair.public


def test_bootstrap_blob_rejects_tampering(tmp_path, dec_params_toy,
                                          cluster_keypair):
    path = str(tmp_path / "bootstrap.blob")
    write_bootstrap(path, dec_params_toy, cluster_keypair, nodes=["n0", "n1"])
    blob = bytearray(open(path, "rb").read())
    blob[-1] ^= 0x01
    with open(path, "wb") as fh:
        fh.write(blob)
    with pytest.raises(ValueError, match="digest"):
        read_bootstrap(path)
    with open(path, "wb") as fh:
        fh.write(b"not a bootstrap at all")
    with pytest.raises(ValueError, match="magic"):
        read_bootstrap(path)


def test_init_cli_writes_compose_artifacts(tmp_path):
    rundir = str(tmp_path / "run")
    rc = main([
        "init", "--rundir", rundir,
        "--nodes", "n0:127.0.0.1:8000:8001", "n1:127.0.0.1:8010:8011",
        "--tree-level", "3", "--security-bits", "64", "--edge-rounds", "4",
    ])
    assert rc == 0
    assert os.path.exists(os.path.join(rundir, "bootstrap.blob"))
    assert os.path.exists(os.path.join(rundir, "cluster.json"))
    loaded = read_bootstrap(os.path.join(rundir, "bootstrap.blob"))
    assert loaded["nodes"] == ["n0", "n1"]
    assert loaded["params"].tree_level == 3


def test_subprocess_cluster_survives_a_real_sigkill(tmp_path, dec_params_toy,
                                                    cluster_keypair):
    rundir = str(tmp_path / "run")
    with ProcessCluster(dec_params_toy, cluster_keypair, rundir,
                        n_nodes=3, checkpoint_every=8) as cluster:
        with cluster.router(attempts=2, backoff=0.01,
                            refresh_backoff=0.01) as router:
            for i in range(6):
                reply = router.request(
                    "open-account", {"aid": f"sp{i}", "balance": 4 * i},
                    sender=f"sp{i}",
                )
                assert reply["status"] == "OK"

            victim = cluster.map.owner_of("sp0")
            cluster.kill(victim)  # genuine SIGKILL: process state is gone
            adopter = cluster.failover(victim)
            ping = cluster.control(adopter, {"type": "ping"})
            assert victim in ping["serving"]

            # every account — victim-owned included — still answers
            for i in range(6):
                reply = router.request("balance", {"aid": f"sp{i}"},
                                       sender=f"sp{i}")
                assert reply == {"status": "OK", "balance": 4 * i}

            # per-node telemetry only comes from survivors
            snaps = cluster.telemetry_snapshots()
            assert victim not in snaps and adopter in snaps

"""Byte-identical parity: the cluster answers exactly like one node.

The same offline-minted trace (issuance happens client-side, so no
service state is consumed producing it) is replayed against a plain
single-node ``ServiceFrontend`` and against a three-node cluster
through the router; every reply is canonically encoded and compared as
bytes.  Fault-free, replay-free traffic only — ``REJECTED`` evidence
embeds node-local sequence numbers and withdraw verdicts embed
issuance randomness, so those kinds are exercised by the failover and
loadgen suites instead.
"""

from __future__ import annotations

import random

from repro.net.codec import encode
from repro.service.frontend import ServiceClient, ServiceFrontend
from repro.service.journal import Journal
from repro.service.loadgen import Request, mint_offline_deposit_traffic
from repro.service.server import MarketService
from repro.service.shard import ShardedBank

_ENVELOPE_KEYS = ("cid", "req")


def _stripped(reply: dict) -> dict:
    return {k: v for k, v in reply.items() if k not in _ENVELOPE_KEYS}


def _trace(params, keypair) -> tuple[list[Request], list[Request]]:
    rng = random.Random(41)
    opens, deposits = mint_offline_deposit_traffic(
        params, keypair, rng, n_accounts=3, n_deposits=8,
    )
    balances = [Request(sender=f"sp{i}", kind="balance",
                        payload={"aid": f"sp{i}"}) for i in range(3)]
    return opens, deposits + balances


def test_cluster_replies_byte_identical_to_single_node(
        local_cluster, dec_params_toy, cluster_keypair):
    opens, rest = _trace(dec_params_toy, cluster_keypair)
    requests = opens + rest

    journal = Journal()
    bank = ShardedBank(dec_params_toy, cluster_keypair, random.Random(0),
                       n_shards=4, journal=journal)
    service = MarketService(bank, name="MA-single", journal=journal)
    with ServiceFrontend(service) as frontend:
        with ServiceClient(frontend.address) as client:
            single = [_stripped(client.request(r.kind, r.payload,
                                               sender=r.sender))
                      for r in opens]
            single_audit = _stripped(client.request("audit", {}))
            single += [_stripped(client.request(r.kind, r.payload,
                                                sender=r.sender))
                       for r in rest]
            single_clean = _stripped(client.request("audit", {}))["clean"]

    with local_cluster.router() as router:
        clustered = [router.request(r.kind, r.payload, sender=r.sender)
                     for r in opens]
        cluster_audit = router.audit()
        clustered += [router.request(r.kind, r.payload, sender=r.sender)
                      for r in rest]
        cluster_clean = router.audit()["clean"]

    assert len(single) == len(clustered) == len(requests)
    for request, lone, sharded in zip(requests, single, clustered):
        assert encode(lone) == encode(sharded), (
            f"{request.kind} for {request.sender} diverged: "
            f"{lone!r} != {sharded!r}"
        )
    # the merged cluster audit is byte-identical at the clean point
    # (after the deposits both sides flag offline-minted value the same
    # way, but cluster findings carry node prefixes — compare the flag)
    assert encode(single_audit) == encode(cluster_audit)
    assert single_clean == cluster_clean


def test_parity_trace_spreads_over_every_node(local_cluster, dec_params_toy,
                                              cluster_keypair):
    """The parity result is meaningful: the trace really is sharded."""
    opens, rest = _trace(dec_params_toy, cluster_keypair)
    owners = {local_cluster.map.owner_of(r.payload["aid"])
              for r in opens + rest}
    assert len(owners) >= 2

"""Kill a node mid-trace; the cluster neither loses nor reruns a request."""

from __future__ import annotations

import random

from repro.cluster import StaleClusterMapError
from repro.service.loadgen import mint_cluster_deposit_traffic, run_cluster_trace
from repro.testing import check_cluster_invariants


def _aid_owned_by(cmap, node: str, prefix: str = "probe") -> str:
    for j in range(10_000):
        aid = f"{prefix}{j}"
        if cmap.owner_of(aid) == node:
            return aid
    raise AssertionError(f"no {prefix}* account hashes to {node}")


def test_cluster_survives_sigkill_mid_trace(local_cluster, dec_params_toy,
                                            cluster_keypair):
    rng = random.Random(2026)
    with local_cluster.router(attempts=2, backoff=0.01,
                              refresh_backoff=0.01) as router:
        # fund + withdraw over the wire so the books conserve end to end
        deposits = mint_cluster_deposit_traffic(
            router, dec_params_toy, cluster_keypair.public, rng,
            n_accounts=4, n_deposits=12, replay_fraction=0.2,
        )
        assert len(deposits) == 12  # 10 fresh + 2 deliberate replays

        # phase 1: first half lands while all three nodes are alive
        phase1, phase2 = deposits[:6], deposits[6:]
        report1 = run_cluster_trace(router, phase1)
        assert report1.errors == 0 and report1.shed == 0

        # pin a request on the soon-to-die node under a known rid
        victim = local_cluster.map.owner_of(phase2[0].payload["aid"])
        probe = _aid_owned_by(local_cluster.map, victim)
        before = router.request("open-account", {"aid": probe, "balance": 5},
                                sender="probe", rid="probe-rid-1")
        assert before == {"status": "OK", "balance": 5}

        # SIGKILL-equivalent: no drain, no goodbye — then adoption
        local_cluster.kill(victim)
        adopter = local_cluster.failover(victim)
        assert adopter != victim
        assert victim in local_cluster.nodes[adopter].serving()

        # the pre-kill rid is answered from the adopted reply cache —
        # the account exists over there, so a rerun would be REJECTED
        again = router.request("open-account", {"aid": probe, "balance": 5},
                               sender="probe", rid="probe-rid-1")
        assert again == before
        fresh = router.request("open-account", {"aid": probe, "balance": 5},
                               sender="probe", rid="probe-rid-2")
        assert fresh["status"] != "OK"

        # phase 2 re-routes to the adopter transparently
        report2 = run_cluster_trace(router, phase2)
        assert report2.errors == 0 and report2.shed == 0
        assert router.reroutes >= 1

        # exactly-once across the crash: every fresh deposit accepted
        # once, every deliberate replay rejected, nothing lost
        assert report1.ok + report2.ok == 10
        assert report1.rejected + report2.rejected == 2

    # cluster-wide sweep over the surviving slices (incl. the adopted
    # one): serials unique, rids on one node, placement + conservation
    report = check_cluster_invariants(
        dec_params_toy, cluster_keypair, local_cluster.map,
        local_cluster.dump_journals(), n_shards=4, conservation=True,
    )
    assert report.clean, report.findings


def test_double_failure_of_a_replica_pair_is_reported(local_cluster):
    victim = "n0"
    adopter = local_cluster.map.replica_peer(victim)
    local_cluster.kill(victim)
    local_cluster.kill(adopter)
    try:
        local_cluster.failover(victim)
    except RuntimeError as exc:
        assert "also dead" in str(exc)
    else:
        raise AssertionError("double failure should not silently fail over")


def test_router_with_no_feed_reports_staleness_after_kill(local_cluster):
    import pytest

    with local_cluster.router(refresh=None, attempts=1, backoff=0.01,
                              connect_timeout=0.5) as router:
        reply = router.request("open-account", {"aid": "sp0", "balance": 3},
                               sender="sp0")
        assert reply["status"] == "OK"
        victim = local_cluster.map.owner_of("sp0")
        local_cluster.kill(victim)
        with pytest.raises(StaleClusterMapError):
            router.request("balance", {"aid": "sp0"}, sender="sp0")


def test_retention_bounds_node_journals_and_failover_still_works(
        dec_params_toy, cluster_keypair):
    """``journal_retention`` compacts each node's in-memory journal to
    the replica-durable cut, and adoption still recovers exactly —
    the shipped checkpoint + tail replaces the deleted prefix."""
    from repro.cluster import LocalCluster

    rng = random.Random(77)
    with LocalCluster(dec_params_toy, cluster_keypair, n_nodes=3,
                      checkpoint_every=4, segment_records=4,
                      journal_retention=0) as cluster:
        with cluster.router(attempts=2, backoff=0.01,
                            refresh_backoff=0.01) as router:
            deposits = mint_cluster_deposit_traffic(
                router, dec_params_toy, cluster_keypair.public, rng,
                n_accounts=4, n_deposits=8, replay_fraction=0.0,
            )
            report = run_cluster_trace(router, deposits)
            assert report.errors == 0

            # retention actually dropped journal prefixes somewhere:
            # every node saw >= checkpoint_every records, so at least
            # one compaction fired after a shipped checkpoint
            assert any(node.journal.first_lsn > 0
                       for node in cluster.nodes.values())
            for node in cluster.nodes.values():
                shipped = node.shipper.last_checkpoint_lsn
                if node.journal.first_lsn > 0:
                    assert node.journal.first_lsn <= shipped + 1

            victim = cluster.map.owner_of(deposits[0].payload["aid"])
            probe = _aid_owned_by(cluster.map, victim, prefix="ret")
            before = router.request("open-account",
                                    {"aid": probe, "balance": 3},
                                    sender="probe", rid="ret-rid")
            assert before == {"status": "OK", "balance": 3}
            cluster.kill(victim)
            adopter = cluster.failover(victim)
            # the adopted slice answers the pre-kill rid idempotently
            again = router.request("open-account",
                                   {"aid": probe, "balance": 3},
                                   sender="probe", rid="ret-rid")
            assert again == before
            assert victim in cluster.nodes[adopter].serving()

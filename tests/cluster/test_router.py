"""Router behavior: keyed routing, re-routing, the proxy front door."""

from __future__ import annotations

import socket

import pytest

from repro.cluster import ClusterProxy, ClusterRouter, RouteError, StaleClusterMapError
from repro.cluster import LocalCluster
from repro.cluster.ring import ClusterMap
from repro.service.aio import AsyncServiceFrontend
from repro.service.frontend import ServiceClient


def _dead_address() -> tuple[str, int]:
    """An address nothing listens on (bound once, then released)."""
    with socket.create_server(("127.0.0.1", 0)) as probe:
        return probe.getsockname()[:2]


def test_requests_route_by_account_id(local_cluster):
    with local_cluster.router() as router:
        for i in range(5):
            aid = f"sp{i}"
            reply = router.request("open-account", {"aid": aid, "balance": 8},
                                   sender=aid)
            assert reply["status"] == "OK"
        # the owner's journal — and only the owner's — carries the account
        dumps = local_cluster.dump_journals()
        for i in range(5):
            aid = f"sp{i}"
            owner = local_cluster.map.owner_of(aid)
            for node, records in dumps.items():
                opened_here = any(
                    r["kind"] == "apply" and r["op"] == "open-account"
                    and r["payload"]["aid"] == aid
                    for r in records
                )
                assert opened_here == (node == owner)


def test_replies_carry_no_transport_envelope(local_cluster):
    with local_cluster.router() as router:
        reply = router.request("open-account", {"aid": "sp0", "balance": 4},
                               sender="sp0")
        assert "cid" not in reply and "req" not in reply


def test_missing_partition_key_is_a_route_error(local_cluster):
    with local_cluster.router() as router:
        with pytest.raises(RouteError):
            router.request("balance", {"account": "sp0"})


def test_cluster_serves_over_async_frontends(dec_params_toy, cluster_keypair):
    """``async_frontend=True`` swaps every node's front door for the
    event-loop tier; routing, ownership and fan-out are unchanged."""
    with LocalCluster(dec_params_toy, cluster_keypair, n_nodes=2,
                      async_frontend=True) as cluster:
        assert all(isinstance(node.frontend, AsyncServiceFrontend)
                   for node in cluster.nodes.values())
        with cluster.router() as router:
            for i in range(4):
                aid = f"sp{i}"
                opened = router.request("open-account",
                                        {"aid": aid, "balance": 8}, sender=aid)
                assert opened["status"] == "OK"
                balance = router.request("balance", {"aid": aid}, sender=aid)
                assert balance["balance"] == 8
            assert router.audit() == {"status": "OK", "clean": True,
                                      "findings": []}


def test_audit_fans_out_to_every_node(local_cluster):
    with local_cluster.router() as router:
        report = router.audit()
        assert report == {"status": "OK", "clean": True, "findings": []}


def test_stale_map_without_refresh_raises(local_cluster):
    cmap = local_cluster.map
    broken = ClusterMap(
        version=cmap.version, nodes=cmap.nodes,
        addresses={n: _dead_address() for n in cmap.nodes},
        vnodes=cmap.vnodes,
    )
    with ClusterRouter(broken, refresh=None, attempts=1, backoff=0.01,
                       connect_timeout=0.25) as router:
        with pytest.raises(StaleClusterMapError) as excinfo:
            router.request("balance", {"aid": "sp0"})
        assert excinfo.value.version == cmap.version


def test_version_bump_reroutes_deterministically(local_cluster):
    with local_cluster.router(attempts=2, backoff=0.01,
                              connect_timeout=0.5,
                              refresh_backoff=0.01) as router:
        reply = router.request("open-account", {"aid": "sp0", "balance": 16},
                               sender="sp0")
        assert reply["status"] == "OK"
        victim = local_cluster.map.owner_of("sp0")
        local_cluster.kill(victim)
        adopter = local_cluster.failover(victim)
        assert local_cluster.map.version == 1
        # same key, same ring owner, new address: the retry lands on
        # the adopter and the verdict is served from adopted state
        reply = router.request("balance", {"aid": "sp0"}, sender="sp0")
        assert reply == {"status": "OK", "balance": 16}
        assert router.reroutes == 1
        assert router.map.version == 1
        assert router.map.owner_of("sp0") == victim  # ownership never moves
        assert tuple(router.map.address_of(victim)) == \
            local_cluster.nodes[adopter].adopted[victim][1].address


def test_proxy_serves_single_node_wire_protocol(local_cluster):
    with local_cluster.router() as router:
        with ClusterProxy(router) as proxy:
            with ServiceClient(proxy.address, sender="sp7") as client:
                reply = client.request("open-account",
                                       {"aid": "sp7", "balance": 32})
                assert reply["status"] == "OK" and reply["cid"] == 0
                reply = client.request("balance", {"aid": "sp7"})
                assert reply["balance"] == 32
                # keyless audit fans out through the proxy too
                reply = client.request("audit", {})
                assert reply["clean"] is True
            assert proxy.served == 3

"""Cluster-layer fixtures.

Everything runs on the toy pairing backend (cluster tests are about
routing, replication and failover, not pairing arithmetic).  All nodes
share one CL issuing keypair — sharding partitions state, not trust —
so any node's verdicts verify under the one bank public key.
"""

from __future__ import annotations

import pytest

from repro.cluster import LocalCluster
from repro.crypto.cl_sig import cl_keygen


@pytest.fixture(scope="session")
def cluster_keypair(dec_params_toy, session_rng):
    return cl_keygen(dec_params_toy.backend, session_rng)


@pytest.fixture()
def local_cluster(dec_params_toy, cluster_keypair):
    """A three-node in-process cluster with tight checkpoint cadence."""
    with LocalCluster(dec_params_toy, cluster_keypair, n_nodes=3,
                      checkpoint_every=8) as cluster:
        yield cluster

"""Checkpoint/journal shipping: streams, spooling, idempotence."""

from __future__ import annotations

import time

import pytest

from repro.cluster.replicate import (
    JournalShipper,
    ReplicaReceiver,
    control_call,
    journal_from_records,
)
from repro.service.journal import Checkpoint, Journal, JournalError


def _wait(predicate, *, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached in time")


def _records(journal: Journal, n: int, *, start: int = 0) -> None:
    for i in range(start, start + n):
        journal.append("apply", f"rid{i}", "open-account",
                       {"aid": f"sp{i}", "balance": i})


def test_records_ship_synchronously_and_in_order():
    with ReplicaReceiver() as receiver:
        journal = Journal()
        shipper = JournalShipper("src", receiver.address)
        journal.add_observer(shipper.on_record)
        _records(journal, 5)
        assert shipper.healthy and shipper.shipped_records == 5
        slot = receiver.slot("src")
        _wait(lambda: slot.last_lsn == 4)
        assert [r["lsn"] for r in slot.records] == [0, 1, 2, 3, 4]
        assert receiver.sources() == ["src"]
        shipper.close()


def test_duplicate_lsns_are_dropped_by_the_receiver():
    with ReplicaReceiver() as receiver:
        journal = Journal()
        shipper = JournalShipper("src", receiver.address)
        journal.add_observer(shipper.on_record)
        _records(journal, 3)
        slot = receiver.slot("src")
        _wait(lambda: slot.last_lsn == 2)
        # a reconnecting shipper may replay overlap; LSN gates the append
        for record in list(journal.records()):
            shipper.on_record(record)
        _wait(lambda: shipper.shipped_records == 6)
        time.sleep(0.05)
        assert [r["lsn"] for r in slot.records] == [0, 1, 2]
        shipper.close()


def test_checkpoint_ships_when_segment_budget_is_spent():
    with ReplicaReceiver() as receiver:
        journal = Journal()
        shipper = JournalShipper("src", receiver.address, checkpoint_every=4)
        shipper.bind_checkpoints(
            lambda: Checkpoint(lsn=journal.last_lsn, blobs=(b"snap",))
        )
        journal.add_observer(shipper.on_record)
        _records(journal, 3)
        assert shipper.maybe_checkpoint() is False  # 3 < 4, not due yet
        _records(journal, 1, start=3)
        assert shipper.maybe_checkpoint() is True
        slot = receiver.slot("src")
        _wait(lambda: slot.checkpoint is not None)
        restored = Checkpoint.from_bytes(slot.checkpoint)
        assert restored.lsn == 3 and restored.blobs == (b"snap",)
        # forcing always ships, and newest supersedes
        _records(journal, 1, start=4)
        assert shipper.maybe_checkpoint(force=True) is True
        _wait(lambda: slot.checkpoint is not None
              and Checkpoint.from_bytes(slot.checkpoint).lsn == 4)
        assert shipper.shipped_checkpoints == 2
        shipper.close()


def test_spool_drains_after_peer_comes_back():
    with ReplicaReceiver() as probe:
        address = probe.address
    # peer is down from the start: constructor degrades, records spool
    journal = Journal()
    shipper = JournalShipper("src", address, reconnect_backoff=0.02)
    journal.add_observer(shipper.on_record)
    _records(journal, 4)
    assert not shipper.healthy and shipper.shipped_records == 0
    # bring a receiver up on the same port; the reconnect thread must
    # replay the whole spool (in order) before going healthy
    with ReplicaReceiver(host=address[0], port=address[1]) as receiver:
        _wait(lambda: shipper.healthy)
        slot = receiver.slot("src")
        _wait(lambda: slot.last_lsn == 3)
        assert [r["lsn"] for r in slot.records] == [0, 1, 2, 3]
        # live records after recovery ship on the hot path again
        _records(journal, 2, start=4)
        _wait(lambda: slot.last_lsn == 5)
        # the degraded window marked a checkpoint due: the next
        # maybe_checkpoint ships even though checkpoint_every is large
        shipper.bind_checkpoints(
            lambda: Checkpoint(lsn=journal.last_lsn, blobs=(b"post",))
        )
        assert shipper.maybe_checkpoint() is True
        shipper.close()


def test_wait_drained_waits_for_stream_eof():
    with ReplicaReceiver() as receiver:
        journal = Journal()
        shipper = JournalShipper("src", receiver.address)
        journal.add_observer(shipper.on_record)
        _records(journal, 2)
        slot = receiver.slot("src")
        _wait(lambda: slot.streams == 1)
        shipper.close()  # abrupt: the receiver sees EOF and decrements
        drained = receiver.wait_drained("src")
        assert drained.streams == 0
        assert drained.last_lsn == 1  # sent bytes survived the close


def test_journal_from_records_preserves_the_stream_verbatim():
    source = Journal()
    _records(source, 3)
    states = [r.to_state() for r in source.records()]
    rebuilt = journal_from_records(states)
    assert [r.to_state() for r in rebuilt.records()] == states
    assert rebuilt.last_lsn == 2


def test_control_frames_ride_the_replication_listener():
    seen = []

    def control(frame):
        seen.append(frame)
        return {"ok": True, "echo": frame["type"]}

    with ReplicaReceiver(control=control) as receiver:
        reply = control_call(receiver.address, {"type": "ping"})
        assert reply == {"ok": True, "echo": "ping"}
        assert seen == [{"type": "ping"}]


def test_control_errors_answer_instead_of_killing_the_connection():
    def control(frame):
        raise ValueError("boom")

    with ReplicaReceiver(control=control) as receiver:
        reply = control_call(receiver.address, {"type": "anything"})
        assert reply["ok"] is False and "boom" in reply["error"]


def test_receiver_without_control_rejects_unknown_frames():
    with ReplicaReceiver() as receiver:
        reply = control_call(receiver.address, {"type": "mystery"})
        assert reply["ok"] is False


# -- segment-aware shipping (see docs/storage.md) --------------------------

def test_record_frames_carry_their_segment_id():
    with ReplicaReceiver() as receiver:
        journal = Journal(segment_records=2)
        shipper = JournalShipper("src", receiver.address, segment_records=2)
        journal.add_observer(shipper.on_record)
        _records(journal, 5)
        slot = receiver.slot("src")
        _wait(lambda: slot.last_lsn == 4)
        assert slot.last_segment == 2  # lsn 4 lives in segment [4, 6)
        shipper.close()


def test_sync_hello_answers_with_the_receiver_cursor():
    with ReplicaReceiver() as receiver:
        journal = Journal(segment_records=2)
        shipper = JournalShipper("src", receiver.address, segment_records=2)
        journal.add_observer(shipper.on_record)
        _records(journal, 3)
        slot = receiver.slot("src")
        _wait(lambda: slot.last_lsn == 2)
        cursor = control_call(receiver.address,
                              {"type": "hello", "node": "src", "sync": True})
        assert cursor == {"ok": True, "type": "cursor", "node": "src",
                          "segment": 1, "lsn": 2}
        shipper.close()


def test_reconnect_prunes_the_spool_to_the_peer_cursor():
    with ReplicaReceiver() as receiver:
        journal = Journal(segment_records=2)
        shipper = JournalShipper("src", receiver.address, segment_records=2,
                                 reconnect_backoff=0.02)
        journal.add_observer(shipper.on_record)
        _records(journal, 4)  # lsns 0-3 arrive on the hot path
        slot = receiver.slot("src")
        _wait(lambda: slot.last_lsn == 3)
        # simulate a flaky link: drop the socket, spool overlap + news
        with shipper._lock:
            shipper._drop_locked()
        for record in list(journal.records()):   # overlap: lsns 0-3
            shipper.on_record(record)
        _records(journal, 2, start=4)            # news: lsns 4-5 spool too
        shipped_before = shipper.shipped_records
        _wait(lambda: shipper.healthy)
        _wait(lambda: slot.last_lsn == 5)
        # the cursor ack (lsn 3) pruned the overlap: only 4 and 5 resent
        assert shipper.shipped_records == shipped_before + 2
        assert [r["lsn"] for r in slot.records] == [0, 1, 2, 3, 4, 5]
        shipper.close()


def test_trim_on_checkpoint_bounds_the_slot_and_keeps_the_cursor():
    with ReplicaReceiver(trim_on_checkpoint=True) as receiver:
        journal = Journal(segment_records=2)
        shipper = JournalShipper("src", receiver.address, segment_records=2,
                                 checkpoint_every=4)
        shipper.bind_checkpoints(
            lambda: Checkpoint(lsn=journal.last_lsn, blobs=(b"snap",))
        )
        journal.add_observer(shipper.on_record)
        _records(journal, 4)
        assert shipper.maybe_checkpoint() is True
        assert shipper.last_checkpoint_lsn == 3
        slot = receiver.slot("src")
        _wait(lambda: slot.checkpoint is not None)
        _wait(lambda: slot.records == [])  # lsns 0-3 are inside the snapshot
        assert slot.checkpoint_lsn == 3
        assert slot.last_lsn == 3  # the cursor survives the trim
        _records(journal, 2, start=4)
        _wait(lambda: [r["lsn"] for r in slot.records] == [4, 5])
        # checkpoint + tail is exactly what adoption needs
        restored = Checkpoint.from_bytes(slot.checkpoint)
        tail = journal_from_records(slot.records)
        assert tail.first_lsn == restored.lsn + 1
        shipper.close()


def test_journal_from_records_keeps_a_nonzero_base_lsn():
    source = Journal()
    _records(source, 6)
    states = [r.to_state() for r in source.records(after=3)]
    rebuilt = journal_from_records(states)
    assert rebuilt.first_lsn == 4 and rebuilt.last_lsn == 5
    assert [r.lsn for r in rebuilt.records()] == [4, 5]


def test_journal_from_records_rejects_gapped_streams():
    source = Journal()
    _records(source, 4)
    states = [r.to_state() for r in source.records()]
    del states[1]
    with pytest.raises(JournalError, match="gap"):
        journal_from_records(states)

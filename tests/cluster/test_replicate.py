"""Checkpoint/journal shipping: streams, spooling, idempotence."""

from __future__ import annotations

import time

import pytest

from repro.cluster.replicate import (
    JournalShipper,
    ReplicaReceiver,
    control_call,
    journal_from_records,
)
from repro.service.journal import Checkpoint, Journal


def _wait(predicate, *, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached in time")


def _records(journal: Journal, n: int, *, start: int = 0) -> None:
    for i in range(start, start + n):
        journal.append("apply", f"rid{i}", "open-account",
                       {"aid": f"sp{i}", "balance": i})


def test_records_ship_synchronously_and_in_order():
    with ReplicaReceiver() as receiver:
        journal = Journal()
        shipper = JournalShipper("src", receiver.address)
        journal.add_observer(shipper.on_record)
        _records(journal, 5)
        assert shipper.healthy and shipper.shipped_records == 5
        slot = receiver.slot("src")
        _wait(lambda: slot.last_lsn == 4)
        assert [r["lsn"] for r in slot.records] == [0, 1, 2, 3, 4]
        assert receiver.sources() == ["src"]
        shipper.close()


def test_duplicate_lsns_are_dropped_by_the_receiver():
    with ReplicaReceiver() as receiver:
        journal = Journal()
        shipper = JournalShipper("src", receiver.address)
        journal.add_observer(shipper.on_record)
        _records(journal, 3)
        slot = receiver.slot("src")
        _wait(lambda: slot.last_lsn == 2)
        # a reconnecting shipper may replay overlap; LSN gates the append
        for record in list(journal.records()):
            shipper.on_record(record)
        _wait(lambda: shipper.shipped_records == 6)
        time.sleep(0.05)
        assert [r["lsn"] for r in slot.records] == [0, 1, 2]
        shipper.close()


def test_checkpoint_ships_when_segment_budget_is_spent():
    with ReplicaReceiver() as receiver:
        journal = Journal()
        shipper = JournalShipper("src", receiver.address, checkpoint_every=4)
        shipper.bind_checkpoints(
            lambda: Checkpoint(lsn=journal.last_lsn, blobs=(b"snap",))
        )
        journal.add_observer(shipper.on_record)
        _records(journal, 3)
        assert shipper.maybe_checkpoint() is False  # 3 < 4, not due yet
        _records(journal, 1, start=3)
        assert shipper.maybe_checkpoint() is True
        slot = receiver.slot("src")
        _wait(lambda: slot.checkpoint is not None)
        restored = Checkpoint.from_bytes(slot.checkpoint)
        assert restored.lsn == 3 and restored.blobs == (b"snap",)
        # forcing always ships, and newest supersedes
        _records(journal, 1, start=4)
        assert shipper.maybe_checkpoint(force=True) is True
        _wait(lambda: slot.checkpoint is not None
              and Checkpoint.from_bytes(slot.checkpoint).lsn == 4)
        assert shipper.shipped_checkpoints == 2
        shipper.close()


def test_spool_drains_after_peer_comes_back():
    with ReplicaReceiver() as probe:
        address = probe.address
    # peer is down from the start: constructor degrades, records spool
    journal = Journal()
    shipper = JournalShipper("src", address, reconnect_backoff=0.02)
    journal.add_observer(shipper.on_record)
    _records(journal, 4)
    assert not shipper.healthy and shipper.shipped_records == 0
    # bring a receiver up on the same port; the reconnect thread must
    # replay the whole spool (in order) before going healthy
    with ReplicaReceiver(host=address[0], port=address[1]) as receiver:
        _wait(lambda: shipper.healthy)
        slot = receiver.slot("src")
        _wait(lambda: slot.last_lsn == 3)
        assert [r["lsn"] for r in slot.records] == [0, 1, 2, 3]
        # live records after recovery ship on the hot path again
        _records(journal, 2, start=4)
        _wait(lambda: slot.last_lsn == 5)
        # the degraded window marked a checkpoint due: the next
        # maybe_checkpoint ships even though checkpoint_every is large
        shipper.bind_checkpoints(
            lambda: Checkpoint(lsn=journal.last_lsn, blobs=(b"post",))
        )
        assert shipper.maybe_checkpoint() is True
        shipper.close()


def test_wait_drained_waits_for_stream_eof():
    with ReplicaReceiver() as receiver:
        journal = Journal()
        shipper = JournalShipper("src", receiver.address)
        journal.add_observer(shipper.on_record)
        _records(journal, 2)
        slot = receiver.slot("src")
        _wait(lambda: slot.streams == 1)
        shipper.close()  # abrupt: the receiver sees EOF and decrements
        drained = receiver.wait_drained("src")
        assert drained.streams == 0
        assert drained.last_lsn == 1  # sent bytes survived the close


def test_journal_from_records_preserves_the_stream_verbatim():
    source = Journal()
    _records(source, 3)
    states = [r.to_state() for r in source.records()]
    rebuilt = journal_from_records(states)
    assert [r.to_state() for r in rebuilt.records()] == states
    assert rebuilt.last_lsn == 2


def test_control_frames_ride_the_replication_listener():
    seen = []

    def control(frame):
        seen.append(frame)
        return {"ok": True, "echo": frame["type"]}

    with ReplicaReceiver(control=control) as receiver:
        reply = control_call(receiver.address, {"type": "ping"})
        assert reply == {"ok": True, "echo": "ping"}
        assert seen == [{"type": "ping"}]


def test_control_errors_answer_instead_of_killing_the_connection():
    def control(frame):
        raise ValueError("boom")

    with ReplicaReceiver(control=control) as receiver:
        reply = control_call(receiver.address, {"type": "anything"})
        assert reply["ok"] is False and "boom" in reply["error"]


def test_receiver_without_control_rejects_unknown_frames():
    with ReplicaReceiver() as receiver:
        reply = control_call(receiver.address, {"type": "mystery"})
        assert reply["ok"] is False

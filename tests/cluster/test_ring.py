"""Consistent-hash ring and cluster-map properties."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cluster.ring import ClusterMap, HashRing, key_point, ring_point

node_names = st.lists(
    st.text(alphabet="abcdefgh0123", min_size=1, max_size=8),
    min_size=1, max_size=6, unique=True,
)


def _map_for(nodes, vnodes=16, version=0) -> ClusterMap:
    return ClusterMap(
        version=version, nodes=tuple(nodes),
        addresses={n: ("127.0.0.1", 9000 + i) for i, n in enumerate(nodes)},
        vnodes=vnodes,
    )


@given(nodes=node_names, key=st.text(max_size=32),
       vnodes=st.integers(min_value=1, max_value=64))
def test_every_key_has_exactly_one_stable_owner(nodes, key, vnodes):
    """Any key maps to one member, identically for any independently
    built ring over the same membership (order included)."""
    ring = HashRing(nodes, vnodes=vnodes)
    owner = ring.owner(key)
    assert owner in nodes
    assert HashRing(list(reversed(nodes)), vnodes=vnodes).owner(key) == owner
    assert HashRing(tuple(nodes), vnodes=vnodes).owner(key) == owner


@given(nodes=node_names.filter(lambda ns: len(ns) >= 2),
       key=st.text(max_size=32))
def test_rebind_changes_addresses_never_ownership(nodes, key):
    cmap = _map_for(nodes)
    owner = cmap.owner_of(key)
    rebound = cmap.rebind(nodes[0], ("127.0.0.1", 19999))
    assert rebound.version == cmap.version + 1
    assert rebound.owner_of(key) == owner
    assert rebound.address_of(nodes[0]) == ("127.0.0.1", 19999)
    # the original map is untouched (it is frozen data)
    assert cmap.address_of(nodes[0]) == ("127.0.0.1", 9000)


def test_points_are_deterministic_sha_positions():
    assert ring_point("n0", 0) == ring_point("n0", 0)
    assert ring_point("n0", 0) != ring_point("n0", 1)
    assert ring_point("n0", 0) != ring_point("n1", 0)
    assert key_point("sp1") == key_point("sp1")


def test_slice_share_sums_to_one_and_is_roughly_fair():
    ring = HashRing(("n0", "n1", "n2"), vnodes=128)
    shares = ring.slice_share()
    assert shares.keys() == {"n0", "n1", "n2"}
    assert sum(shares.values()) == pytest.approx(1.0)
    for share in shares.values():
        assert 0.15 < share < 0.55  # 128 vnodes keeps slices near 1/3


def test_successor_rotates_membership():
    ring = HashRing(("n0", "n1", "n2"))
    assert ring.successor("n0") == "n1"
    assert ring.successor("n2") == "n0"


def test_replica_peer_requires_two_nodes():
    cmap = _map_for(["solo"])
    with pytest.raises(ValueError):
        cmap.replica_peer("solo")


def test_map_state_round_trips():
    cmap = _map_for(["n0", "n1"], vnodes=8, version=3)
    restored = ClusterMap.from_state(cmap.to_state())
    assert restored.version == 3
    assert restored.nodes == cmap.nodes
    assert restored.addresses == cmap.addresses
    assert restored.vnodes == 8
    for key in ("sp0", "sp1", "anything"):
        assert restored.owner_of(key) == cmap.owner_of(key)


def test_ring_rejects_bad_membership():
    with pytest.raises(ValueError):
        HashRing(())
    with pytest.raises(ValueError):
        HashRing(("a", "a"))
    with pytest.raises(ValueError):
        HashRing(("a",), vnodes=0)
    with pytest.raises(ValueError):
        ClusterMap(version=0, nodes=("a", "b"),
                   addresses={"a": ("127.0.0.1", 1)})

"""Tests for PBS bank persistence and audit."""

from __future__ import annotations

import pytest

from repro.core.pbs_ledger import (
    PbsSnapshotError,
    audit_pbs_bank,
    restore_pbs_bank,
    snapshot_pbs_bank,
)
from repro.core.ppms_pbs import PPMSpbsSession, VirtualBankPbs


@pytest.fixture()
def populated(rng):
    session = PPMSpbsSession(rng, rsa_bits=512)
    jo = session.new_job_owner(funds=3)
    sps = [session.new_participant() for _ in range(2)]
    session.run_job(jo, sps)
    return session, jo, sps


class TestSnapshotRestore:
    def test_roundtrip(self, populated):
        session, jo, sps = populated
        blob = snapshot_pbs_bank(session.ma.bank)
        fresh = VirtualBankPbs()
        restore_pbs_bank(fresh, blob)
        assert fresh.accounts == session.ma.bank.accounts
        assert fresh.spent_serials == session.ma.bank.spent_serials
        assert fresh.transaction_log == session.ma.bank.transaction_log
        assert fresh.bound_keys == session.ma.bank.bound_keys

    def test_restored_bank_blocks_replay(self, populated, rng):
        """The serial store must survive the restart."""
        session, jo, sps = populated
        # capture a deposited coin's parameters before restart
        deposits = [e for e in session.transport.log if e.kind == "deposit"]
        assert deposits
        dep = deposits[0].payload
        fresh = VirtualBankPbs()
        restore_pbs_bank(fresh, snapshot_pbs_bank(session.ma.bank))
        session.ma.bank = fresh
        with pytest.raises(ValueError, match="double deposit|serial"):
            session.ma.handle_deposit(
                dep["sig"], tuple(dep["sp_key"]), tuple(dep["jo_key"])
            )

    def test_bad_magic(self, populated):
        session, *_ = populated
        with pytest.raises(PbsSnapshotError, match="magic"):
            restore_pbs_bank(VirtualBankPbs(), b"xx" + snapshot_pbs_bank(session.ma.bank))

    def test_corruption(self, populated):
        session, *_ = populated
        blob = bytearray(snapshot_pbs_bank(session.ma.bank))
        blob[-1] ^= 1
        with pytest.raises(PbsSnapshotError, match="digest"):
            restore_pbs_bank(VirtualBankPbs(), bytes(blob))


class TestAudit:
    def test_clean_books(self, populated):
        session, *_ = populated
        report = audit_pbs_bank(session.ma.bank)
        assert report.clean, report.findings

    def test_detects_negative_balance(self, populated):
        session, jo, _ = populated
        session.ma.bank.accounts[jo.account_pub.fingerprint()] = -2
        assert any("negative" in f for f in audit_pbs_bank(session.ma.bank).findings)

    def test_detects_unbound_account(self, populated):
        session, *_ = populated
        session.ma.bank.accounts[b"\x01" * 16] = 0
        assert any("bound key" in f for f in audit_pbs_bank(session.ma.bank).findings)

    def test_detects_serial_transaction_mismatch(self, populated):
        session, *_ = populated
        session.ma.bank.spent_serials.add((b"\x02" * 16, b"rogue"))
        assert any("1:1" in f for f in audit_pbs_bank(session.ma.bank).findings)

    def test_detects_unknown_transaction_party(self, populated):
        session, *_ = populated
        session.ma.bank.transaction_log.append((b"\x03" * 16, b"\x04" * 16))
        findings = audit_pbs_bank(session.ma.bank).findings
        assert any("unknown account" in f for f in findings)

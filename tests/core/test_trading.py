"""Tests for credit circulation: SP-to-SP trading and redemption."""

from __future__ import annotations

import pytest

from repro.core.ppms_dec import PPMSdecSession
from repro.core.trading import RedemptionDesk, trade_sensing_service


@pytest.fixture()
def session(dec_params, rng):
    return PPMSdecSession(dec_params, rng, rsa_bits=512)


class TestRedemption:
    def test_redeem_debits_and_issues_voucher(self, session, rng):
        session.ma.bank.open_account("earner", 10)
        desk = RedemptionDesk(bank=session.ma.bank, rng=rng)
        voucher = desk.redeem("earner", 6)
        assert session.ma.bank.balance("earner") == 4
        assert voucher.amount == 6 and voucher.aid == "earner"
        assert len(voucher.voucher_id) == 16
        assert desk.issued == [voucher]

    def test_insufficient_balance(self, session, rng):
        session.ma.bank.open_account("poor", 2)
        desk = RedemptionDesk(bank=session.ma.bank, rng=rng)
        with pytest.raises(ValueError):
            desk.redeem("poor", 3)
        assert session.ma.bank.balance("poor") == 2  # untouched

    def test_unknown_account(self, session, rng):
        desk = RedemptionDesk(bank=session.ma.bank, rng=rng)
        with pytest.raises(ValueError):
            desk.redeem("ghost", 1)

    def test_nonpositive_amount(self, session, rng):
        session.ma.bank.open_account("x", 5)
        desk = RedemptionDesk(bank=session.ma.bank, rng=rng)
        with pytest.raises(ValueError):
            desk.redeem("x", 0)

    def test_voucher_ids_unique(self, session, rng):
        session.ma.bank.open_account("y", 10)
        desk = RedemptionDesk(bank=session.ma.bank, rng=rng)
        ids = {desk.redeem("y", 1).voucher_id for _ in range(5)}
        assert len(ids) == 5


class TestServiceTrading:
    def test_earner_buys_service(self, session, dec_params):
        """An SP that earned credits spends them on another SP's work."""
        coin_value = 1 << dec_params.tree_level
        # stage 1: alice earns a full coin's worth from a company
        company = session.new_job_owner("company", funds=2 * coin_value)
        alice = session.new_participant("alice")
        session.run_job(company, [alice], payment=coin_value)
        assert session.ma.bank.balance("alice") == coin_value

        # stage 2: alice buys 3 credits of sensing from bob
        bob = session.new_participant("bob")
        trade_sensing_service(session, "alice", bob, payment=3)
        assert session.ma.bank.balance("bob") == 3
        # change came back: alice's net cost is exactly the price
        assert session.ma.bank.balance("alice") == coin_value - 3

    def test_money_conserved_through_trade(self, session, dec_params):
        coin_value = 1 << dec_params.tree_level
        company = session.new_job_owner("company", funds=2 * coin_value)
        alice = session.new_participant("alice")
        session.run_job(company, [alice], payment=coin_value)
        bob = session.new_participant("bob")
        buyer = trade_sensing_service(session, "alice", bob, payment=5)
        bank = session.ma.bank
        total = (
            bank.balance("company")
            + bank.balance("alice")
            + bank.balance("bob")
            + company.spendable_balance()
            + buyer.spendable_balance()
        )
        assert total == 2 * coin_value
        assert buyer.spendable_balance() == 0  # change fully returned

    def test_buyer_needs_whole_coin(self, session):
        session.ma.bank.open_account("small", 3)  # < 2^3
        seller = session.new_participant("seller")
        with pytest.raises(ValueError, match="whole coin"):
            trade_sensing_service(session, "small", seller, payment=1)

    def test_unknown_buyer(self, session):
        seller = session.new_participant("seller2")
        with pytest.raises(ValueError, match="not found"):
            trade_sensing_service(session, "ghost", seller, payment=1)

    def test_trade_unlinkable_job_pseudonym(self, session, dec_params):
        """The trade's job is published under a fresh pseudonym, not
        alice's account identity."""
        coin_value = 1 << dec_params.tree_level
        company = session.new_job_owner("company", funds=coin_value)
        alice = session.new_participant("alice")
        session.run_job(company, [alice], payment=coin_value)
        bob = session.new_participant("bob")
        trade_sensing_service(session, "alice", bob, payment=2)
        trade_profile = session.ma.board.jobs()[-1]
        assert b"alice" not in trade_profile.owner_pseudonym


class TestDepositChange:
    def test_change_returns_exact_remainder(self, session, dec_params):
        session.ma.bank.open_account("jo-c", 1 << dec_params.tree_level)
        from repro.core.ppms_dec import JobOwnerDec

        jo = JobOwnerDec("jo-c", dec_params, session.rng, rsa_bits=512)
        jo.withdraw(session.ma, session.transport, session.counter)
        # spend nothing; everything comes back
        returned = jo.deposit_change(session.ma, session.transport, session.counter)
        assert returned == 1 << dec_params.tree_level
        assert session.ma.bank.balance("jo-c") == 1 << dec_params.tree_level
        assert jo.spendable_balance() == 0

    def test_change_after_partial_spend(self, session, dec_params):
        session.ma.bank.open_account("jo-d", 1 << dec_params.tree_level)
        session.ma.bank.open_account("sink", 0)
        from repro.core.ppms_dec import JobOwnerDec
        from repro.ecash.spend import create_spend

        jo = JobOwnerDec("jo-d", dec_params, session.rng, rsa_bits=512)
        jo.withdraw(session.ma, session.transport, session.counter)
        coin, wallet = jo.coins[0]
        node = wallet.allocate(3 if False else 2)
        token = create_spend(dec_params, session.ma.bank.public_key, coin.secret,
                             coin.signature, node, session.rng)
        session.ma.bank.deposit("sink", token)
        returned = jo.deposit_change(session.ma, session.transport, session.counter)
        assert returned == (1 << dec_params.tree_level) - 2

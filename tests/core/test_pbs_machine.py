"""Tests for the message-driven engine and the PPMSpbs state machines."""

from __future__ import annotations

import random

import pytest

from repro.core.engine import Outbound, Party, ProtocolError, Router
from repro.core.pbs_machine import run_machine_market, sender_sp


class Echo(Party):
    def __init__(self, name, peer=None):
        super().__init__(name)
        self.peer = peer
        self.received = []

    def start(self):
        if self.peer:
            return [Outbound(self.peer, "ping", 1)]
        return []

    def handle(self, sender, kind, payload):
        self.received.append((sender, kind, payload))
        if kind == "ping" and payload < 3:
            return [Outbound(sender, "ping", payload + 1)]
        return []


class Rejector(Party):
    def handle(self, sender, kind, payload):
        raise ProtocolError("always rejects")


class TestRouter:
    def test_ping_pong_until_quiescent(self):
        router = Router()
        a, b = Echo("a", peer="b"), Echo("b")
        router.add(a)
        router.add(b)
        router.activate("a")
        delivered = router.run()
        assert delivered == 3  # 1 -> 2 -> 3
        assert [p for (_, _, p) in b.received] == [1, 3]
        assert [p for (_, _, p) in a.received] == [2]

    def test_duplicate_party_rejected(self):
        router = Router()
        router.add(Echo("a"))
        with pytest.raises(ValueError):
            router.add(Echo("a"))

    def test_unknown_receiver(self):
        router = Router()
        router.add(Echo("a", peer="ghost"))
        router.activate("a")
        with pytest.raises(KeyError):
            router.run()

    def test_protocol_error_is_recorded_not_fatal(self):
        router = Router()
        router.add(Rejector("r"))
        router.post("driver", Outbound("r", "anything", 1))
        router.post("driver", Outbound("r", "again", 2))
        router.run()
        assert len(router.failures) == 2
        assert router.failures[0].error == "always rejects"

    def test_delivery_budget(self):
        class Forever(Party):
            def handle(self, sender, kind, payload):
                return [Outbound(self.name, "loop", payload)]

        router = Router()
        router.add(Forever("f"))
        router.post("driver", Outbound("f", "loop", 0))
        with pytest.raises(RuntimeError, match="budget"):
            router.run(max_deliveries=50)

    def test_traffic_metered(self):
        router = Router()
        router.add(Echo("a", peer="b"))
        router.add(Echo("b"))
        router.activate("a")
        router.run()
        assert router.transport.meter.total_bytes() > 0


class TestMachineMarket:
    def test_full_market_runs_to_quiescence(self, rng):
        router, ma, jo, sps = run_machine_market(rng, n_workers=3, jo_funds=5)
        assert not router.failures, router.failures
        bank = ma.bank
        assert bank.balance(jo.account_pub.fingerprint()) == 2
        for sp in sps:
            assert bank.balance(sp.account_pub.fingerprint()) == 1
            assert sp.coin is not None

    def test_data_reaches_jo_only_after_confirmation(self, rng):
        router, ma, jo, sps = run_machine_market(
            rng, n_workers=2, jo_funds=4, data_payload=b"noise-62dB"
        )
        assert len(jo.received_reports) == 2
        assert all(r["data"] == b"noise-62dB" for r in jo.received_reports)

    def test_matches_session_implementation(self, rng):
        """Differential check: the state-machine market must produce the
        same bank outcome as the imperative session."""
        from repro.core.ppms_pbs import PPMSpbsSession

        router, ma, jo, sps = run_machine_market(rng, n_workers=2, jo_funds=4)
        machine_balances = sorted(ma.bank.accounts.values())

        session = PPMSpbsSession(random.Random(7), rsa_bits=512)
        jo_s = session.new_job_owner(funds=4)
        sps_s = [session.new_participant() for _ in range(2)]
        session.run_job(jo_s, sps_s)
        session_balances = sorted(session.ma.bank.accounts.values())
        assert machine_balances == session_balances

    def test_replayed_deposit_rejected(self, rng):
        router, ma, jo, sps = run_machine_market(rng, n_workers=1, jo_funds=2)
        sp = sps[0]
        router.post(sp.name, Outbound("MA", "deposit", {
            "sig": sp.coin.value,
            "ctr": sp.coin.counter,
            "serial": sp.coin.common_info,
            "sp_key": (sp.account_pub.n, sp.account_pub.e),
            "jo_key": list(sp._jo_account),
        }))
        router.run()
        assert any("double deposit" in f.error for f in router.failures)
        assert ma.bank.balance(sp.account_pub.fingerprint()) == 1  # unchanged

    def test_out_of_order_payment_rejected(self, rng):
        """A payment delivered before data submission must be refused by
        the SP's state machine."""
        router, ma, jo, sps = run_machine_market(rng, n_workers=1, jo_funds=2)
        sp = sps[0]
        router.post("MA", Outbound(sp.name, "payment-delivery", {"pbs": 1, "ctr": 0}))
        router.run()
        assert any("out of order" in f.error for f in router.failures)

    def test_forged_labor_registration_rejected(self, rng):
        router, ma, jo, sps = run_machine_market(rng, n_workers=1, jo_funds=2)
        router.post("mallory", Outbound("MA", "labor-registration", {
            "job": "job-does-not-exist", "pseudonym": b"m" * 16, "blob": b"junk",
        }))
        router.run()
        assert any("unknown job" in f.error for f in router.failures)

    def test_garbage_blob_poisons_only_that_worker(self, rng):
        router, ma, jo, sps = run_machine_market(rng, n_workers=1, jo_funds=2)
        profile = ma.board.jobs()[0]
        router.post("mallory", Outbound("MA", "labor-registration", {
            "job": profile.job_id, "pseudonym": b"m" * 16, "blob": b"\x00" * 64,
        }))
        router.run()
        assert any("undecryptable" in f.error for f in router.failures)
        # the honest worker's outcome is untouched
        assert ma.bank.balance(sps[0].account_pub.fingerprint()) == 1


class TestAsyncDeliveryOrder:
    def test_pbs_market_converges_under_reordering(self):
        """Random delivery order must not change the bank outcome."""
        import random as _random

        from repro.core.engine import Router
        from repro.core.pbs_machine import JOMachine, SPMachine, MAMachine, sender_sp

        for seed in (1, 2, 3):
            rng = _random.Random(100)
            router = Router(shuffle_rng=_random.Random(seed))
            ma = MAMachine(rng)
            router.add(ma)
            jo = JOMachine("JO", rng, rsa_bits=512)
            router.add(jo)
            ma.open_account(jo.account_pub, 3)
            profile = ma.publish_job("async job", jo.name, jo.job_pub.fingerprint())
            sps = []
            for _ in range(2):
                sp = SPMachine("pending", rng, job=profile, jo_pseudonym_key=jo.job_pub,
                               rsa_bits=512)
                sp.name = sender_sp(sp.pseudonym)
                router.add(sp)
                ma.open_account(sp.account_pub, 0)
                sps.append(sp)
            for sp in sps:
                router.activate(sp.name)
            router.run()
            assert not router.failures, (seed, router.failures)
            for sp in sps:
                assert ma.bank.balance(sp.account_pub.fingerprint()) == 1

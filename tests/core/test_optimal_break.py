"""Tests for the coverage-optimal cash break (extension)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cashbreak import BREAK_FN_BY_NAME, coverage, epcba, validate_break
from repro.core.optimal_break import (
    improvement_over_epcba,
    optimal_break,
    optimal_coverage,
)

LEVEL = 6
amounts = st.integers(min_value=1, max_value=1 << LEVEL)


class TestOptimalBreak:
    @given(amounts)
    @settings(max_examples=40, deadline=None)
    def test_valid_and_wire_compatible(self, w):
        slots = optimal_break(w, LEVEL)
        assert validate_break(slots, w, LEVEL)
        assert len(slots) == LEVEL + 2

    @given(amounts)
    @settings(max_examples=40, deadline=None)
    def test_dominates_epcba(self, w):
        """The optimum never covers fewer values than the heuristic."""
        assert optimal_coverage(w, LEVEL) >= len(coverage(epcba(w, LEVEL)))

    def test_strictly_better_somewhere(self):
        """EPCBA is a heuristic: the optimum must beat it for some w."""
        table = improvement_over_epcba(5)
        assert any(opt > heur for (heur, opt) in table.values())

    def test_known_small_cases(self):
        # w=1: only {1}
        assert [c for c in optimal_break(1, 3) if c] == [1]
        # w=2 with 5 slots: {1,1} covers {1,2}; {2} covers {2} -> optimal {1,1}
        assert sorted(c for c in optimal_break(2, 3) if c) == [1, 1]

    def test_coin_budget_respected(self):
        for w in (1, 7, 31, 64):
            assert sum(1 for c in optimal_break(w, 6) if c) <= 8

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_break(0, 4)
        with pytest.raises(ValueError):
            optimal_break(17, 4)

    def test_registered_strategy(self):
        assert BREAK_FN_BY_NAME["optimal"] is optimal_break

    def test_deterministic(self):
        assert optimal_break(37, LEVEL) == optimal_break(37, LEVEL)


class TestEndToEndWithOptimal:
    def test_protocol_run(self, dec_params, rng):
        """The optimal strategy must work inside the real mechanism."""
        import repro.core.optimal_break  # noqa: F401 — registers "optimal"
        from repro.core.ppms_dec import PPMSdecSession

        session = PPMSdecSession(dec_params, rng, rsa_bits=512,
                                 break_algorithm="optimal")
        jo = session.new_job_owner("jo", funds=16)
        sp = session.new_participant("sp")
        bundles = session.run_job(jo, [sp], payment=5)
        assert bundles[0].total_value(dec_params.tree_level) == 5
        assert session.ma.bank.balance("sp") == 5

    def test_privacy_at_least_epcba(self):
        """In the denomination experiment the optimal break is at least
        as protective as EPCBA."""
        from repro.attacks.linkage import denomination_experiment

        opt = denomination_experiment("optimal", level=5, n_jobs=10,
                                      trials=120, rng=random.Random(3))
        heur = denomination_experiment("epcba", level=5, n_jobs=10,
                                       trials=120, rng=random.Random(3))
        assert opt.identification_rate <= heur.identification_rate + 0.05
        assert opt.mean_anonymity_set >= heur.mean_anonymity_set - 0.2

"""Tests for the message-driven PPMSdec state machines."""

from __future__ import annotations

import random

import pytest

from repro.core.dec_machine import run_dec_machine_market
from repro.core.engine import Outbound


@pytest.fixture()
def market(dec_params, rng):
    return run_dec_machine_market(dec_params, rng, n_workers=2, payment=3)


class TestHappyPath:
    def test_workers_paid_and_deposited(self, market):
        router, ma, jo, sps = market
        assert not router.failures, router.failures
        for sp in sps:
            assert sp.received_value == 3
            assert ma.bank.balance(sp.aid) == 3

    def test_job_published(self, market):
        router, ma, jo, sps = market
        jobs = ma.board.jobs()
        assert len(jobs) == 1 and jobs[0].payment == 3
        assert jo.job_id == jobs[0].job_id

    def test_data_delivered_to_jo(self, market):
        router, ma, jo, sps = market
        assert len(jo.received_reports) == 2

    def test_money_conserved(self, market, dec_params):
        router, ma, jo, sps = market
        in_wallets = sum(w.balance for (_, w) in jo.coins)
        total = sum(ma.bank.accounts.values()) + in_wallets
        coin_value = 1 << dec_params.tree_level
        assert total == coin_value * 2  # the driver's default funding

    def test_matches_session_outcome(self, dec_params, rng):
        """Differential: state machines and imperative session agree."""
        router, ma, jo, sps = run_dec_machine_market(
            dec_params, rng, n_workers=1, payment=5
        )
        from repro.core.ppms_dec import PPMSdecSession

        session = PPMSdecSession(dec_params, random.Random(99), rsa_bits=512,
                                 break_algorithm="pcba")
        jo_s = session.new_job_owner("jo", funds=1 << dec_params.tree_level)
        sp_s = session.new_participant("sp")
        session.run_job(jo_s, [sp_s], payment=5)
        assert ma.bank.balance(sps[0].aid) == session.ma.bank.balance("sp")


class TestMultiCoinWithdrawal:
    def test_jo_withdraws_on_demand(self, dec_params, rng):
        """Two payments of 5 exceed one 2^3 coin — the machine JO must
        request a second withdrawal mid-protocol."""
        router, ma, jo, sps = run_dec_machine_market(
            dec_params, rng, n_workers=2, payment=5,
            jo_funds=4 * (1 << dec_params.tree_level),
        )
        assert not router.failures, router.failures
        assert len(jo.coins) >= 2
        for sp in sps:
            assert ma.bank.balance(sp.aid) == 5


class TestAdversarialMessages:
    def test_unenrolled_withdrawal_rejected(self, market):
        router, ma, jo, sps = market
        from repro.ecash.dec import begin_withdrawal

        _, request = begin_withdrawal(ma.params, random.Random(5))
        router.post("mallory", Outbound("MA", "withdraw-request",
                                        {"request": request}))
        router.run()
        assert any("unenrolled" in f.error for f in router.failures)

    def test_deposit_for_other_account_rejected(self, market):
        """An SP cannot deposit into an account it does not own."""
        router, ma, jo, sps = market
        sp0, sp1 = sps
        # craft: sp0 sends a deposit claiming sp1's aid
        from repro.ecash.dec import begin_withdrawal, finish_withdrawal
        from repro.ecash.spend import create_spend
        from repro.ecash.tree import NodeId

        rng2 = random.Random(17)
        coin, wallet = jo.coins[0]
        node = wallet.allocate(1)
        token = create_spend(ma.params, ma.bank.public_key, coin.secret,
                             coin.signature, node, rng2)
        router.post(sp0.name, Outbound("MA", "deposit",
                                       {"aid": sp1.aid, "coin": token}))
        router.run()
        assert any("mismatched account" in f.error for f in router.failures)

    def test_replayed_coin_rejected(self, market):
        router, ma, jo, sps = market
        sp = sps[0]
        # replay one of sp's already-deposited coins
        deposits = [e for e in router.transport.log
                    if e.kind == "deposit" and e.sender == sp.name]
        assert deposits
        router.post(sp.name, Outbound("MA", "deposit", deposits[0].payload))
        router.run()
        assert any("double spend" in f.error for f in router.failures)

    def test_malformed_coin_rejected(self, market):
        router, ma, jo, sps = market
        sp = sps[0]
        router.post(sp.name, Outbound("MA", "deposit",
                                      {"aid": sp.aid, "coin": b"not-a-coin"}))
        router.run()
        assert any("malformed coin" in f.error for f in router.failures)

    def test_labor_for_unknown_job_rejected(self, market):
        router, ma, jo, sps = market
        router.post("mallory", Outbound("MA", "labor-registration",
                                        {"job": "nope", "rpk": (3, 5)}))
        router.run()
        assert any("unknown job" in f.error for f in router.failures)

    def test_out_of_order_payment_rejected(self, market, dec_params, rng):
        router, ma, jo, sps = market
        sp = sps[0]  # already in PAID state
        router.post("MA", Outbound(sp.name, "payment-delivery",
                                   {"ciphertext": b"\x00" * 100}))
        router.run()
        assert any("out of order" in f.error for f in router.failures)

"""End-to-end and privacy-property tests for PPMSdec (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core.ppms_dec import PPMSdecSession

RSA_BITS = 512  # test-sized


@pytest.fixture()
def session(dec_params, rng):
    return PPMSdecSession(dec_params, rng, rsa_bits=RSA_BITS, break_algorithm="epcba")


class TestEndToEnd:
    def test_single_sp(self, session, dec_params):
        jo = session.new_job_owner("jo-1", funds=64)
        sp = session.new_participant("sp-1")
        bundles = session.run_job(jo, [sp], payment=5)
        assert len(bundles) == 1
        assert bundles[0].signature_valid
        assert bundles[0].total_value(dec_params.tree_level) == 5
        assert session.ma.bank.balance("sp-1") == 5

    def test_multiple_sps(self, session, dec_params):
        jo = session.new_job_owner("jo-1", funds=64)
        sps = [session.new_participant(f"sp-{i}") for i in range(3)]
        bundles = session.run_job(jo, sps, payment=3)
        for i, b in enumerate(bundles):
            assert b.total_value(dec_params.tree_level) == 3
            assert session.ma.bank.balance(f"sp-{i}") == 3

    def test_payment_of_full_coin(self, session, dec_params):
        jo = session.new_job_owner("jo-1", funds=32)
        sp = session.new_participant("sp-1")
        session.run_job(jo, [sp], payment=1 << dec_params.tree_level)
        assert session.ma.bank.balance("sp-1") == 1 << dec_params.tree_level

    def test_withdraws_extra_coins_on_demand(self, session, dec_params):
        """Two payments of 5 don't fit one 2^3 coin — a second withdrawal
        must happen transparently."""
        jo = session.new_job_owner("jo-1", funds=64)
        sps = [session.new_participant(f"sp-{i}") for i in range(2)]
        session.run_job(jo, sps, payment=5)
        assert len(jo.coins) == 2
        assert session.ma.bank.balance("jo-1") == 64 - 16

    def test_money_conservation(self, session, dec_params):
        jo = session.new_job_owner("jo-1", funds=64)
        sps = [session.new_participant(f"sp-{i}") for i in range(2)]
        session.run_job(jo, sps, payment=5)
        bank = session.ma.bank
        in_wallets = jo.spendable_balance()
        total = bank.balance("jo-1") + sum(bank.balance(f"sp-{i}") for i in range(2)) + in_wallets
        assert total == 64

    def test_bulletin_board_published(self, session):
        jo = session.new_job_owner("jo-1", funds=16)
        sp = session.new_participant("sp-1")
        session.run_job(jo, [sp], payment=1, description="noise mapping downtown")
        jobs = session.ma.board.jobs()
        assert len(jobs) == 1
        assert jobs[0].description == "noise mapping downtown"
        assert jobs[0].payment == 1

    def test_deposit_events_recorded(self, session):
        jo = session.new_job_owner("jo-1", funds=16)
        sp = session.new_participant("sp-1")
        session.run_job(jo, [sp], payment=3)
        events = session.ma.deposit_events
        assert sum(e.amount for e in events) == 3
        assert all(e.aid == "sp-1" for e in events)
        times = [e.time for e in events]
        assert times == sorted(times)  # one-by-one with increasing delays

    def test_no_deposit_mode(self, session, dec_params):
        jo = session.new_job_owner("jo-1", funds=16)
        sp = session.new_participant("sp-1")
        bundles = session.run_job(jo, [sp], payment=2, deposit=False)
        assert session.ma.bank.balance("sp-1") == 0
        assert bundles[0].total_value(dec_params.tree_level) == 2


@pytest.mark.parametrize("algorithm", ["unitary", "pcba", "epcba"])
class TestBreakAlgorithms:
    def test_each_strategy_end_to_end(self, dec_params, rng, algorithm):
        session = PPMSdecSession(dec_params, rng, rsa_bits=RSA_BITS, break_algorithm=algorithm)
        jo = session.new_job_owner("jo-1", funds=16)
        sp = session.new_participant("sp-1")
        bundles = session.run_job(jo, [sp], payment=5)
        assert bundles[0].total_value(dec_params.tree_level) == 5
        assert session.ma.bank.balance("sp-1") == 5

    def test_fake_count_fills_slots(self, dec_params, rng, algorithm):
        session = PPMSdecSession(dec_params, rng, rsa_bits=RSA_BITS, break_algorithm=algorithm)
        jo = session.new_job_owner("jo-1", funds=16)
        sp = session.new_participant("sp-1")
        bundles = session.run_job(jo, [sp], payment=5, deposit=False)
        level = dec_params.tree_level
        expected_slots = (1 << level) if algorithm == "unitary" else level + 2
        assert len(bundles[0].tokens) + bundles[0].fake_count == expected_slots


class TestPrivacyProperties:
    def test_no_real_identity_on_the_wire_before_deposit(self, session):
        """Until the deposit step, the SP's account id must never appear
        in any message — only ephemeral pseudonyms."""
        jo = session.new_job_owner("jo-9", funds=16)
        sp = session.new_participant("sp-secret-aid")
        session.run_job(jo, [sp], payment=2, deposit=False)
        from repro.net.codec import encode

        for env in session.transport.log:
            assert b"sp-secret-aid" not in encode(env.payload)

    def test_payment_ciphertext_length_value_independent(self, dec_params, rng):
        """The MA must not learn w from the encrypted payment's length.

        Spend-token size varies with node depth, so equality is up to
        the per-slot reference length; we check the *slot count* is
        constant and lengths are within one slot of each other."""
        sizes = {}
        for payment in (1, 3, 7):
            session = PPMSdecSession(dec_params, rng, rsa_bits=RSA_BITS,
                                     break_algorithm="epcba")
            jo = session.new_job_owner("jo", funds=16)
            sp = session.new_participant("sp")
            session.run_job(jo, [sp], payment=payment, deposit=False)
            env = next(e for e in session.transport.log if e.kind == "payment-delivery")
            sizes[payment] = env.wire_bytes
        spread = max(sizes.values()) - min(sizes.values())
        assert spread < max(sizes.values()) * 0.35

    def test_sp_identifies_all_fakes(self, session, dec_params):
        jo = session.new_job_owner("jo-1", funds=16)
        sp = session.new_participant("sp-1")
        bundles = session.run_job(jo, [sp], payment=2, deposit=False)
        bundle = bundles[0]
        # every slot is either a verified coin or identified as fake
        assert bundle.total_value(dec_params.tree_level) == 2
        assert bundle.fake_count > 0

    def test_deposited_coins_unlinkable_to_withdrawal_commitment(self, session):
        """The bank's deposit view shares no value with its withdrawal
        view (beyond what the protocol intends)."""
        jo = session.new_job_owner("jo-1", funds=16)
        sp = session.new_participant("sp-1")
        session.run_job(jo, [sp], payment=2)
        withdrawal_msgs = [e for e in session.transport.log if e.kind == "withdraw-request"]
        deposit_msgs = [e for e in session.transport.log if e.kind == "deposit"]
        assert withdrawal_msgs and deposit_msgs
        backend = session.params.backend
        commitment = backend.element_encode(withdrawal_msgs[0].payload.commitment)
        for env in deposit_msgs:
            token = env.payload["coin"]
            assert backend.element_encode(token.sig_a) != commitment


class TestOpAndTrafficAccounting:
    def test_jo_zkp_count_grows_with_node_depth(self, dec_params, rng):
        """The Table I shape: (constant + path-length) ZKPs per payment."""
        counts = {}
        for payment in (8, 1):  # 8 = root node (depth 0), 1 = leaf (depth 3)
            session = PPMSdecSession(dec_params, rng, rsa_bits=RSA_BITS,
                                     break_algorithm="pcba")
            jo = session.new_job_owner("jo", funds=16)
            sp = session.new_participant("sp")
            session.run_job(jo, [sp], payment=payment, deposit=False)
            counts[payment] = session.counter.get("JO", "ZKP")
        assert counts[1] > counts[8]

    def test_traffic_recorded_for_all_parties(self, session):
        jo = session.new_job_owner("jo-1", funds=16)
        sp = session.new_participant("sp-1")
        session.run_job(jo, [sp], payment=2)
        meter = session.transport.meter
        for party in ("JO", "SP", "MA"):
            assert meter.output_bytes(party) > 0
            assert meter.input_bytes(party) > 0

    def test_sp_op_counts_present(self, session):
        jo = session.new_job_owner("jo-1", funds=16)
        sp = session.new_participant("sp-1")
        session.run_job(jo, [sp], payment=2)
        assert session.counter.get("SP", "Dec") >= 2  # RSA dec + sig verify


class TestDoubleSpendAcrossSessions:
    def test_jo_cannot_pay_same_node_twice(self, session, dec_params, rng):
        """A malicious JO bypassing its wallet gets caught at deposit."""
        from repro.ecash.spend import create_spend
        from repro.ecash.dec import DoubleSpendError
        from repro.ecash.tree import NodeId

        jo = session.new_job_owner("jo-1", funds=16)
        sp = session.new_participant("sp-1")
        session.run_job(jo, [sp], payment=8)  # spends the root
        coin, _ = jo.coins[0]
        rogue_token = create_spend(
            dec_params, session.ma.bank.public_key, coin.secret, coin.signature,
            NodeId(2, 1), rng,
        )
        with pytest.raises(DoubleSpendError):
            session.ma.bank.deposit("sp-1", rogue_token)

"""Unit + property tests for the cash-break algorithms (Algs. 2-3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cashbreak import (
    BREAK_FN_BY_NAME,
    binary_digits,
    coverage,
    epcba,
    pcba,
    subset_sums,
    unitary_break,
    validate_break,
)

LEVEL = 6
amounts = st.integers(min_value=1, max_value=1 << LEVEL)


class TestBinaryDigits:
    def test_known_values(self):
        assert binary_digits(5, 4) == [1, 0, 1, 0]
        assert binary_digits(0, 3) == [0, 0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            binary_digits(-1, 4)
        with pytest.raises(ValueError):
            binary_digits(16, 4)

    @given(st.integers(min_value=0, max_value=1023))
    def test_reconstruction(self, v):
        bits = binary_digits(v, 10)
        assert sum(b << i for i, b in enumerate(bits)) == v


class TestUnitaryBreak:
    @given(amounts)
    def test_sums_and_slots(self, w):
        coins = unitary_break(w, LEVEL)
        assert validate_break(coins, w, LEVEL)
        assert len(coins) == 1 << LEVEL  # fixed slot count
        assert all(c in (0, 1) for c in coins)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            unitary_break(0, LEVEL)
        with pytest.raises(ValueError):
            unitary_break((1 << LEVEL) + 1, LEVEL)


class TestPCBA:
    @given(amounts)
    def test_follows_binary_representation(self, w):
        coins = pcba(w, LEVEL)
        assert validate_break(coins, w, LEVEL)
        assert len(coins) == LEVEL + 2
        nonzero = sorted(c for c in coins if c)
        assert nonzero == sorted((1 << i) for i in range(LEVEL + 1) if (w >> i) & 1)

    def test_power_of_two_single_coin(self):
        coins = pcba(8, LEVEL)
        assert [c for c in coins if c] == [8]


class TestEPCBA:
    @given(amounts)
    def test_valid_break(self, w):
        coins = epcba(w, LEVEL)
        assert validate_break(coins, w, LEVEL)
        assert len(coins) == LEVEL + 2

    @given(amounts)
    def test_at_least_as_many_coins_as_pcba(self, w):
        """EPCBA's purpose: never fewer coins, hence never less privacy."""
        n_e = sum(1 for c in epcba(w, LEVEL) if c)
        n_p = sum(1 for c in pcba(w, LEVEL) if c)
        assert n_e >= n_p

    @given(amounts)
    def test_coverage_superset_or_equal(self, w):
        cov_e = coverage(epcba(w, LEVEL))
        cov_p = coverage(pcba(w, LEVEL))
        assert len(cov_e) >= len(cov_p)

    def test_power_of_two_broken_up(self):
        """The case EPCBA exists for: w = 2^k has one set bit; w-1 has k."""
        coins = [c for c in epcba(8, LEVEL) if c]
        assert sorted(coins) == [1, 1, 2, 4]

    def test_branch_selection_matches_algorithm3(self):
        # w = 6 (110, a=2); w-1 = 5 (101, a'=2): a <= a' -> break 5 + 1
        assert sorted(c for c in epcba(6, LEVEL) if c) == [1, 1, 4]
        # w = 5 (101, a=2); w-1 = 4 (100, a'=1): a > a' -> break 5 directly
        assert sorted(c for c in epcba(5, LEVEL) if c) == [1, 4]


class TestSubsetSums:
    def test_example(self):
        assert subset_sums([1, 2]) == {1, 2, 3}
        assert subset_sums([1, 1]) == {1, 2}

    def test_zeros_ignored(self):
        assert subset_sums([0, 3, 0]) == {3}

    def test_empty(self):
        assert subset_sums([]) == set()

    @given(amounts)
    def test_unitary_covers_everything_below_w(self, w):
        """The paper's claim: unitary break sums cover all of [1, w]."""
        assert coverage(unitary_break(w, LEVEL)) == set(range(1, w + 1))

    @given(amounts)
    def test_binary_break_covers_all_submasks(self, w):
        """PCBA sums cover exactly the submask sums of w."""
        cov = coverage(pcba(w, LEVEL))
        assert w in cov
        assert all(1 <= s <= w for s in cov)


class TestRegistry:
    def test_names(self):
        # the paper's three strategies are always present; the optional
        # "optimal" extension registers itself on import
        assert {"unitary", "pcba", "epcba"} <= set(BREAK_FN_BY_NAME)
        assert set(BREAK_FN_BY_NAME) <= {"unitary", "pcba", "epcba", "optimal"}

    @given(amounts, st.sampled_from(["unitary", "pcba", "epcba"]))
    def test_all_strategies_valid(self, w, name):
        assert validate_break(BREAK_FN_BY_NAME[name](w, LEVEL), w, LEVEL)


class TestValidateBreak:
    def test_detects_bad_sum(self):
        assert not validate_break([4, 2], 5, 3)

    def test_detects_non_power(self):
        assert not validate_break([3, 2], 5, 3)

    def test_detects_oversized(self):
        assert not validate_break([16], 16, 3)

    def test_accepts_zeros(self):
        assert validate_break([4, 0, 1, 0], 5, 3)

"""Tests for the shared market substrate."""

from __future__ import annotations

import pytest

from repro.core.market import BulletinBoard, DataReport, JobProfile, new_job_id


class TestJobProfile:
    def test_valid(self):
        p = JobProfile(job_id="j1", description="d", payment=3, owner_pseudonym=b"xx")
        assert p.payment == 3

    def test_rejects_zero_payment(self):
        with pytest.raises(ValueError):
            JobProfile(job_id="j", description="d", payment=0, owner_pseudonym=b"x")

    def test_rejects_missing_pseudonym(self):
        with pytest.raises(ValueError):
            JobProfile(job_id="j", description="d", payment=1, owner_pseudonym=b"")


class TestBulletinBoard:
    def _profile(self, jid):
        return JobProfile(job_id=jid, description="d", payment=1, owner_pseudonym=b"p")

    def test_publish_and_lookup(self):
        board = BulletinBoard()
        board.publish(self._profile("a"))
        assert board.lookup("a").job_id == "a"

    def test_rejects_duplicate(self):
        board = BulletinBoard()
        board.publish(self._profile("a"))
        with pytest.raises(ValueError):
            board.publish(self._profile("a"))

    def test_lookup_missing(self):
        with pytest.raises(KeyError):
            BulletinBoard().lookup("ghost")

    def test_jobs_ordered_and_copied(self):
        board = BulletinBoard()
        board.publish(self._profile("a"))
        board.publish(self._profile("b"))
        jobs = board.jobs()
        assert [j.job_id for j in jobs] == ["a", "b"]
        jobs.clear()
        assert len(board.jobs()) == 2


class TestDataReport:
    def test_valid(self):
        r = DataReport(job_id="j", submitter_pseudonym=b"p", payload=b"data")
        assert r.payload == b"data"

    def test_rejects_empty_payload(self):
        with pytest.raises(ValueError):
            DataReport(job_id="j", submitter_pseudonym=b"p", payload=b"")


class TestJobIds:
    def test_unique(self):
        ids = {new_job_id() for _ in range(100)}
        assert len(ids) == 100

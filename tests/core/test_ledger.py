"""Tests for bank snapshot/restore and the book audit."""

from __future__ import annotations

import pytest

from repro.core.ledger import SnapshotError, audit_bank, restore_bank, snapshot_bank
from repro.ecash.dec import DECBank, DoubleSpendError, begin_withdrawal, finish_withdrawal
from repro.ecash.spend import create_spend
from repro.ecash.tree import NodeId


@pytest.fixture()
def populated_bank(dec_params, rng):
    """A bank with activity: accounts, a withdrawal, two deposits."""
    bank = DECBank.create(dec_params, rng)
    bank.open_account("jo", 100)
    bank.open_account("sp", 0)
    secret, request = begin_withdrawal(dec_params, rng)
    signature = bank.issue("jo", request)
    coin = finish_withdrawal(dec_params, bank.public_key, secret, signature)
    for node in (NodeId(1, 0), NodeId(2, 2)):
        token = create_spend(dec_params, bank.public_key, coin.secret, coin.signature,
                             node, rng)
        bank.deposit("sp", token)
    return bank, coin


class TestSnapshotRestore:
    def test_roundtrip_preserves_books(self, dec_params, populated_bank, rng):
        bank, _ = populated_bank
        blob = snapshot_bank(bank)
        fresh = DECBank.create(dec_params, rng)
        fresh.keypair = bank.keypair  # same cryptographic identity
        restore_bank(fresh, blob)
        assert fresh.accounts == bank.accounts
        assert fresh.withdrawals == bank.withdrawals
        assert fresh._seen_serials == bank._seen_serials

    def test_restored_bank_still_blocks_double_spend(self, dec_params, populated_bank, rng):
        """The security-critical property of persistence."""
        bank, coin = populated_bank
        blob = snapshot_bank(bank)
        fresh = DECBank.create(dec_params, rng)
        fresh.keypair = bank.keypair
        restore_bank(fresh, blob)
        replay = create_spend(dec_params, bank.public_key, coin.secret, coin.signature,
                              NodeId(1, 0), rng)
        with pytest.raises(DoubleSpendError):
            fresh.deposit("sp", replay)

    def test_restored_bank_accepts_fresh_spend(self, dec_params, populated_bank, rng):
        bank, coin = populated_bank
        fresh = DECBank.create(dec_params, rng)
        fresh.keypair = bank.keypair
        restore_bank(fresh, snapshot_bank(bank))
        token = create_spend(dec_params, bank.public_key, coin.secret, coin.signature,
                             NodeId(3, 7), rng)
        assert fresh.deposit("sp", token) == 1

    def test_bad_magic_rejected(self, dec_params, populated_bank, rng):
        bank, _ = populated_bank
        fresh = DECBank.create(dec_params, rng)
        with pytest.raises(SnapshotError, match="magic"):
            restore_bank(fresh, b"garbage" + snapshot_bank(bank))

    def test_corruption_rejected(self, dec_params, populated_bank, rng):
        bank, _ = populated_bank
        blob = bytearray(snapshot_bank(bank))
        blob[-1] ^= 0x01
        fresh = DECBank.create(dec_params, rng)
        with pytest.raises(SnapshotError, match="digest"):
            restore_bank(fresh, bytes(blob))

    def test_level_mismatch_rejected(self, populated_bank, rng):
        bank, _ = populated_bank
        blob = snapshot_bank(bank)
        from repro.ecash.dec import setup

        other_params = setup(2, rng, security_bits=80, real_pairing=False, edge_rounds=4)
        other = DECBank.create(other_params, rng)
        with pytest.raises(SnapshotError, match="tree level"):
            restore_bank(other, blob)


class TestAudit:
    def test_clean_books(self, populated_bank, dec_params):
        bank, coin = populated_bank
        # float: withdrawn 8, deposited 4 + 2 => 2 remains in the wallet
        report = audit_bank(bank, outstanding_float=2)
        assert report.clean, report.findings

    def test_detects_negative_balance(self, populated_bank):
        bank, _ = populated_bank
        bank.accounts["sp"] = -1
        report = audit_bank(bank)
        assert any("negative" in f for f in report.findings)

    def test_detects_conservation_violation(self, populated_bank):
        bank, _ = populated_bank
        report = audit_bank(bank, outstanding_float=999)
        assert any("conservation" in f for f in report.findings)

    def test_detects_orphan_withdrawal(self, populated_bank):
        bank, _ = populated_bank
        bank.withdrawals.append("ghost")
        report = audit_bank(bank)
        assert any("unknown account" in f for f in report.findings)

    def test_detects_serial_record_inconsistency(self, populated_bank):
        bank, _ = populated_bank
        # drop one serial of a multi-serial deposit record
        serial = next(
            s for s, rec in bank._seen_serials.items() if rec[1] == 1
        )
        del bank._seen_serials[serial]
        report = audit_bank(bank)
        assert any("covers" in f for f in report.findings)

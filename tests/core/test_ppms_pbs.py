"""End-to-end and privacy tests for PPMSpbs (Algorithm 4)."""

from __future__ import annotations

import pytest

from repro.core.ppms_pbs import PPMSpbsSession
from repro.crypto.partial_blind import verify_partial_blind
from repro.crypto.rsa import RSAPublicKey

RSA_BITS = 512


@pytest.fixture()
def session(rng):
    return PPMSpbsSession(rng, rsa_bits=RSA_BITS)


class TestEndToEnd:
    def test_single_sp(self, session):
        jo = session.new_job_owner(funds=5)
        sp = session.new_participant()
        receipts = session.run_job(jo, [sp])
        assert len(receipts) == 1
        bank = session.ma.bank
        assert bank.balance(jo.account_pub.fingerprint()) == 4
        assert bank.balance(sp.account_pub.fingerprint()) == 1

    def test_many_sps(self, session):
        jo = session.new_job_owner(funds=10)
        sps = [session.new_participant() for _ in range(4)]
        session.run_job(jo, sps)
        bank = session.ma.bank
        assert bank.balance(jo.account_pub.fingerprint()) == 6
        for sp in sps:
            assert bank.balance(sp.account_pub.fingerprint()) == 1

    def test_receipt_verifies(self, session):
        jo = session.new_job_owner(funds=2)
        sp = session.new_participant()
        (receipt,) = session.run_job(jo, [sp])
        jo_pub = RSAPublicKey(*receipt.jo_account_key)
        assert verify_partial_blind(jo_pub, sp.account_pub.fingerprint(), receipt.signature)

    def test_unitary_job_on_board(self, session):
        jo = session.new_job_owner(funds=2)
        sp = session.new_participant()
        session.run_job(jo, [sp], description="unit job")
        jobs = session.ma.board.jobs()
        assert len(jobs) == 1 and jobs[0].payment == 1

    def test_insufficient_funds_blocks_deposit(self, session):
        jo = session.new_job_owner(funds=0)
        sp = session.new_participant()
        with pytest.raises(ValueError):
            session.run_job(jo, [sp])

    def test_no_deposit_mode(self, session):
        jo = session.new_job_owner(funds=3)
        sp = session.new_participant()
        receipts = session.run_job(jo, [sp], deposit=False)
        assert len(receipts) == 1
        assert session.ma.bank.balance(sp.account_pub.fingerprint()) == 0


class TestDoubleDeposit:
    def test_replay_blocked_by_serial(self, session):
        jo = session.new_job_owner(funds=3)
        sp = session.new_participant()
        (receipt,) = session.run_job(jo, [sp])
        with pytest.raises(ValueError, match="double deposit|serial"):
            session.ma.handle_deposit(
                receipt.signature,
                (sp.account_pub.n, sp.account_pub.e),
                receipt.jo_account_key,
            )

    def test_distinct_serials_both_deposit(self, session):
        """The same SP doing the job twice gets two distinct serials."""
        jo = session.new_job_owner(funds=5)
        sp = session.new_participant()
        session.run_job(jo, [sp])
        session.run_job(jo, [sp])
        assert session.ma.bank.balance(sp.account_pub.fingerprint()) == 2


class TestForgery:
    def test_forged_signature_rejected(self, session, rng):
        jo = session.new_job_owner(funds=3)
        sp = session.new_participant()
        (receipt,) = session.run_job(jo, [sp], deposit=False)
        import dataclasses

        forged = dataclasses.replace(
            receipt.signature, value=(receipt.signature.value * 2) % RSAPublicKey(*receipt.jo_account_key).n
        )
        with pytest.raises(ValueError, match="invalid"):
            session.ma.handle_deposit(
                forged, (sp.account_pub.n, sp.account_pub.e), receipt.jo_account_key
            )

    def test_wrong_sp_key_rejected(self, session):
        """Depositing someone else's coin into your account must fail —
        the signature binds the payee's key."""
        jo = session.new_job_owner(funds=3)
        sp1 = session.new_participant()
        sp2 = session.new_participant()
        (receipt,) = session.run_job(jo, [sp1], deposit=False)
        with pytest.raises(ValueError, match="invalid"):
            session.ma.handle_deposit(
                receipt.signature,
                (sp2.account_pub.n, sp2.account_pub.e),
                receipt.jo_account_key,
            )


class TestPrivacyProperties:
    def test_jo_never_sees_sp_real_key(self, session):
        """Transaction-linkage privacy against the JO: nothing the JO
        receives contains the SP's real account key."""
        jo = session.new_job_owner(funds=3)
        sp = session.new_participant()
        session.run_job(jo, [sp], deposit=False)
        from repro.net.codec import encode

        real_key_bytes = sp.account_pub.n.to_bytes(
            (sp.account_pub.n.bit_length() + 7) // 8, "big"
        )
        for env in session.transport.log:
            if env.receiver == "JO":
                assert real_key_bytes not in encode(env.payload)

    def test_blinded_requests_look_random(self, session):
        """Two SPs' blinded payment requests must not repeat."""
        jo = session.new_job_owner(funds=5)
        sps = [session.new_participant() for _ in range(3)]
        session.run_job(jo, sps, deposit=False)
        blinded = [e.payload for e in session.transport.log if e.kind == "blinded-payment"]
        assert len(blinded) == 3 and len(set(blinded)) == 3

    def test_ma_sees_transaction_at_deposit_by_design(self, session):
        """Section V: the bank deliberately learns (JO, SP) pairs."""
        jo = session.new_job_owner(funds=3)
        sp = session.new_participant()
        session.run_job(jo, [sp])
        log = session.ma.bank.transaction_log
        assert log == [(jo.account_pub.fingerprint(), sp.account_pub.fingerprint())]

    def test_job_published_under_pseudonym(self, session):
        jo = session.new_job_owner(funds=3)
        sp = session.new_participant()
        session.run_job(jo, [sp])
        profile = session.ma.board.jobs()[0]
        assert profile.owner_pseudonym != jo.account_pub.fingerprint()


class TestLightweightShape:
    def test_no_zkp_used(self, session):
        """Table I: PPMSpbs involves zero ZKP operations."""
        jo = session.new_job_owner(funds=3)
        sp = session.new_participant()
        session.run_job(jo, [sp])
        for party in ("JO", "SP", "MA"):
            assert session.counter.get(party, "ZKP") == 0

    def test_traffic_much_lighter_than_dec(self, session, dec_params, rng):
        """Table II shape: PPMSpbs total ≪ PPMSdec total per round."""
        jo = session.new_job_owner(funds=3)
        sp = session.new_participant()
        session.run_job(jo, [sp])
        pbs_total = session.transport.meter.total_bytes()

        from repro.core.ppms_dec import PPMSdecSession

        dec_session = PPMSdecSession(dec_params, rng, rsa_bits=RSA_BITS)
        jo_d = dec_session.new_job_owner("jo", funds=16)
        sp_d = dec_session.new_participant("sp")
        dec_session.run_job(jo_d, [sp_d], payment=1)
        dec_total = dec_session.transport.meter.total_bytes()
        assert dec_total > 3 * pbs_total

"""Crash injection *inside* checkpointing and compaction.

The envelope-clock sweeps (``test_recovery.py``) prove crashes between
requests recover cleanly; these sweeps prove the same for crashes in
the middle of the storage maintenance path itself — after a blob is
written but before the manifest, between two segment unlinks, mid
checkpoint-GC.  The method:

1. one **recording run** executes a fixed workload against a
   :class:`SegmentedFileJournal` and lets
   :class:`~repro.testing.StorageCrasher` enumerate every named step a
   full checkpoint + compaction cycle performs, capturing the
   reference books and the complete *uncompacted* record stream;
2. one **sweep run per step** replays the identical workload in a
   fresh directory, kills the process (``CrashPoint``) at exactly that
   step, then recovers from whatever the crash left on disk;
3. **recovery equivalence**: the recovered books must equal both the
   reference books and an uncompacted shadow replay of the full record
   stream — nothing a maintenance-path crash can do is allowed to
   change state, and a second maintenance pass after recovery must
   converge (no strays, store still loads).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.service import (
    Journal,
    JournalMaintenance,
    MarketService,
    SegmentedFileJournal,
    ShardedBank,
    VerificationBatcher,
)
from repro.service.journal import JournalRecord
from repro.testing import check_recovery_invariants
from repro.testing.faults import CrashPoint, StorageCrasher

SEGMENT_RECORDS = 4


def _run_workload(kit, directory, crasher, holder) -> tuple:
    """The fixed workload: fund accounts, deposit, then maintenance.

    Returns ``(journal, service)``.  *holder* is a dict the caller
    keeps: ``holder["records"]`` accumulates the complete uncompacted
    record stream as states — when the crasher raises
    :class:`CrashPoint` mid-maintenance, the holder is what survives
    (it plays the role of the crash-free twin's log), while the journal
    directory holds whatever the "process" left behind.
    """
    journal = SegmentedFileJournal(directory, segment_records=SEGMENT_RECORDS,
                                   crash_hook=crasher)
    full_records = holder.setdefault("records", [])
    journal.add_observer(lambda r: full_records.append(r.to_state()))
    bank = ShardedBank(kit.params, kit.keypair, random.Random(1), n_shards=3,
                       journal=journal)
    for aid, balance, coins in kit.funding:
        bank.open_account(aid, balance)
        for _ in range(coins):
            bank.apply_withdrawal(aid)
    service = MarketService(
        bank, journal=journal,
        batcher=VerificationBatcher(kit.params, kit.keypair, max_batch=4,
                                    seed=7, warm_tables=False),
        rng=random.Random(2),
    )
    for i, request in enumerate(kit.requests[:3]):
        service.submit(request.aid, "deposit",
                       {"aid": request.aid,
                        "token": kit.tokens[request.token_index]},
                       rid=f"s:{i}")
    service.drain()
    maintenance = JournalMaintenance(journal, service.checkpoint,
                                     retain_segments=1)
    maintenance.run(force=True)
    # a second cycle after more traffic: the sweep also covers crashing
    # while *older* checkpoints and their blobs are being GC'd
    for i, request in enumerate(kit.requests[3:5]):
        service.submit(request.aid, "deposit",
                       {"aid": request.aid,
                        "token": kit.tokens[request.token_index]},
                       rid=f"t:{i}")
    service.drain()
    maintenance.run(force=True)
    return journal, service


def _books(bank: ShardedBank):
    return (
        [dict(s.accounts) for s in bank.shards],
        [list(s.withdrawals) for s in bank.shards],
        [dict(s._seen_serials) for s in bank.shards],
        bank.deposit_seq,
    )


def _recover_from_disk(kit, directory) -> tuple:
    """Reopen the store cold and recover — the post-SIGKILL path."""
    journal = SegmentedFileJournal(directory,
                                   segment_records=SEGMENT_RECORDS)
    checkpoint = journal.load_checkpoint()
    service = MarketService.recover(
        kit.params, kit.keypair, journal, checkpoint=checkpoint, n_shards=3,
        batcher=VerificationBatcher(kit.params, kit.keypair, max_batch=4,
                                    seed=7, warm_tables=False),
    )
    return journal, checkpoint, service


def _shadow_books(kit, full_records):
    """Replay the complete uncompacted stream into a fresh bank."""
    shadow_journal = Journal()
    shadow_journal._records.extend(
        JournalRecord.from_state(s) for s in full_records
    )
    shadow = ShardedBank.recover(kit.params, kit.keypair, random.Random(0),
                                 shadow_journal, n_shards=3)
    return _books(shadow)


@pytest.fixture(scope="module")
def reference(deposit_kit, tmp_path_factory):
    """The crash-free run: step labels, books, full record stream."""
    recorder = StorageCrasher()
    directory = tmp_path_factory.mktemp("storage-ref")
    holder: dict = {}
    journal, service = _run_workload(deposit_kit, directory, recorder, holder)
    books = _books(service.bank)
    journal.close()
    assert recorder.steps, "maintenance must expose crash steps"
    return recorder.steps, books, holder["records"]


def test_the_sweep_covers_checkpoint_and_compaction_steps(reference):
    steps, _books_, _records = reference
    families = {label.split(":")[0] for label in steps}
    assert families == {"checkpoint", "compact"}
    # both maintenance halves expose interior steps, not just one point
    assert any(label.startswith("checkpoint:blob:") for label in steps)
    assert "checkpoint:manifest" in steps
    assert "checkpoint:publish" in steps
    assert any(label.startswith("compact:segment:") for label in steps)
    assert any(label.startswith("compact:manifest:") for label in steps)


def test_crash_at_every_storage_step_recovers_equivalently(
        deposit_kit, reference, tmp_path):
    steps, reference_books, full_records = reference
    assert _shadow_books(deposit_kit, full_records) == reference_books
    for index, label in enumerate(steps):
        directory = tmp_path / f"crash-{index:02d}"
        crasher = StorageCrasher(crash_at=index)
        holder: dict = {}
        with pytest.raises(CrashPoint):
            _run_workload(deposit_kit, directory, crasher, holder)
        assert crasher.fired == label
        journal, checkpoint, recovered = _recover_from_disk(deposit_kit,
                                                            directory)
        context = f"crash at step {index} ({label})"
        # equivalence vs the uncompacted shadow: replaying every record
        # the crashed run ever appended (the holder survives the crash,
        # like the crash-free twin's log) must land on exactly the
        # recovered books — the maintenance-path crash changed nothing
        expected = _shadow_books(deposit_kit, holder["records"])
        assert _books(recovered.bank) == expected, context
        report = check_recovery_invariants(recovered.bank, journal,
                                           checkpoint=checkpoint)
        assert report.clean, f"{context}: {report.findings}"
        # maintenance converges after the interrupted cycle: strays are
        # collected, the store still loads, and state is unchanged
        maintenance = JournalMaintenance(journal, recovered.checkpoint,
                                         retain_segments=1)
        maintenance.run(force=True)
        journal.close()
        reopened = SegmentedFileJournal(directory,
                                        segment_records=SEGMENT_RECORDS)
        assert not any(n.endswith(".tmp") for n in os.listdir(directory))
        ckpt2 = reopened.load_checkpoint()
        service2 = MarketService.recover(
            deposit_kit.params, deposit_kit.keypair, reopened,
            checkpoint=ckpt2, n_shards=3,
            batcher=VerificationBatcher(deposit_kit.params,
                                        deposit_kit.keypair, max_batch=4,
                                        seed=7, warm_tables=False),
        )
        assert _books(service2.bank) == expected, context
        reopened.close()


def test_torn_segment_tail_plus_interrupted_compaction(deposit_kit, tmp_path):
    """The runbook's worst case: a torn tail *and* a half-done compaction."""
    steps_probe = StorageCrasher()
    _journal, _service = _run_workload(
        deposit_kit, tmp_path / "probe", steps_probe, {})
    _journal.close()
    first_compact = next(i for i, s in enumerate(steps_probe.steps)
                         if s.startswith("compact:segment:"))
    directory = tmp_path / "torn"
    with pytest.raises(CrashPoint):
        _run_workload(deposit_kit, directory,
                      StorageCrasher(crash_at=first_compact), {})
    # tear the newest segment's final frame, as a crash mid-append would
    newest = sorted(p for p in directory.iterdir()
                    if p.name.startswith("seg-"))[-1]
    newest.write_bytes(newest.read_bytes()[:-5])
    journal, checkpoint, recovered = _recover_from_disk(deposit_kit,
                                                        directory)
    assert journal.torn_tail
    report = check_recovery_invariants(recovered.bank, journal,
                                       checkpoint=checkpoint)
    assert report.clean, report.findings
    journal.close()

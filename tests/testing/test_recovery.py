"""Crash recovery: zero lost deposits, zero double-applies, ever.

The acceptance criteria of the fault harness live here:

* a crash at **any** scripted envelope mid-batch, followed by a
  restart from the journal (plus shard snapshots), yields exactly the
  verdicts of the crash-free run — nothing lost, nothing applied
  twice, double-deposit detection intact
  (:func:`test_crash_at_every_envelope_matches_crash_free_run`);
* the same holds across ≥ 100 seeded random fault schedules when
  ``REPRO_FAULT_SMOKE=1`` (a dozen in the default tier-1 run);
* every failure message carries the seed and fault schedule plus the
  single pytest invocation that replays it.
"""

from __future__ import annotations

import os
import random

from repro.ecash.dec import begin_withdrawal
from repro.net.transport import Transport
from repro.service import (
    Journal,
    MarketService,
    ShardedBank,
    VerificationBatcher,
)
from repro.testing import FaultPlan, check_recovery_invariants, env_seed
from repro.testing.properties import DEFAULT_SEED
from repro.testing.scenario import run_deposit_scenario, run_pbs_scenario

SMOKE = bool(os.environ.get("REPRO_FAULT_SMOKE"))
#: scenario counts: CI smoke sweeps wide, tier-1 stays fast
N_DEC_SCHEDULES = 100 if SMOKE else 12
N_PBS_SCHEDULES = 40 if SMOKE else 6


def _repro_hint(test: str) -> str:
    seed = env_seed()
    return (
        f"reproduce with: REPRO_FAULT_SMOKE=1 REPRO_TEST_SEED={seed:#x} "
        f"python -m pytest tests/testing/test_recovery.py::{test}"
    )


def _fresh_service(kit, journal=None) -> MarketService:
    journal = journal if journal is not None else Journal()
    bank = ShardedBank(
        kit.params, kit.keypair, random.Random(1), n_shards=3, journal=journal
    )
    for aid, balance, coins in kit.funding:
        bank.open_account(aid, balance)
        for _ in range(coins):
            bank.apply_withdrawal(aid)
    batcher = VerificationBatcher(
        kit.params, kit.keypair, max_batch=4, seed=7, warm_tables=False
    )
    return MarketService(
        bank, transport=Transport(), batcher=batcher, rng=random.Random(2)
    )


def _recovered(kit, journal, *, checkpoint=None) -> MarketService:
    return MarketService.recover(
        kit.params,
        kit.keypair,
        journal,
        checkpoint=checkpoint,
        n_shards=3,
        transport=Transport(),
        batcher=VerificationBatcher(
            kit.params, kit.keypair, max_batch=4, seed=7, warm_tables=False
        ),
    )


def _books(bank: ShardedBank):
    return (
        [dict(s.accounts) for s in bank.shards],
        [list(s.withdrawals) for s in bank.shards],
        [dict(s._seen_serials) for s in bank.shards],
        bank.deposit_seq,
    )


class TestUnitRecovery:
    def test_replay_reconstructs_the_books_exactly(self, deposit_kit):
        kit = deposit_kit
        journal = Journal()
        service = _fresh_service(kit, journal)
        for i, request in enumerate(kit.requests[:4]):
            service.submit(request.aid, "deposit",
                           {"aid": request.aid, "token": kit.tokens[request.token_index]},
                           rid=f"u:{i}")
        service.drain()
        recovered = _recovered(kit, journal)
        assert _books(recovered.bank) == _books(service.bank)
        assert check_recovery_invariants(recovered.bank, journal).clean

    def test_duplicate_apply_records_replay_once(self, deposit_kit):
        """Idempotent replay keyed on rids: a repeated record is a no-op."""
        kit = deposit_kit
        journal = Journal()
        service = _fresh_service(kit, journal)
        request = kit.requests[0]
        service.submit(request.aid, "deposit",
                       {"aid": request.aid, "token": kit.tokens[request.token_index]},
                       rid="dup-rid")
        service.drain()
        apply_record = next(r for r in journal.records()
                            if r.kind == "apply" and r.rid == "dup-rid")
        # a hostile/duplicated journal tail must not double-credit
        journal._records.append(apply_record)
        recovered = ShardedBank.recover(
            kit.params, kit.keypair, random.Random(0), journal, n_shards=3
        )
        assert recovered.balance(request.aid) == service.bank.balance(request.aid)

    def test_accepted_but_unapplied_deposit_is_redone(self, deposit_kit):
        """Crash mid-batch: the accept record alone recovers the request."""
        kit = deposit_kit
        journal = Journal()
        service = _fresh_service(kit, journal)
        request = kit.requests[0]
        service.submit(request.aid, "deposit",
                       {"aid": request.aid, "token": kit.tokens[request.token_index]},
                       rid="inflight")
        # no step(): the batch never flushed — the service dies here
        recovered = _recovered(kit, journal)
        assert recovered.redone == 1
        assert recovered.reply_for("inflight") is None
        recovered.drain()
        status, body = recovered.reply_for("inflight")
        assert status == "OK"
        assert check_recovery_invariants(recovered.bank, journal).clean

    def test_applied_but_unanswered_withdrawal_synthesizes_its_reply(self, deposit_kit):
        kit = deposit_kit
        journal = Journal()
        service = _fresh_service(kit, journal)
        value = 1 << kit.params.tree_level
        service.bank.open_account("wd-acct", value)
        _, request = begin_withdrawal(kit.params, random.Random(3))
        service.submit("wd-acct", "withdraw", {"aid": "wd-acct", "request": request},
                       rid="wd:1")
        service.drain()
        original = service.reply_for("wd:1")
        assert original is not None and original[0] == "OK"
        # strike the reply record: simulates a crash after apply, before
        # the reply hit the journal... which cannot happen (reply is
        # journaled first) — but an applied rid must still answer OK
        journal._records = [r for r in journal._records
                            if not (r.kind == "reply" and r.rid == "wd:1")]
        recovered = _recovered(kit, journal)
        status, body = recovered.reply_for("wd:1")
        assert status == "OK"
        assert body["signature"] == original[1]["signature"]
        assert recovered.bank.balance("wd-acct") == 0

    def test_completed_rid_dedupes_across_incarnations(self, deposit_kit):
        kit = deposit_kit
        journal = Journal()
        service = _fresh_service(kit, journal)
        request = kit.requests[0]
        payload = {"aid": request.aid, "token": kit.tokens[request.token_index]}
        service.submit(request.aid, "deposit", payload, rid="once")
        service.drain()
        balance = service.bank.balance(request.aid)
        recovered = _recovered(kit, journal)
        recovered.submit(request.aid, "deposit", payload, rid="once")
        recovered.drain()
        assert recovered.dedup_hits == 1
        assert recovered.bank.balance(request.aid) == balance
        applies = [r for r in journal.records()
                   if r.kind == "apply" and r.rid == "once"]
        assert len(applies) == 1

    def test_checkpoint_plus_tail_equals_full_replay(self, deposit_kit):
        kit = deposit_kit
        journal = Journal()
        service = _fresh_service(kit, journal)
        half = len(kit.requests) // 2
        for i, request in enumerate(kit.requests[:half]):
            service.submit(request.aid, "deposit",
                           {"aid": request.aid, "token": kit.tokens[request.token_index]},
                           rid=f"c:{i}")
        service.drain()
        checkpoint = service.checkpoint()
        for i, request in enumerate(kit.requests[half:]):
            service.submit(request.aid, "deposit",
                           {"aid": request.aid, "token": kit.tokens[request.token_index]},
                           rid=f"c:{half + i}")
        service.drain()
        from_checkpoint = _recovered(kit, journal, checkpoint=checkpoint)
        from_scratch = _recovered(kit, journal)
        assert _books(from_checkpoint.bank) == _books(service.bank)
        assert _books(from_scratch.bank) == _books(service.bank)


class TestCrashSweep:
    def test_crash_at_every_envelope_matches_crash_free_run(self, deposit_kit):
        """Kill the service at each envelope in turn; verdicts never change."""
        kit = deposit_kit
        baseline = run_deposit_scenario(FaultPlan(seed=0), kit=kit)
        assert baseline.clean, baseline.report()
        # zero-fault run: one request + one reply envelope per delivery
        total_envelopes = 2 * baseline.delivered
        for point in range(1, total_envelopes):
            plan = FaultPlan(seed=0, crash_points=(point,))
            result = run_deposit_scenario(plan, kit=kit, checkpoint_every=3)
            message = (
                f"crash at envelope {point}:\n{result.report()}\n"
                + _repro_hint("TestCrashSweep::"
                              "test_crash_at_every_envelope_matches_crash_free_run")
            )
            assert result.clean, message
            assert result.crashes == 1, message
            assert result.recoveries == 1, message
            assert result.verdicts == baseline.verdicts, message

    def test_multi_crash_schedules(self, deposit_kit):
        """Several crashes per run, including back-to-back ones."""
        kit = deposit_kit
        baseline = run_deposit_scenario(FaultPlan(seed=0), kit=kit)
        for points in [(2, 3), (2, 3, 4), (5, 9, 14, 22), (1, 10, 11, 12, 25)]:
            plan = FaultPlan(seed=0, crash_points=points)
            result = run_deposit_scenario(plan, kit=kit, checkpoint_every=4)
            message = (
                f"crash points {points}:\n{result.report()}\n"
                + _repro_hint("TestCrashSweep::test_multi_crash_schedules")
            )
            assert result.clean, message
            assert result.verdicts == baseline.verdicts, message


class TestSeededSchedules:
    def test_dec_fault_schedules(self, deposit_kit):
        """Random drop/duplicate/reorder/crash schedules, seed-derived."""
        base = env_seed(DEFAULT_SEED)
        stream = random.Random(f"fault-suite:dec:{base}")
        for i in range(N_DEC_SCHEDULES):
            seed = stream.randrange(1 << 32)
            plan = FaultPlan.from_seed(seed, intensity=0.25, horizon=36)
            result = run_deposit_scenario(plan, kit=deposit_kit, checkpoint_every=4)
            assert result.clean, (
                f"schedule {i + 1}/{N_DEC_SCHEDULES} (base seed {base:#x}):\n"
                f"{result.report()}\n"
                + _repro_hint("TestSeededSchedules::test_dec_fault_schedules")
            )

    def test_pbs_fault_schedules(self, pbs_kit):
        base = env_seed(DEFAULT_SEED)
        stream = random.Random(f"fault-suite:pbs:{base}")
        for i in range(N_PBS_SCHEDULES):
            seed = stream.randrange(1 << 32)
            plan = FaultPlan.from_seed(seed, intensity=0.25, horizon=10)
            result = run_pbs_scenario(plan, kit=pbs_kit, checkpoint_every=2)
            assert result.clean, (
                f"schedule {i + 1}/{N_PBS_SCHEDULES} (base seed {base:#x}):\n"
                f"{result.report()}\n"
                + _repro_hint("TestSeededSchedules::test_pbs_fault_schedules")
            )

"""Write-ahead journal: append discipline, file durability, checkpoints."""

from __future__ import annotations

import pytest

from repro.service import Checkpoint, FileJournal, Journal, JournalError


class TestJournal:
    def test_lsns_are_dense_from_zero(self):
        journal = Journal()
        assert journal.last_lsn == -1
        for i in range(5):
            record = journal.append("apply", f"r{i}", "deposit", {"i": i})
            assert record.lsn == i
        assert journal.last_lsn == 4
        assert len(journal) == 5

    def test_records_after_cursor(self):
        journal = Journal()
        for i in range(4):
            journal.append("apply", f"r{i}", "op", i)
        assert [r.lsn for r in journal.records()] == [0, 1, 2, 3]
        assert [r.lsn for r in journal.records(after=1)] == [2, 3]
        assert list(journal.records(after=3)) == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(JournalError, match="kind"):
            Journal().append("mutate", "r", "op", {})

    def test_unencodable_payload_rejected_and_not_appended(self):
        journal = Journal()
        with pytest.raises(JournalError, match="unjournalable"):
            journal.append("apply", "r", "op", object())
        assert len(journal) == 0

    def test_payload_is_decoupled_from_the_caller(self):
        """A journaled payload is a codec copy, not a shared reference."""
        journal = Journal()
        payload = {"serials": [1, 2, 3]}
        record = journal.append("apply", "r", "deposit", payload)
        payload["serials"].append(4)
        assert record.payload == {"serials": [1, 2, 3]}


class TestFileJournal:
    def _fill(self, journal: Journal, n: int = 4) -> None:
        for i in range(n):
            journal.append("apply", f"r{i}", "deposit", {"aid": "a", "i": i})

    def test_reload_round_trip(self, tmp_path):
        path = tmp_path / "wal"
        journal = FileJournal(path)
        self._fill(journal)
        journal.close()
        reloaded = FileJournal(path)
        assert [r.to_state() for r in reloaded.records()] == [
            {"lsn": i, "kind": "apply", "rid": f"r{i}", "op": "deposit",
             "payload": {"aid": "a", "i": i}}
            for i in range(4)
        ]
        assert not reloaded.torn_tail

    def test_appends_survive_reopen(self, tmp_path):
        path = tmp_path / "wal"
        journal = FileJournal(path)
        self._fill(journal, 2)
        journal.close()
        reloaded = FileJournal(path)
        reloaded.append("apply", "r2", "deposit", {"aid": "a", "i": 2})
        reloaded.close()
        final = FileJournal(path)
        assert [r.lsn for r in final.records()] == [0, 1, 2]

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        """A crash mid-append loses at most the record being written."""
        path = tmp_path / "wal"
        journal = FileJournal(path)
        self._fill(journal)
        journal.close()
        size = path.stat().st_size
        with open(path, "rb+") as fh:
            fh.truncate(size - 3)  # tear the last frame's body
        reloaded = FileJournal(path)
        assert reloaded.torn_tail
        assert [r.lsn for r in reloaded.records()] == [0, 1, 2]
        # the torn bytes were truncated: appends land on a clean frame
        reloaded.append("apply", "r3b", "deposit", {"aid": "a"})
        reloaded.close()
        final = FileJournal(path)
        assert [r.rid for r in final.records()] == ["r0", "r1", "r2", "r3b"]
        assert not final.torn_tail

    def test_mid_file_corruption_is_fatal(self, tmp_path):
        path = tmp_path / "wal"
        journal = FileJournal(path)
        self._fill(journal)
        journal.close()
        data = bytearray(path.read_bytes())
        data[40] ^= 0xFF  # inside the first frame, far from the tail
        path.write_bytes(bytes(data))
        with pytest.raises(JournalError):
            FileJournal(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "wal"
        path.write_bytes(b"not a journal at all")
        with pytest.raises(JournalError, match="magic"):
            FileJournal(path)


class TestCheckpoint:
    def test_round_trip(self):
        ckpt = Checkpoint(lsn=17, blobs=(b"shard-0", b"shard-1"))
        assert Checkpoint.from_bytes(ckpt.to_bytes()) == ckpt

    def test_corruption_detected(self):
        blob = bytearray(Checkpoint(lsn=3, blobs=(b"x",)).to_bytes())
        blob[-1] ^= 0x01
        with pytest.raises(JournalError, match="digest"):
            Checkpoint.from_bytes(bytes(blob))

    def test_bad_magic_rejected(self):
        with pytest.raises(JournalError, match="magic"):
            Checkpoint.from_bytes(b"junk")

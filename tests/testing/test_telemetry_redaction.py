"""Planted-secret sweep: scenario telemetry never leaks market material.

Both scenario runners execute with a fully-enabled telemetry stack;
afterwards every export surface (trace JSONL, Prometheus text, metrics
JSON) is grepped for the values the paper's privacy properties hide —
request ids, account ids, spend-token key material, coin serials,
account-key fingerprints.  Nothing may appear, hashed pass-through is
not enough: the raw bytes must be absent.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.testing.faults import FaultPlan
from repro.testing.scenario import (
    build_deposit_kit,
    build_pbs_kit,
    run_deposit_scenario,
    run_pbs_scenario,
)


def _exports(telemetry: obs.Telemetry) -> str:
    """Every byte the telemetry layer would hand to the outside world."""
    return "".join((
        telemetry.tracer.export_jsonl(),
        telemetry.registry.to_prometheus(),
        telemetry.registry.to_json(),
    ))


def test_deposit_scenario_telemetry_is_secret_free():
    telemetry = obs.Telemetry.enabled(capacity=65536)
    kit = build_deposit_kit(random.Random("redaction-dec"),
                            n_accounts=2, n_deposits=4, double_spends=1)
    result = run_deposit_scenario(
        FaultPlan.from_seed(5), kit=kit, telemetry=telemetry
    )
    assert result.clean, result.report()
    assert telemetry.tracer.records(), "scenario produced no spans"

    blob = _exports(telemetry)
    planted = [request.rid for request in kit.requests]
    planted += [aid for aid, _balance, _coins in kit.funding]
    for token in kit.tokens:
        planted.append(str(token.node_key))
        planted.append(str(token.commitment_s))
    for secret in planted:
        assert secret not in blob, f"telemetry leaked {secret[:24]!r}"


def test_pbs_scenario_telemetry_is_secret_free():
    telemetry = obs.Telemetry.enabled(capacity=65536)
    kit = build_pbs_kit(random.Random("redaction-pbs"), n_sps=2)
    result = run_pbs_scenario(
        FaultPlan.from_seed(5), kit=kit, telemetry=telemetry
    )
    assert result.clean, result.report()
    assert telemetry.tracer.records(), "scenario produced no spans"

    blob = _exports(telemetry)
    planted = [request.rid for request in kit.requests]
    planted += [aid.hex() for aid, _key, _balance in kit.accounts]
    for receipt in kit.receipts:
        planted.append(receipt.signature.common_info.hex())
    for secret in planted:
        assert secret not in blob, f"telemetry leaked {str(secret)[:24]!r}"


def test_scenario_with_default_telemetry_stays_silent():
    # no telemetry handed in and the env toggles off: the runner must
    # not accumulate spans in the module-default tracer
    default = obs.get_default()
    if default.tracing or default.metrics:
        pytest.skip("REPRO_TRACE/REPRO_METRICS enabled in this environment")
    before = len(default.tracer.records())
    kit = build_deposit_kit(random.Random("redaction-off"),
                            n_accounts=2, n_deposits=2, double_spends=0)
    run_deposit_scenario(FaultPlan.from_seed(1), kit=kit)
    assert len(default.tracer.records()) == before

"""Crash injection in the shared-table publication window.

The one window where shipping tables could hurt correctness is a
publisher dying between creating the shared segment and handing out
its reference.  `tablestore.set_crash_hook` exposes exactly that
window to the fault harness; these tests kill the publisher there and
require (a) no leaked segments or files, (b) the pool constructor
shrugging it off — workers build locally — and (c) verification
results identical to a run that never attempted sharing.
"""

from __future__ import annotations

import glob
import os
import tempfile

import pytest

from repro.crypto import fastexp, tablestore
from repro.crypto.cl_sig import cl_blind_issue, cl_keygen
from repro.ecash.dec import begin_withdrawal, finish_withdrawal
from repro.ecash.spend import create_spend
from repro.ecash.tree import NodeId
from repro.service.workers import PooledBackend
from repro.testing.faults import CrashPoint


@pytest.fixture(autouse=True)
def _forced_fastexp():
    """Sharing only engages with tables on; small test moduli need the
    gates opened."""
    previous = fastexp.configure(enabled=True, promote_after=0, min_modulus_bits=1)
    fastexp.reset()
    yield
    tablestore.set_crash_hook(None)
    fastexp.configure(**previous)
    fastexp.reset()


def _crash_hook():
    raise CrashPoint(0)


def _tokens(params, rng, count=4):
    bank_kp = cl_keygen(params.backend, rng)
    secret, request = begin_withdrawal(params, rng)
    signature = cl_blind_issue(params.backend, bank_kp, request, rng)
    coin = finish_withdrawal(params, bank_kp.public, secret, signature)
    tokens = [
        create_spend(params, bank_kp.public, coin.secret, coin.signature,
                     NodeId(2, i), rng)
        for i in range(count)
    ]
    return bank_kp, tokens


def test_publish_crash_leaks_nothing():
    tablestore.set_crash_hook(_crash_hook)
    store = tablestore.TableStore()
    with pytest.raises(CrashPoint):
        store.publish(b"tables")
    assert store.ref is None
    leftovers = glob.glob(
        os.path.join(tempfile.gettempdir(), "repro-tables-*.bin")
    )
    assert leftovers == []


def test_pool_survives_publish_crash(dec_params_toy, rng):
    """A crash in the publication window must cost only the shortcut:
    the pool comes up with ``table_ref=None`` and workers warm locally."""
    keypair = cl_keygen(dec_params_toy.backend, rng)
    tablestore.set_crash_hook(_crash_hook)
    try:
        backend = PooledBackend(dec_params_toy, keypair.public, processes=2)
    except CrashPoint:
        pytest.fail("publish crash escaped the PooledBackend constructor")
    except Exception:
        pytest.skip("process pool unavailable in this environment")
    finally:
        tablestore.set_crash_hook(None)
    try:
        assert backend.table_ref is None
        assert not backend.degraded
    finally:
        backend.close()


def test_replies_identical_with_and_without_crash(dec_params_toy, rng):
    """Local-build fallback is invisible in verdicts: the same seeded
    deposit chunks produce identical results whether the workers
    attached to shipped tables, built locally after a publish crash, or
    ran inline."""
    import dataclasses

    from repro.service.batcher import _batch_worker

    params = dec_params_toy
    bank_kp, tokens = _tokens(params, rng)
    bad = 2
    tokens[bad] = dataclasses.replace(
        tokens[bad], sig_b=params.backend.exp(tokens[bad].sig_b, 2)
    )
    grid = [
        ("deposit", params, bank_kp.public, tuple(tokens[:2]), b"", True, True),
        ("deposit", params, bank_kp.public, tuple(tokens[2:]), b"", True, True),
    ]

    from repro.service.workers import InlineBackend

    inline = InlineBackend().run(_batch_worker, grid, seed=99)

    tablestore.set_crash_hook(_crash_hook)
    try:
        backend = PooledBackend(params, bank_kp.public, processes=2)
    except CrashPoint:
        pytest.fail("publish crash escaped the PooledBackend constructor")
    except Exception:
        pytest.skip("process pool unavailable in this environment")
    finally:
        tablestore.set_crash_hook(None)
    try:
        assert backend.table_ref is None
        crashed = backend.run(_batch_worker, grid, seed=99)
    finally:
        backend.close()
    assert crashed == inline
    verdicts = [valid for valid, _serials in crashed[0] + crashed[1]]
    assert verdicts[bad] is False
    assert all(v for i, v in enumerate(verdicts) if i != bad)

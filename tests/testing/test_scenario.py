"""Scenario runners: determinism, exactly-once semantics, reporting."""

from __future__ import annotations

from repro.testing import FaultPlan
from repro.testing.scenario import run_deposit_scenario, run_pbs_scenario


class TestDepositScenario:
    def test_crash_free_baseline(self, deposit_kit):
        result = run_deposit_scenario(FaultPlan(seed=0), kit=deposit_kit)
        assert result.clean, result.report()
        fresh = [r for r in deposit_kit.requests if not r.double_spend]
        frauds = [r for r in deposit_kit.requests if r.double_spend]
        assert result.ok == len(fresh)
        assert result.rejected == len(frauds)
        assert result.errors == 0
        for request in frauds:
            assert result.verdicts[request.rid] == "REJECTED"

    def test_deterministic_in_the_seed(self, deposit_kit):
        a = run_deposit_scenario(4242, kit=deposit_kit)
        b = run_deposit_scenario(4242, kit=deposit_kit)
        assert (a.verdicts, a.crashes, a.dropped, a.findings) == (
            b.verdicts, b.crashes, b.dropped, b.findings
        )

    def test_heavy_duplication_stays_exactly_once(self, deposit_kit):
        """Every request delivered twice; the books credit each token once."""
        plan = FaultPlan(seed=11, duplicate=1.0)
        result = run_deposit_scenario(plan, kit=deposit_kit)
        assert result.clean, result.report()
        assert result.duplicates == len(deposit_kit.requests)
        fresh = [r for r in deposit_kit.requests if not r.double_spend]
        assert result.ok == len(fresh)

    def test_drops_leave_requests_unanswered_and_books_clean(self, deposit_kit):
        plan = FaultPlan(seed=12, drop=0.5)
        result = run_deposit_scenario(plan, kit=deposit_kit)
        assert result.clean, result.report()
        dropped_rids = {deposit_kit.requests[i].rid for i in result.dropped}
        assert dropped_rids.isdisjoint(result.verdicts)
        assert len(result.verdicts) == len(deposit_kit.requests) - len(result.dropped)

    def test_reordering_cannot_break_invariants(self, deposit_kit):
        plan = FaultPlan(seed=13, reorder=1.0, max_slip=5)
        result = run_deposit_scenario(plan, kit=deposit_kit)
        assert result.clean, result.report()

    def test_report_is_a_repro_recipe(self, deposit_kit):
        plan = FaultPlan(seed=555, crash_points=(3,))
        result = run_deposit_scenario(plan, kit=deposit_kit)
        text = result.report()
        assert "555" in text
        assert "crash_points" in text and "[3]" in text
        assert "run_deposit_scenario(555)" in text


class TestPbsScenario:
    def test_crash_free_baseline(self, pbs_kit):
        result = run_pbs_scenario(FaultPlan(seed=0), kit=pbs_kit)
        assert result.clean, result.report()
        fresh = [r for r in pbs_kit.requests if not r.double_spend]
        frauds = [r for r in pbs_kit.requests if r.double_spend]
        assert result.ok == len(fresh)
        assert result.rejected == len(frauds)

    def test_crashes_between_every_deposit(self, pbs_kit):
        plan = FaultPlan(seed=21, crash_points=(1, 3, 5, 7))
        baseline = run_pbs_scenario(FaultPlan(seed=21), kit=pbs_kit)
        result = run_pbs_scenario(plan, kit=pbs_kit, checkpoint_every=2)
        assert result.clean, result.report()
        assert result.crashes >= 1
        assert result.recoveries == result.crashes
        assert result.verdicts == baseline.verdicts

    def test_duplicates_cannot_double_pay(self, pbs_kit):
        plan = FaultPlan(seed=22, duplicate=1.0)
        result = run_pbs_scenario(plan, kit=pbs_kit)
        assert result.clean, result.report()
        fresh = [r for r in pbs_kit.requests if not r.double_spend]
        assert result.ok == len(fresh)

"""The in-repo property runner: seeding, determinism, failure reports."""

from __future__ import annotations

import random

import pytest

from repro.testing.properties import (
    DEFAULT_SEED,
    PropertyError,
    env_seed,
    property_test,
)


class TestEnvSeed:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_SEED", raising=False)
        assert env_seed() == DEFAULT_SEED

    def test_decimal_and_hex_literals(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SEED", "57005")
        assert env_seed() == 57005
        monkeypatch.setenv("REPRO_TEST_SEED", "0xDEAD")
        assert env_seed() == 0xDEAD

    def test_blank_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SEED", "  ")
        assert env_seed() == DEFAULT_SEED

    def test_garbage_rejected_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SEED", "banana")
        with pytest.raises(ValueError, match="REPRO_TEST_SEED"):
            env_seed()


class TestPropertyTest:
    def test_runs_every_case(self):
        seen = []

        @property_test(cases=17, seed=1)
        def prop(rng):
            seen.append(rng.random())

        prop()
        assert len(seen) == 17
        assert len(set(seen)) == 17  # each case gets its own stream

    def test_cases_are_deterministic_in_the_seed(self):
        def collect(seed):
            values = []

            @property_test(cases=5, seed=seed, name="stable")
            def prop(rng):
                values.append(rng.randrange(10**9))

            prop()
            return values

        assert collect(7) == collect(7)
        assert collect(7) != collect(8)

    def test_env_seed_drives_the_cases(self, monkeypatch):
        def collect():
            values = []

            @property_test(cases=3, name="env-driven")
            def prop(rng):
                values.append(rng.random())

            prop()
            return values

        monkeypatch.setenv("REPRO_TEST_SEED", "111")
        first = collect()
        monkeypatch.setenv("REPRO_TEST_SEED", "222")
        second = collect()
        monkeypatch.setenv("REPRO_TEST_SEED", "111")
        assert collect() == first
        assert first != second

    def test_failure_report_names_seed_and_case(self):
        @property_test(cases=50, seed=0xBEEF, name="sometimes-false")
        def prop(rng):
            assert rng.random() < 0.9, "tail event"

        with pytest.raises(PropertyError) as excinfo:
            prop()
        message = str(excinfo.value)
        assert "sometimes-false" in message
        assert "0xbeef" in message
        assert "REPRO_TEST_SEED=0xbeef" in message
        assert "tail event" in message
        assert excinfo.value.case >= 0

    def test_decorated_function_takes_no_pytest_fixtures(self):
        """pytest must see a zero-argument test, not an ``rng`` fixture."""
        import inspect

        @property_test(cases=1, seed=0)
        def prop(rng):
            pass

        assert inspect.signature(prop).parameters == {}

    def test_rejects_zero_cases(self):
        with pytest.raises(ValueError):
            property_test(cases=0)

    def test_non_assertion_errors_propagate_unwrapped(self):
        """Only assertion failures become PropertyError; bugs stay loud."""

        @property_test(cases=1, seed=0)
        def prop(rng):
            raise RuntimeError("broken generator")

        with pytest.raises(RuntimeError, match="broken generator"):
            prop()


def test_runner_works_under_collection():
    """A decorated property used exactly as in the crypto suites."""

    @property_test(cases=8, seed=3)
    def check(rng):
        a = rng.randrange(1, 1000)
        assert a * 2 == a + a

    check()


def test_random_module_usable_inside_properties():
    @property_test(cases=2, seed=4)
    def check(rng):
        assert isinstance(rng, random.Random)

    check()

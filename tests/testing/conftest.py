"""Fixtures for the fault-injection harness tests.

The token kits are expensive (blind issuance, spend proofs, RSA
keygen) and pure — they bind to a keypair, not a bank — so they are
minted once per session and shared across every scenario.
"""

from __future__ import annotations

import random

import pytest

from repro.testing import build_deposit_kit, build_pbs_kit


@pytest.fixture(scope="session")
def deposit_kit():
    return build_deposit_kit(random.Random("testing-kit:dec"))


@pytest.fixture(scope="session")
def pbs_kit():
    return build_pbs_kit(random.Random("testing-kit:pbs"))

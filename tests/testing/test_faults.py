"""The fault plan must be a pure function of its seed."""

from __future__ import annotations

import pytest

from repro.net.transport import Transport
from repro.testing import CrashPoint, FaultClock, FaultPlan, FaultyTransport


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        assert FaultPlan.from_seed(1234) == FaultPlan.from_seed(1234)

    def test_different_seeds_differ(self):
        plans = {FaultPlan.from_seed(s) for s in range(20)}
        assert len(plans) == 20

    def test_rates_bounded_by_intensity(self):
        for seed in range(50):
            plan = FaultPlan.from_seed(seed, intensity=0.2)
            assert 0.0 <= plan.drop <= 0.2
            assert 0.0 <= plan.duplicate <= 0.2
            assert 0.0 <= plan.reorder <= 0.2
            assert len(plan.crash_points) <= 3
            assert all(p >= 2 for p in plan.crash_points)

    def test_perturb_deterministic(self):
        plan = FaultPlan.from_seed(99)
        assert plan.perturb(40) == plan.perturb(40)

    def test_perturb_partitions_requests(self):
        """Every request is either dropped or delivered at least once."""
        plan = FaultPlan(seed=5, drop=0.3, duplicate=0.3, reorder=0.3)
        schedule, dropped = plan.perturb(60)
        delivered = {d.original for d in schedule}
        assert delivered & set(dropped) == set()
        assert delivered | set(dropped) == set(range(60))

    def test_duplicates_share_the_original_index(self):
        plan = FaultPlan(seed=6, duplicate=1.0)
        schedule, dropped = plan.perturb(10)
        assert not dropped
        assert len(schedule) == 20
        for i in range(10):
            copies = [d for d in schedule if d.original == i]
            assert len(copies) == 2
            assert sorted(d.duplicate for d in copies) == [False, True]

    def test_zero_rates_are_the_identity(self):
        plan = FaultPlan(seed=7)
        schedule, dropped = plan.perturb(15)
        assert not dropped
        assert [d.original for d in schedule] == list(range(15))
        assert not any(d.duplicate for d in schedule)

    def test_describe_carries_the_whole_schedule(self):
        plan = FaultPlan.from_seed(42)
        desc = plan.describe()
        assert desc["seed"] == 42
        assert desc["crash_points"] == list(plan.crash_points)
        assert set(desc) >= {"drop", "duplicate", "reorder", "max_slip"}


class TestFaultClock:
    def test_fires_exactly_at_scripted_ticks(self):
        clock = FaultClock((2, 4))
        fired = [clock.tick() for _ in range(6)]
        assert fired == [False, False, True, False, True, False]
        assert clock.fired == [2, 4]

    def test_each_point_fires_once(self):
        clock = FaultClock((1,))
        assert [clock.tick() for _ in range(4)] == [False, True, False, False]

    def test_stale_points_are_skipped_not_fired_late(self):
        clock = FaultClock((0, 3))
        clock.ticks = 2  # simulate envelopes lost to an earlier crash
        assert [clock.tick() for _ in range(3)] == [False, True, False]
        assert clock.fired == [3]


class TestFaultyTransport:
    def test_crashes_before_delivery(self):
        transport = FaultyTransport(FaultClock((1,)))
        transport.send("a", "b", "msg", {"x": 1})
        before = len(transport.log)
        with pytest.raises(CrashPoint) as excinfo:
            transport.send("a", "b", "msg", {"x": 2})
        assert excinfo.value.envelope_seq == 1
        # the in-flight envelope died with the process
        assert len(transport.log) == before

    def test_clock_spans_incarnations(self):
        """Crash points keep firing after the transport is replaced."""
        clock = FaultClock((0, 2))
        first = FaultyTransport(clock)
        with pytest.raises(CrashPoint):
            first.send("a", "b", "m", 1)
        second = FaultyTransport(clock)  # the recovered incarnation
        second.send("a", "b", "m", 1)  # tick 1
        with pytest.raises(CrashPoint):
            second.send("a", "b", "m", 2)  # tick 2

    def test_delivers_like_a_plain_transport(self):
        faulty = FaultyTransport()
        plain = Transport()
        payload = {"k": [1, 2, 3]}
        assert faulty.send("a", "b", "m", payload) == plain.send("a", "b", "m", payload)

"""Tests for the supersingular curve group law and parameter generation."""

from __future__ import annotations

import random

import pytest

from repro.crypto.pairing.curve import CurveParams, Point, generate_curve
from repro.crypto.pairing.field import Fp2


@pytest.fixture(scope="module")
def curve():
    return generate_curve(24, random.Random(123))


class TestParams:
    def test_shape(self, curve):
        assert curve.p % 4 == 3
        assert curve.r * curve.cofactor == curve.p + 1

    def test_generator_on_curve_with_exact_order(self, curve):
        g = curve.generator
        assert g.on_curve() and not g.is_infinity
        assert g.multiply(curve.r).is_infinity
        assert not g.multiply(1).is_infinity

    def test_params_validation(self, curve):
        with pytest.raises(ValueError):
            CurveParams(p=curve.p, r=curve.r, cofactor=curve.cofactor + 1,
                        generator=curve.generator)


class TestGroupLaw:
    def test_identity_laws(self, curve):
        g = curve.generator
        inf = Point.infinity(curve.p)
        assert g + inf == g
        assert inf + g == g
        assert (g + (-g)).is_infinity

    def test_commutative(self, curve):
        g = curve.generator
        h = g.multiply(7)
        assert g + h == h + g

    def test_associative(self, curve):
        g = curve.generator
        a, b, c = g.multiply(3), g.multiply(5), g.multiply(11)
        assert (a + b) + c == a + (b + c)

    def test_doubling_consistent_with_addition_chain(self, curve):
        g = curve.generator
        assert g + g == g.multiply(2)
        assert g + g + g == g.multiply(3)

    def test_scalar_mult_distributes(self, curve):
        g = curve.generator
        assert g.multiply(13).multiply(7) == g.multiply(91)
        assert g.multiply(5) + g.multiply(9) == g.multiply(14)

    def test_negative_scalar(self, curve):
        g = curve.generator
        assert g.multiply(-4) == -(g.multiply(4))

    def test_subtraction(self, curve):
        g = curve.generator
        assert g.multiply(9) - g.multiply(4) == g.multiply(5)

    def test_order_annihilates(self, curve):
        g = curve.generator
        for k in (1, 2, curve.r - 1):
            assert g.multiply(k).multiply(curve.r).is_infinity

    def test_curve_mismatch_rejected(self, curve):
        other = generate_curve(20, random.Random(5))
        with pytest.raises(ValueError):
            curve.generator + other.generator


class TestValidation:
    def test_from_base_rejects_off_curve(self, curve):
        with pytest.raises(ValueError):
            Point.from_base(1, 1, curve.p)

    def test_on_curve_for_multiples(self, curve):
        g = curve.generator
        for k in (2, 3, 17, 1000):
            assert g.multiply(k).on_curve()

    def test_encode_hashable_and_distinct(self, curve):
        g = curve.generator
        assert g.encode() != g.multiply(2).encode()
        assert len({g.encode(), g.multiply(2).encode(), g.encode()}) == 2


class TestDistortionMap:
    def test_image_on_curve(self, curve):
        psi = curve.generator.distort()
        assert psi.on_curve()

    def test_image_leaves_base_field(self, curve):
        g = curve.generator
        assert g.is_base_field()
        assert not g.distort().is_base_field()

    def test_distortion_is_homomorphism(self, curve):
        g = curve.generator
        assert (g + g).distort() == g.distort() + g.distort()

    def test_distorted_point_has_order_r(self, curve):
        assert curve.generator.distort().multiply(curve.r).is_infinity

    def test_infinity_fixed(self, curve):
        inf = Point.infinity(curve.p)
        assert inf.distort() is inf


class TestGeneration:
    def test_distinct_seeds_distinct_curves(self):
        c1 = generate_curve(20, random.Random(1))
        c2 = generate_curve(20, random.Random(2))
        assert (c1.p, c1.r) != (c2.p, c2.r)

    def test_requested_subgroup_bits(self):
        c = generate_curve(20, random.Random(3))
        assert c.r.bit_length() == 20

    def test_rejects_tiny_subgroup(self):
        with pytest.raises(ValueError):
            generate_curve(2, random.Random(4))

"""Property tests for F_{p^2} arithmetic (field axioms, Frobenius)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.pairing.field import Fp2

P = 10007  # prime ≡ 3 (mod 4)

elements = st.builds(
    Fp2,
    a=st.integers(min_value=0, max_value=P - 1),
    b=st.integers(min_value=0, max_value=P - 1),
    p=st.just(P),
)
nonzero = elements.filter(lambda x: not x.is_zero())


class TestConstruction:
    def test_reduction_mod_p(self):
        x = Fp2(P + 3, -1, P)
        assert x.a == 3 and x.b == P - 1

    def test_one_zero(self):
        assert Fp2.one(P).is_one()
        assert Fp2.zero(P).is_zero()
        assert Fp2.from_base(5, P) == Fp2(5, 0, P)

    def test_field_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Fp2(1, 2, P) + Fp2(1, 2, 10009)


class TestFieldAxioms:
    @given(elements, elements, elements)
    @settings(max_examples=50)
    def test_add_associative_commutative(self, x, y, z):
        assert (x + y) + z == x + (y + z)
        assert x + y == y + x

    @given(elements, elements, elements)
    @settings(max_examples=50)
    def test_mul_associative_commutative(self, x, y, z):
        assert (x * y) * z == x * (y * z)
        assert x * y == y * x

    @given(elements, elements, elements)
    @settings(max_examples=50)
    def test_distributive(self, x, y, z):
        assert x * (y + z) == x * y + x * z

    @given(elements)
    @settings(max_examples=50)
    def test_identities(self, x):
        assert x + Fp2.zero(P) == x
        assert x * Fp2.one(P) == x
        assert x + (-x) == Fp2.zero(P)

    @given(nonzero)
    @settings(max_examples=50)
    def test_inverse(self, x):
        assert x * x.inverse() == Fp2.one(P)

    def test_zero_inverse_raises(self):
        with pytest.raises(ZeroDivisionError):
            Fp2.zero(P).inverse()

    def test_i_squared_is_minus_one(self):
        i = Fp2(0, 1, P)
        assert i * i == Fp2(-1, 0, P)


class TestPowAndFrobenius:
    @given(nonzero)
    @settings(max_examples=30)
    def test_pow_matches_repeated_mul(self, x):
        acc = Fp2.one(P)
        for _ in range(7):
            acc = acc * x
        assert x.pow(7) == acc

    @given(nonzero)
    @settings(max_examples=30)
    def test_negative_exponent(self, x):
        assert x.pow(-3) == x.pow(3).inverse()

    @given(nonzero)
    @settings(max_examples=30)
    def test_frobenius_is_conjugation(self, x):
        """x^p == conj(x) in F_p[i] — what the final exponentiation uses."""
        assert x.pow(P) == x.conjugate()

    @given(nonzero)
    @settings(max_examples=30)
    def test_fermat(self, x):
        """x^(p^2 - 1) == 1 for nonzero x."""
        assert x.pow(P * P - 1).is_one()

    @given(elements)
    @settings(max_examples=30)
    def test_norm_multiplicative(self, x):
        y = Fp2(17, 23, P)
        assert (x * y).norm() == (x.norm() * y.norm()) % P

    @given(elements, st.integers(min_value=0, max_value=P - 1))
    @settings(max_examples=30)
    def test_scalar_mul(self, x, k):
        assert x.scalar_mul(k) == x * Fp2.from_base(k, P)

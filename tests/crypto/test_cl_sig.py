"""Tests for Camenisch–Lysyanskaya signatures over both backends."""

from __future__ import annotations

import dataclasses

import pytest

from repro.crypto.cl_sig import (
    cl_blind_issue,
    cl_blind_request,
    cl_blind_unwrap,
    cl_keygen,
    cl_sign,
    cl_verify,
)


@pytest.fixture(params=["toy", "tate"])
def backend(request, toy_backend, tate_backend):
    return toy_backend if request.param == "toy" else tate_backend


@pytest.fixture()
def keypair(backend, rng):
    return cl_keygen(backend, rng)


class TestPlainScheme:
    def test_sign_verify(self, backend, keypair, rng):
        sig = cl_sign(backend, keypair, 42, rng)
        assert cl_verify(backend, keypair.public, 42, sig)

    def test_wrong_message(self, backend, keypair, rng):
        sig = cl_sign(backend, keypair, 42, rng)
        assert not cl_verify(backend, keypair.public, 43, sig)

    def test_wrong_key(self, backend, keypair, rng):
        other = cl_keygen(backend, rng)
        sig = cl_sign(backend, keypair, 42, rng)
        assert not cl_verify(backend, other.public, 42, sig)

    def test_message_reduced_mod_order(self, backend, keypair, rng):
        sig = cl_sign(backend, keypair, 5, rng)
        assert cl_verify(backend, keypair.public, 5 + backend.order, sig)

    def test_signatures_randomized(self, backend, keypair, rng):
        s1 = cl_sign(backend, keypair, 9, rng)
        s2 = cl_sign(backend, keypair, 9, rng)
        assert backend.element_encode(s1.a) != backend.element_encode(s2.a)

    def test_rerandomization_preserves_validity(self, backend, keypair, rng):
        """(a^ρ, b^ρ, c^ρ) verifies for the same message — the property
        the unlinkable spend tokens rely on."""
        sig = cl_sign(backend, keypair, 12, rng)
        rho = backend.random_scalar(rng)
        rerand = dataclasses.replace(
            sig,
            a=backend.exp(sig.a, rho),
            b=backend.exp(sig.b, rho),
            c=backend.exp(sig.c, rho),
        )
        assert cl_verify(backend, keypair.public, 12, rerand)

    def test_tampered_component_fails(self, backend, keypair, rng):
        sig = cl_sign(backend, keypair, 7, rng)
        tampered = dataclasses.replace(sig, b=backend.exp(sig.b, 2))
        assert not cl_verify(backend, keypair.public, 7, tampered)


class TestBlindIssuance:
    def test_full_flow(self, backend, keypair, rng):
        request, m = cl_blind_request(backend, 1234, rng)
        sig = cl_blind_issue(backend, keypair, request, rng)
        unwrapped = cl_blind_unwrap(backend, keypair.public, 1234, sig)
        assert cl_verify(backend, keypair.public, 1234, unwrapped)

    def test_issuer_never_sees_message(self, backend, keypair, rng):
        """The request carries only the commitment g^m, not m."""
        request, _ = cl_blind_request(backend, 777, rng)
        assert backend.element_encode(request.commitment) == backend.element_encode(
            backend.exp(backend.g, 777 % backend.order)
        )
        # the request has no attribute carrying the raw message
        assert not hasattr(request, "message")

    def test_issue_rejects_bad_proof(self, backend, keypair, rng):
        request, _ = cl_blind_request(backend, 5, rng)
        forged = dataclasses.replace(request, commitment=backend.exp(backend.g, 6))
        with pytest.raises(ValueError):
            cl_blind_issue(backend, keypair, forged, rng)

    def test_unwrap_rejects_wrong_message(self, backend, keypair, rng):
        request, _ = cl_blind_request(backend, 10, rng)
        sig = cl_blind_issue(backend, keypair, request, rng)
        with pytest.raises(ValueError):
            cl_blind_unwrap(backend, keypair.public, 11, sig)

    def test_unwrap_rejects_cheating_issuer(self, backend, keypair, rng):
        request, _ = cl_blind_request(backend, 10, rng)
        sig = cl_blind_issue(backend, keypair, request, rng)
        bad = dataclasses.replace(sig, c=backend.exp(sig.c, 3))
        with pytest.raises(ValueError):
            cl_blind_unwrap(backend, keypair.public, 10, bad)

    def test_two_requests_unlinkable(self, backend, rng):
        """Commitments to different secrets reveal no relation (smoke)."""
        r1, _ = cl_blind_request(backend, rng.randrange(1, backend.order), rng)
        r2, _ = cl_blind_request(backend, rng.randrange(1, backend.order), rng)
        assert backend.element_encode(r1.commitment) != backend.element_encode(r2.commitment)


class TestKeygen:
    def test_public_matches_secret(self, backend, keypair):
        assert backend.element_encode(keypair.public.X) == backend.element_encode(
            backend.exp(backend.g, keypair.x)
        )
        assert backend.element_encode(keypair.public.Y) == backend.element_encode(
            backend.exp(backend.g, keypair.y)
        )

    def test_distinct_keys(self, backend, rng):
        k1, k2 = cl_keygen(backend, rng), cl_keygen(backend, rng)
        assert (k1.x, k1.y) != (k2.x, k2.y)

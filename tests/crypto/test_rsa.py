"""Tests for the from-scratch RSA: keygen, hybrid encryption, signatures."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import rsa


class TestKeygen:
    def test_modulus_size(self, rsa_key):
        assert rsa_key.n.bit_length() == 512

    def test_key_identity(self, rsa_key, rng):
        m = rng.randrange(2, rsa_key.n)
        assert rsa_key.raw_decrypt(rsa_key.public.raw_encrypt(m)) == m

    def test_crt_consistency(self, rsa_key):
        assert rsa_key.p * rsa_key.q == rsa_key.n
        phi = (rsa_key.p - 1) * (rsa_key.q - 1)
        assert (rsa_key.d * rsa_key.e) % phi == 1

    def test_distinct_keys(self, rsa_key, rsa_key_other):
        assert rsa_key.n != rsa_key_other.n

    def test_rejects_tiny_modulus(self, rng):
        with pytest.raises(ValueError):
            rsa.generate_keypair(8, rng)

    def test_fingerprint_stable_and_distinct(self, rsa_key, rsa_key_other):
        assert rsa_key.public.fingerprint() == rsa_key.public.fingerprint()
        assert rsa_key.public.fingerprint() != rsa_key_other.public.fingerprint()
        assert len(rsa_key.public.fingerprint()) == 16


class TestRawOps:
    def test_range_validation(self, rsa_key):
        with pytest.raises(ValueError):
            rsa_key.public.raw_encrypt(rsa_key.n)
        with pytest.raises(ValueError):
            rsa_key.raw_decrypt(-1)

    def test_sign_is_decrypt(self, rsa_key):
        m = 123456789
        assert rsa_key.raw_sign(m) == rsa_key.raw_decrypt(m)


class TestHybridEncryption:
    @given(st.binary(min_size=0, max_size=5000))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, plaintext):
        rng = random.Random(42)
        key = _shared_key()
        ct = rsa.encrypt(key.public, plaintext, rng)
        assert rsa.decrypt(key, ct) == plaintext

    def test_ciphertext_structure(self, rsa_key, rng):
        pt = b"hello world"
        ct = rsa.encrypt(rsa_key.public, pt, rng)
        assert len(ct) == rsa_key.public.modulus_bytes + len(pt) + 32

    def test_randomized(self, rsa_key, rng):
        pt = b"same message"
        assert rsa.encrypt(rsa_key.public, pt, rng) != rsa.encrypt(rsa_key.public, pt, rng)

    def test_tamper_detection(self, rsa_key, rng):
        ct = bytearray(rsa.encrypt(rsa_key.public, b"payload-bytes", rng))
        ct[70] ^= 0x01  # flip a bit in the masked payload
        with pytest.raises(ValueError):
            rsa.decrypt(rsa_key, bytes(ct))

    def test_wrong_key_fails(self, rsa_key, rsa_key_other, rng):
        ct = rsa.encrypt(rsa_key.public, b"secret", rng)
        with pytest.raises(ValueError):
            rsa.decrypt(rsa_key_other, ct)

    def test_truncated_ciphertext(self, rsa_key, rng):
        ct = rsa.encrypt(rsa_key.public, b"x", rng)
        with pytest.raises(ValueError):
            rsa.decrypt(rsa_key, ct[:10])

    def test_rejects_tiny_modulus_for_hybrid(self, rng):
        small = rsa.generate_keypair(128, rng)
        with pytest.raises(ValueError):
            rsa.encrypt(small.public, b"x", rng)


class TestKeystream:
    def test_deterministic_and_length(self):
        assert rsa.keystream(b"seed", 100) == rsa.keystream(b"seed", 100)
        assert len(rsa.keystream(b"seed", 777)) == 777

    def test_xor_mask_involution(self):
        data = b"the quick brown fox"
        assert rsa.xor_mask(rsa.xor_mask(data, b"k"), b"k") == data


class TestSignatures:
    def test_sign_verify(self, rsa_key):
        sig = rsa.sign(rsa_key, b"message")
        assert rsa.verify(rsa_key.public, b"message", sig)

    def test_wrong_message(self, rsa_key):
        sig = rsa.sign(rsa_key, b"message")
        assert not rsa.verify(rsa_key.public, b"other", sig)

    def test_wrong_key(self, rsa_key, rsa_key_other):
        sig = rsa.sign(rsa_key, b"message")
        assert not rsa.verify(rsa_key_other.public, b"message", sig)

    def test_out_of_range_signature(self, rsa_key):
        assert not rsa.verify(rsa_key.public, b"m", rsa_key.n + 5)
        assert not rsa.verify(rsa_key.public, b"m", -1)

    @given(st.binary(max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_any_message(self, message):
        key = _shared_key()
        assert rsa.verify(key.public, message, rsa.sign(key, message))


_KEY_CACHE: list[rsa.RSAPrivateKey] = []


def _shared_key() -> rsa.RSAPrivateKey:
    """One 512-bit key shared across hypothesis examples (keygen is slow)."""
    if not _KEY_CACHE:
        _KEY_CACHE.append(rsa.generate_keypair(512, random.Random(777)))
    return _KEY_CACHE[0]

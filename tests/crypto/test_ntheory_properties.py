"""Property tests for the number-theoretic substrate.

Runs on the in-repo :mod:`repro.testing.properties` runner — seeded
from ``REPRO_TEST_SEED``, no third-party dependency — so the algebraic
laws every upper layer leans on (inverses, CRT, square roots,
primality) are checked over hundreds of random cases on any machine.
"""

from __future__ import annotations

import math

from repro.crypto.ntheory import (
    SMALL_PRIMES,
    crt,
    is_probable_prime,
    is_quadratic_residue,
    jacobi,
    miller_rabin,
    modinv,
    next_prime,
    primes_up_to,
    random_prime,
    sqrt_mod_prime,
)
from repro.testing.properties import property_test


def _random_odd(rng, lo=3, hi=1 << 20):
    return rng.randrange(lo, hi) | 1


@property_test(cases=128)
def test_modinv_times_a_is_one(rng):
    m = rng.randrange(2, 1 << 48)
    a = rng.randrange(1, m)
    while math.gcd(a, m) != 1:
        a = rng.randrange(1, m)
    inv = modinv(a, m)
    assert 0 <= inv < m
    assert (a * inv) % m == 1


@property_test(cases=64)
def test_modinv_rejects_noninvertible(rng):
    g = rng.randrange(2, 1 << 8)
    m = g * rng.randrange(2, 1 << 24)
    a = g * rng.randrange(1, m // g)  # gcd(a, m) >= g > 1
    try:
        modinv(a, m)
    except ValueError:
        return
    raise AssertionError(f"modinv({a}, {m}) succeeded despite gcd >= {g}")


@property_test(cases=96)
def test_crt_reconstruction(rng):
    """x mod m_i == r_i for pairwise-coprime moduli, and x is canonical."""
    moduli = []
    product = 1
    pool = primes_up_to(4000)[5:]
    while len(moduli) < rng.randrange(2, 6):
        p = pool[rng.randrange(len(pool))]
        if p not in moduli:
            e = rng.randrange(1, 3)
            moduli.append(p**e)
            product *= p**e
    residues = [rng.randrange(m) for m in moduli]
    x = crt(residues, moduli)
    assert 0 <= x < product
    for r, m in zip(residues, moduli):
        assert x % m == r


@property_test(cases=96)
def test_crt_roundtrip_from_a_known_value(rng):
    """Splitting a value into residues and recombining returns it."""
    m1 = next_prime(rng.randrange(1 << 16, 1 << 20))
    m2 = next_prime(m1)
    value = rng.randrange(m1 * m2)
    assert crt([value % m1, value % m2], [m1, m2]) == value


@property_test(cases=96)
def test_sqrt_mod_p_round_trip(rng):
    p = random_prime(rng.randrange(10, 40), rng)
    if p == 2:
        return
    x = rng.randrange(1, p)
    a = (x * x) % p
    root = sqrt_mod_prime(a, p)
    assert (root * root) % p == a
    assert root in (x, p - x)


@property_test(cases=64)
def test_sqrt_mod_p_rejects_nonresidues(rng):
    p = random_prime(rng.randrange(10, 32), rng)
    if p <= 3:
        return
    # half the nonzero elements are non-residues; find one by scanning
    # from a random start (deterministic in the case RNG)
    start = rng.randrange(1, p)
    for offset in range(p - 1):
        candidate = 1 + (start + offset - 1) % (p - 1)
        if not is_quadratic_residue(candidate, p):
            try:
                sqrt_mod_prime(candidate, p)
            except ValueError:
                return
            raise AssertionError(f"non-residue {candidate} got a root mod {p}")
    raise AssertionError(f"no non-residue found mod {p}")


@property_test(cases=48)
def test_jacobi_matches_euler_for_primes(rng):
    p = random_prime(rng.randrange(8, 24), rng)
    if p == 2:
        return
    a = rng.randrange(1, p)
    euler = pow(a, (p - 1) // 2, p)
    expected = 1 if euler == 1 else -1
    assert jacobi(a, p) == expected


@property_test(cases=32)
def test_miller_rabin_agrees_with_the_sieve(rng):
    """Below the sieve limit, Miller–Rabin must match trial division."""
    limit = 3000
    sieve = set(primes_up_to(limit))
    lo = rng.randrange(2, limit - 200)
    for n in range(lo, lo + 200):
        assert is_probable_prime(n) == (n in sieve), n


@property_test(cases=48)
def test_miller_rabin_kills_odd_composites(rng):
    a = _random_odd(rng, 3, 1 << 24)
    b = _random_odd(rng, 3, 1 << 24)
    n = a * b
    assert not miller_rabin(n, (2, 3, 5, 7, 11, 13, 17))


@property_test(cases=32)
def test_random_prime_is_prime_with_exact_bits(rng):
    bits = rng.randrange(8, 48)
    p = random_prime(bits, rng)
    assert p.bit_length() == bits
    assert is_probable_prime(p)
    # cross-check against an independent witness set
    assert miller_rabin(p, [rng.randrange(2, p - 1) for _ in range(8)])


@property_test(cases=24)
def test_small_primes_table_is_exactly_the_sieve(rng):
    limit = rng.randrange(10, 1999)
    assert primes_up_to(limit) == [p for p in SMALL_PRIMES if p <= limit]

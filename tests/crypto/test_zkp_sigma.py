"""Tests for Schnorr, representation and OR proofs (sigma protocols)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.crypto.hashing import Transcript
from repro.crypto.zkp import (
    prove_dlog,
    prove_dlog_generic,
    prove_or,
    prove_representation,
    verify_dlog,
    verify_dlog_generic,
    verify_or,
    verify_representation,
)


def t(domain=b"test"):
    return Transcript(domain)


class TestSchnorr:
    def test_accepts_valid(self, schnorr_group, rng):
        g = schnorr_group
        x = g.random_exponent(rng)
        proof = prove_dlog(g, g.g, g.power(x), x, rng, t())
        assert verify_dlog(g, g.g, g.power(x), proof, t())

    def test_rejects_wrong_statement(self, schnorr_group, rng):
        g = schnorr_group
        x = g.random_exponent(rng)
        proof = prove_dlog(g, g.g, g.power(x), x, rng, t())
        assert not verify_dlog(g, g.g, g.power(x + 1), proof, t())

    def test_rejects_wrong_transcript_domain(self, schnorr_group, rng):
        g = schnorr_group
        x = g.random_exponent(rng)
        proof = prove_dlog(g, g.g, g.power(x), x, rng, t(b"a"))
        assert not verify_dlog(g, g.g, g.power(x), proof, t(b"b"))

    def test_rejects_tampered_response(self, schnorr_group, rng):
        g = schnorr_group
        x = g.random_exponent(rng)
        proof = prove_dlog(g, g.g, g.power(x), x, rng, t())
        bad = dataclasses.replace(proof, response=(proof.response + 1) % g.q)
        assert not verify_dlog(g, g.g, g.power(x), bad, t())

    def test_rejects_commitment_outside_group(self, schnorr_group, rng):
        g = schnorr_group
        x = g.random_exponent(rng)
        proof = prove_dlog(g, g.g, g.power(x), x, rng, t())
        bad = dataclasses.replace(proof, commitment=0)
        assert not verify_dlog(g, g.g, g.power(x), bad, t())

    def test_prover_checks_witness(self, schnorr_group, rng):
        g = schnorr_group
        with pytest.raises(ValueError):
            prove_dlog(g, g.g, g.power(3), 4, rng, t())

    def test_alternate_base(self, schnorr_group, rng):
        g = schnorr_group
        h = g.derive_generator(b"alt")
        x = g.random_exponent(rng)
        proof = prove_dlog(g, h, g.exp(h, x), x, rng, t())
        assert verify_dlog(g, h, g.exp(h, x), proof, t())

    def test_zero_knowledge_smoke(self, schnorr_group, rng):
        """Two proofs of the same statement must differ (fresh nonces)."""
        g = schnorr_group
        x = g.random_exponent(rng)
        p1 = prove_dlog(g, g.g, g.power(x), x, rng, t())
        p2 = prove_dlog(g, g.g, g.power(x), x, rng, t())
        assert p1.commitment != p2.commitment


class TestSchnorrGeneric:
    @pytest.fixture(params=["toy", "tate"])
    def backend(self, request, toy_backend, tate_backend):
        return toy_backend if request.param == "toy" else tate_backend

    def test_accepts_valid(self, backend, rng):
        x = backend.random_scalar(rng)
        y = backend.exp(backend.g, x)
        proof = prove_dlog_generic(backend, backend.g, y, x, rng, t())
        assert verify_dlog_generic(backend, backend.g, y, proof, t())

    def test_rejects_wrong_statement(self, backend, rng):
        x = backend.random_scalar(rng)
        y = backend.exp(backend.g, x)
        proof = prove_dlog_generic(backend, backend.g, y, x, rng, t())
        y_bad = backend.exp(backend.g, x + 1)
        assert not verify_dlog_generic(backend, backend.g, y_bad, proof, t())


class TestRepresentation:
    def test_accepts_valid(self, schnorr_group, rng):
        g = schnorr_group
        h = g.derive_generator(b"h")
        x1, x2 = g.random_exponent(rng), g.random_exponent(rng)
        c = g.mul(g.power(x1), g.exp(h, x2))
        proof = prove_representation(g, [g.g, h], c, [x1, x2], rng, t())
        assert verify_representation(g, [g.g, h], c, proof, t())

    def test_three_bases(self, schnorr_group, rng):
        g = schnorr_group
        bases = [g.g, g.derive_generator(b"1"), g.derive_generator(b"2")]
        xs = [g.random_exponent(rng) for _ in bases]
        c = 1
        for b, x in zip(bases, xs):
            c = g.mul(c, g.exp(b, x))
        proof = prove_representation(g, bases, c, xs, rng, t())
        assert verify_representation(g, bases, c, proof, t())

    def test_single_base_degenerates_to_schnorr(self, schnorr_group, rng):
        g = schnorr_group
        x = g.random_exponent(rng)
        proof = prove_representation(g, [g.g], g.power(x), [x], rng, t())
        assert verify_representation(g, [g.g], g.power(x), proof, t())

    def test_rejects_wrong_statement(self, schnorr_group, rng):
        g = schnorr_group
        h = g.derive_generator(b"h")
        x1, x2 = 5, 9
        c = g.mul(g.power(x1), g.exp(h, x2))
        proof = prove_representation(g, [g.g, h], c, [x1, x2], rng, t())
        assert not verify_representation(g, [g.g, h], g.mul(c, g.g), proof, t())

    def test_rejects_response_count_mismatch(self, schnorr_group, rng):
        g = schnorr_group
        x = g.random_exponent(rng)
        proof = prove_representation(g, [g.g], g.power(x), [x], rng, t())
        h = g.derive_generator(b"h")
        assert not verify_representation(g, [g.g, h], g.power(x), proof, t())

    def test_prover_validates_inputs(self, schnorr_group, rng):
        g = schnorr_group
        with pytest.raises(ValueError):
            prove_representation(g, [g.g], g.power(3), [4], rng, t())
        with pytest.raises(ValueError):
            prove_representation(g, [], 1, [], rng, t())
        with pytest.raises(ValueError):
            prove_representation(g, [g.g], g.power(1), [1, 2], rng, t())


class TestOrProof:
    def test_accepts_every_known_branch(self, schnorr_group, rng):
        g = schnorr_group
        witnesses = [g.random_exponent(rng) for _ in range(4)]
        statements = [g.power(w) for w in witnesses]
        for idx in range(4):
            proof = prove_or(g, g.g, statements, idx, witnesses[idx], rng, t())
            assert verify_or(g, g.g, statements, proof, t())

    def test_witness_indistinguishable_shape(self, schnorr_group, rng):
        """The proof structure must not reveal the real branch."""
        g = schnorr_group
        witnesses = [g.random_exponent(rng) for _ in range(3)]
        statements = [g.power(w) for w in witnesses]
        p0 = prove_or(g, g.g, statements, 0, witnesses[0], rng, t())
        p2 = prove_or(g, g.g, statements, 2, witnesses[2], rng, t())
        assert len(p0.commitments) == len(p2.commitments)
        assert len(p0.challenges) == len(p2.challenges)

    def test_rejects_wrong_statements(self, schnorr_group, rng):
        g = schnorr_group
        w = g.random_exponent(rng)
        statements = [g.power(w), g.power(w + 1)]
        proof = prove_or(g, g.g, statements, 0, w, rng, t())
        tampered = [g.power(w + 5), statements[1]]
        assert not verify_or(g, g.g, tampered, proof, t())

    def test_rejects_challenge_sum_violation(self, schnorr_group, rng):
        g = schnorr_group
        w = g.random_exponent(rng)
        statements = [g.power(w), g.power(w + 1)]
        proof = prove_or(g, g.g, statements, 0, w, rng, t())
        bad = dataclasses.replace(
            proof, challenges=(proof.challenges[0], (proof.challenges[1] + 1) % g.q)
        )
        assert not verify_or(g, g.g, statements, bad, t())

    def test_rejects_branch_count_mismatch(self, schnorr_group, rng):
        g = schnorr_group
        w = g.random_exponent(rng)
        statements = [g.power(w), g.power(w + 1)]
        proof = prove_or(g, g.g, statements, 0, w, rng, t())
        assert not verify_or(g, g.g, statements + [g.power(3)], proof, t())

    def test_prover_validates(self, schnorr_group, rng):
        g = schnorr_group
        statements = [g.power(3), g.power(4)]
        with pytest.raises(IndexError):
            prove_or(g, g.g, statements, 5, 3, rng, t())
        with pytest.raises(ValueError):
            prove_or(g, g.g, statements, 0, 4, rng, t())

    def test_single_branch(self, schnorr_group, rng):
        g = schnorr_group
        w = g.random_exponent(rng)
        proof = prove_or(g, g.g, [g.power(w)], 0, w, rng, t())
        assert verify_or(g, g.g, [g.power(w)], proof, t())

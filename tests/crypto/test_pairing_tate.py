"""Tests for the Tate pairing: bilinearity, non-degeneracy, backends."""

from __future__ import annotations

import random

import pytest

from repro.crypto.pairing import (
    TatePairing,
    ToyPairing,
    default_backend,
    generate_curve,
    tate_pairing,
)
from repro.crypto.pairing.curve import Point
from repro.crypto.pairing.tate import miller_loop


@pytest.fixture(scope="module")
def bp():
    return TatePairing(generate_curve(28, random.Random(77)))


class TestTatePairing:
    def test_bilinearity_left(self, bp):
        g = bp.g
        a, b = 1234, 56789
        lhs = bp.pair(bp.exp(g, a), bp.exp(g, b))
        rhs = bp.gt_exp(bp.pair(g, bp.exp(g, b)), a)
        assert bp.gt_eq(lhs, rhs)

    def test_bilinearity_right(self, bp):
        g = bp.g
        a, b = 321, 654
        lhs = bp.pair(bp.exp(g, a), bp.exp(g, b))
        rhs = bp.gt_exp(bp.pair(bp.exp(g, a), g), b)
        assert bp.gt_eq(lhs, rhs)

    def test_bilinearity_product(self, bp):
        g = bp.g
        for a, b in [(2, 3), (17, 19), (100003 % bp.order, 7)]:
            lhs = bp.pair(bp.exp(g, a), bp.exp(g, b))
            rhs = bp.gt_exp(bp.gt_generator(), a * b)
            assert bp.gt_eq(lhs, rhs)

    def test_nondegenerate(self, bp):
        assert not bp.gt_generator().is_one()

    def test_symmetric_in_the_distorted_sense(self, bp):
        """ê(P, Q) == ê(Q, P) for the modified pairing."""
        g = bp.g
        P, Q = bp.exp(g, 12), bp.exp(g, 99)
        assert bp.gt_eq(bp.pair(P, Q), bp.pair(Q, P))

    def test_identity_inputs(self, bp):
        inf = bp.identity()
        assert bp.pair(inf, bp.g).is_one()
        assert bp.pair(bp.g, inf).is_one()

    def test_target_order(self, bp):
        assert bp.gt_generator().pow(bp.order).is_one()

    def test_additive_in_first_argument(self, bp):
        g = bp.g
        P1, P2, Q = bp.exp(g, 3), bp.exp(g, 8), bp.exp(g, 5)
        lhs = bp.pair(bp.mul(P1, P2), Q)
        rhs = bp.gt_mul(bp.pair(P1, Q), bp.pair(P2, Q))
        assert bp.gt_eq(lhs, rhs)

    def test_pairing_distinguishes_messages(self, bp):
        g = bp.g
        assert not bp.gt_eq(
            bp.pair(g, bp.exp(g, 2)),
            bp.pair(g, bp.exp(g, 3)),
        )

    def test_miller_loop_rejects_infinity(self, bp):
        with pytest.raises(ValueError):
            miller_loop(Point.infinity(bp.params.p), bp.g, bp.order)

    def test_gt_generator_cached(self, bp):
        assert bp.gt_generator() is bp.gt_generator()


class TestBackendInterface:
    def test_random_scalar_range(self, bp, rng):
        for _ in range(20):
            s = bp.random_scalar(rng)
            assert 1 <= s < bp.order

    def test_random_element_in_subgroup(self, bp, rng):
        el = bp.random_element(rng)
        assert el.multiply(bp.order).is_infinity

    def test_element_encode_stable(self, bp):
        assert bp.element_encode(bp.g) == bp.element_encode(bp.g)

    def test_default_backend_real(self, rng):
        backend = default_backend(rng, security_bits=20, real=True)
        assert isinstance(backend, TatePairing)

    def test_default_backend_toy(self, rng):
        backend = default_backend(rng, security_bits=20, real=False)
        assert isinstance(backend, ToyPairing)


class TestToyBackend:
    def test_bilinearity(self, toy_backend):
        t = toy_backend
        lhs = t.pair(t.exp(t.g, 6), t.exp(t.g, 7))
        rhs = t.gt_exp(t.pair(t.g, t.g), 42)
        assert t.gt_eq(lhs, rhs)

    def test_nondegenerate(self, toy_backend):
        assert toy_backend.pair(toy_backend.g, toy_backend.g) != toy_backend.gt_one()

    def test_differential_vs_tate(self, bp, toy_backend):
        """Both backends must satisfy the same algebraic identities."""
        for backend in (bp, toy_backend):
            g = backend.g
            a, b, c = 3, 5, 7
            lhs = backend.pair(backend.exp(g, a), backend.mul(backend.exp(g, b), backend.exp(g, c)))
            rhs = backend.gt_mul(
                backend.pair(backend.exp(g, a), backend.exp(g, b)),
                backend.pair(backend.exp(g, a), backend.exp(g, c)),
            )
            assert backend.gt_eq(lhs, rhs)

    def test_identity(self, toy_backend):
        t = toy_backend
        assert t.pair(t.identity(), t.g) == t.gt_one()


class TestStandaloneFunction:
    def test_tate_pairing_function_matches_backend(self, bp):
        direct = tate_pairing(bp.params, bp.g, bp.g)
        assert bp.gt_eq(direct, bp.gt_generator())


class TestMultiExp:
    """Shared-window multi-exponentiation vs naive accumulation."""

    def test_matches_naive_source_group(self, bp):
        rng = random.Random(3)
        bases = [bp.exp(bp.g, bp.random_scalar(rng)) for _ in range(5)]
        scalars = [rng.randrange(0, bp.order) for _ in range(5)]
        naive = bp.identity()
        for base, s in zip(bases, scalars):
            naive = bp.mul(naive, bp.exp(base, s))
        assert bp.multi_exp(bases, scalars) == naive

    def test_matches_naive_target_group(self, bp):
        rng = random.Random(4)
        gt = bp.gt_generator()
        bases = [bp.gt_exp(gt, rng.randrange(1, bp.order)) for _ in range(5)]
        scalars = [rng.randrange(0, bp.order) for _ in range(5)]
        naive = bp.gt_one()
        for base, s in zip(bases, scalars):
            naive = bp.gt_mul(naive, bp.gt_exp(base, s))
        assert bp.gt_eq(bp.gt_multi_exp(bases, scalars), naive)

    def test_zero_scalars_skipped(self, bp):
        bases = [bp.g, bp.exp(bp.g, 2)]
        assert bp.multi_exp(bases, [0, 0]) == bp.identity()
        assert bp.multi_exp(bases, [0, 3]) == bp.exp(bp.g, 6)

    def test_empty(self, bp):
        assert bp.multi_exp([], []) == bp.identity()
        assert bp.gt_eq(bp.gt_multi_exp([], []), bp.gt_one())

    def test_scalars_reduced_mod_order(self, bp):
        big = bp.order * 7 + 5
        assert bp.multi_exp([bp.g], [big]) == bp.exp(bp.g, 5)

    def test_toy_backend_agrees_with_naive(self, toy_backend):
        rng = random.Random(5)
        t = toy_backend
        bases = [t.random_element(rng) for _ in range(4)]
        scalars = [rng.randrange(0, t.order) for _ in range(4)]
        naive = t.identity()
        for base, s in zip(bases, scalars):
            naive = t.mul(naive, t.exp(base, s))
        assert t.multi_exp(bases, scalars) == naive
        gt_bases = [t.gt_exp(t.gt_generator(), s) for s in scalars]
        naive_gt = t.gt_one()
        for base, s in zip(gt_bases, scalars):
            naive_gt = t.gt_mul(naive_gt, t.gt_exp(base, s))
        assert t.gt_eq(t.gt_multi_exp(gt_bases, scalars), naive_gt)

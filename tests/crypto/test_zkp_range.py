"""Tests for the bit-decomposition range proof."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import Transcript
from repro.crypto.zkp.range_proof import (
    RangeProof,
    commit_value,
    prove_range,
    verify_range,
)


def t(domain=b"range"):
    return Transcript(domain)


@pytest.fixture()
def bases(schnorr_group):
    return schnorr_group.g, schnorr_group.derive_generator(b"range-h")


class TestRangeProof:
    @pytest.mark.parametrize("value", [0, 1, 7, 8, 15])
    def test_accepts_in_range(self, schnorr_group, bases, rng, value):
        g, h = bases
        c, r = commit_value(schnorr_group, g, h, value, rng)
        proof = prove_range(schnorr_group, g, h, c, value, r, bits=4, rng=rng, transcript=t())
        assert verify_range(schnorr_group, g, h, c, proof, t())

    def test_prover_rejects_out_of_range(self, schnorr_group, bases, rng):
        g, h = bases
        c, r = commit_value(schnorr_group, g, h, 16, rng)
        with pytest.raises(ValueError):
            prove_range(schnorr_group, g, h, c, 16, r, bits=4, rng=rng, transcript=t())

    def test_prover_rejects_bad_opening(self, schnorr_group, bases, rng):
        g, h = bases
        c, r = commit_value(schnorr_group, g, h, 3, rng)
        with pytest.raises(ValueError):
            prove_range(schnorr_group, g, h, c, 4, r, bits=4, rng=rng, transcript=t())

    def test_rejects_wrong_commitment(self, schnorr_group, bases, rng):
        g, h = bases
        c, r = commit_value(schnorr_group, g, h, 5, rng)
        proof = prove_range(schnorr_group, g, h, c, 5, r, bits=4, rng=rng, transcript=t())
        other = schnorr_group.mul(c, g)
        assert not verify_range(schnorr_group, g, h, other, proof, t())

    def test_rejects_tampered_bit_commitment(self, schnorr_group, bases, rng):
        g, h = bases
        c, r = commit_value(schnorr_group, g, h, 5, rng)
        proof = prove_range(schnorr_group, g, h, c, 5, r, bits=4, rng=rng, transcript=t())
        cs = list(proof.bit_commitments)
        cs[0] = schnorr_group.mul(cs[0], g)
        bad = dataclasses.replace(proof, bit_commitments=tuple(cs))
        assert not verify_range(schnorr_group, g, h, c, bad, t())

    def test_rejects_transcript_mismatch(self, schnorr_group, bases, rng):
        g, h = bases
        c, r = commit_value(schnorr_group, g, h, 9, rng)
        proof = prove_range(schnorr_group, g, h, c, 9, r, bits=4, rng=rng, transcript=t(b"a"))
        assert not verify_range(schnorr_group, g, h, c, proof, t(b"b"))

    def test_rejects_empty_proof(self, schnorr_group, bases, rng):
        g, h = bases
        c, _ = commit_value(schnorr_group, g, h, 1, rng)
        empty = RangeProof(bit_commitments=(), bit_proofs=())
        assert not verify_range(schnorr_group, g, h, c, empty, t())

    def test_rejects_mismatched_list_lengths(self, schnorr_group, bases, rng):
        """Commitment/OR-proof count mismatches must reject — never
        crash — and sequential and collect paths must agree."""
        from repro.crypto.zkp.range_proof import collect_range

        g, h = bases
        c, r = commit_value(schnorr_group, g, h, 5, rng)
        proof = prove_range(schnorr_group, g, h, c, 5, r, bits=4, rng=rng, transcript=t())
        mutations = (
            dataclasses.replace(proof, bit_proofs=proof.bit_proofs[:-1]),
            dataclasses.replace(
                proof, bit_proofs=proof.bit_proofs + (proof.bit_proofs[0],)
            ),
            dataclasses.replace(
                proof, bit_commitments=proof.bit_commitments[:-1]
            ),
            dataclasses.replace(
                proof,
                bit_commitments=proof.bit_commitments + (proof.bit_commitments[0],),
            ),
        )
        for bad in mutations:
            assert not verify_range(schnorr_group, g, h, c, bad, t())
            assert collect_range(schnorr_group, g, h, c, bad, t()) is None

    def test_rejects_dropped_bit(self, schnorr_group, bases, rng):
        g, h = bases
        c, r = commit_value(schnorr_group, g, h, 5, rng)
        proof = prove_range(schnorr_group, g, h, c, 5, r, bits=4, rng=rng, transcript=t())
        bad = dataclasses.replace(
            proof,
            bit_commitments=proof.bit_commitments[:-1],
            bit_proofs=proof.bit_proofs[:-1],
        )
        assert not verify_range(schnorr_group, g, h, c, bad, t())

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, value):
        import random

        from repro.crypto.groups import SchnorrGroup

        rng = random.Random(value)
        group = _shared_group()
        g, h = group.g, group.derive_generator(b"range-h")
        c, r = commit_value(group, g, h, value, rng)
        proof = prove_range(group, g, h, c, value, r, bits=8, rng=rng, transcript=t())
        assert verify_range(group, g, h, c, proof, t())

    def test_hiding(self, schnorr_group, bases, rng):
        """Commitments to different in-range values are indistinguishable
        in form (same structure, different randomness)."""
        g, h = bases
        c1, r1 = commit_value(schnorr_group, g, h, 3, rng)
        c2, r2 = commit_value(schnorr_group, g, h, 3, rng)
        assert c1 != c2  # randomized

    def test_encoded_size_scales_with_bits(self, schnorr_group, bases, rng):
        g, h = bases
        c4, r4 = commit_value(schnorr_group, g, h, 5, rng)
        p4 = prove_range(schnorr_group, g, h, c4, 5, r4, bits=4, rng=rng, transcript=t())
        c8, r8 = commit_value(schnorr_group, g, h, 5, rng)
        p8 = prove_range(schnorr_group, g, h, c8, 5, r8, bits=8, rng=rng, transcript=t())
        assert p8.encoded_size(16, 16) == 2 * p4.encoded_size(16, 16)


_GROUP_CACHE = []


def _shared_group():
    if not _GROUP_CACHE:
        import random

        from repro.crypto.groups import SchnorrGroup

        _GROUP_CACHE.append(SchnorrGroup.generate(64, random.Random(4242)))
    return _GROUP_CACHE[0]

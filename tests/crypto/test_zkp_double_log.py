"""Tests for Stadler's double-discrete-log proof."""

from __future__ import annotations

import dataclasses

import pytest

from repro.crypto.hashing import Transcript
from repro.crypto.zkp import prove_double_log, verify_double_log


def t(domain=b"dlog"):
    return Transcript(domain)


@pytest.fixture()
def setting(tower3, rng):
    """Outer group + inner generator from the DEC tower (storeys 0/1)."""
    inner_grp = tower3.group(0)  # order q0, modulus p0 = q1
    outer = tower3.group(1)      # order q1
    h = inner_grp.g              # generator of order q0 inside Z*_{q1}
    q_in = inner_grp.q
    x = rng.randrange(q_in)
    y = outer.power(pow(h, x, outer.q))
    return outer, h, q_in, x, y


class TestDoubleLog:
    def test_accepts_valid(self, setting, rng):
        outer, h, q_in, x, y = setting
        proof = prove_double_log(outer, h, q_in, y, x, rng, t(), rounds=16)
        assert verify_double_log(outer, h, q_in, y, proof, t())

    def test_rejects_wrong_statement(self, setting, rng):
        outer, h, q_in, x, y = setting
        proof = prove_double_log(outer, h, q_in, y, x, rng, t(), rounds=16)
        assert not verify_double_log(outer, h, q_in, outer.mul(y, outer.g), proof, t())

    def test_rejects_tampered_response(self, setting, rng):
        outer, h, q_in, x, y = setting
        proof = prove_double_log(outer, h, q_in, y, x, rng, t(), rounds=16)
        responses = list(proof.responses)
        responses[0] = (responses[0] + 1) % q_in
        bad = dataclasses.replace(proof, responses=tuple(responses))
        assert not verify_double_log(outer, h, q_in, y, bad, t())

    def test_rejects_transcript_mismatch(self, setting, rng):
        outer, h, q_in, x, y = setting
        proof = prove_double_log(outer, h, q_in, y, x, rng, t(b"a"), rounds=16)
        assert not verify_double_log(outer, h, q_in, y, proof, t(b"b"))

    def test_rejects_out_of_range_response(self, setting, rng):
        outer, h, q_in, x, y = setting
        proof = prove_double_log(outer, h, q_in, y, x, rng, t(), rounds=8)
        responses = list(proof.responses)
        responses[0] = q_in + responses[0]
        bad = dataclasses.replace(proof, responses=tuple(responses))
        assert not verify_double_log(outer, h, q_in, y, bad, t())

    def test_rejects_empty_proof(self, setting):
        outer, h, q_in, _, y = setting
        from repro.crypto.zkp.double_log import DoubleLogProof

        assert not verify_double_log(
            outer, h, q_in, y, DoubleLogProof(commitments=(), responses=()), t()
        )

    def test_rejects_length_mismatch(self, setting, rng):
        outer, h, q_in, x, y = setting
        proof = prove_double_log(outer, h, q_in, y, x, rng, t(), rounds=8)
        bad = dataclasses.replace(proof, responses=proof.responses[:-1])
        assert not verify_double_log(outer, h, q_in, y, bad, t())

    def test_prover_validates_witness(self, setting, rng):
        outer, h, q_in, x, y = setting
        with pytest.raises(ValueError):
            prove_double_log(outer, h, q_in, y, x + 1, rng, t(), rounds=4)

    def test_rounds_configurable(self, setting, rng):
        outer, h, q_in, x, y = setting
        proof = prove_double_log(outer, h, q_in, y, x, rng, t(), rounds=40)
        assert proof.rounds == 40
        assert verify_double_log(outer, h, q_in, y, proof, t())

    def test_rejects_zero_rounds(self, setting, rng):
        outer, h, q_in, x, y = setting
        with pytest.raises(ValueError):
            prove_double_log(outer, h, q_in, y, x, rng, t(), rounds=0)

    def test_soundness_single_round_forgery_sometimes_caught(self, setting, rng):
        """A forged proof with 12 rounds must fail (prob 2^-12 to slip)."""
        outer, h, q_in, x, y = setting
        wrong_witness_proofs = 0
        proof = prove_double_log(outer, h, q_in, y, x, rng, t(), rounds=12)
        # redirect the proof at a different statement
        y2 = outer.power(pow(h, (x + 1) % q_in, outer.q))
        assert not verify_double_log(outer, h, q_in, y2, proof, t())

    def test_encoded_size_scales_with_rounds(self, setting, rng):
        outer, h, q_in, x, y = setting
        p8 = prove_double_log(outer, h, q_in, y, x, rng, t(), rounds=8)
        p16 = prove_double_log(outer, h, q_in, y, x, rng, t(), rounds=16)
        assert p16.encoded_size(16, 16) == 2 * p8.encoded_size(16, 16)

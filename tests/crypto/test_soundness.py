"""Soundness-grinding tests for the cut-and-choose proofs.

A cheating prover without the witness can still *guess*: prepare each
round for one of the two challenge bits and hope Fiat–Shamir deals
those bits.  Success probability is ``2^-rounds`` per transcript, and
the prover can grind transcripts by varying a salt.  These tests build
that exact cheater for the committed-double-log edge proof and check
both sides of the design contract:

* at tiny round counts, grinding succeeds quickly (soundness error is
  real, not an implementation accident);
* the expected grinding work doubles per round (measured);
* at the production round count the forged proof never lands within a
  generous attempt budget.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.hashing import Transcript
from repro.crypto.zkp.committed_double_log import (
    CommittedEdgeProof,
    verify_edge,
)
from repro.ecash.tree import GEN_COMMIT_G, GEN_COMMIT_H, GEN_LEFT


@pytest.fixture()
def false_statement(tower3, rng):
    """Commitments whose openings do NOT satisfy the derivation."""
    pg, cg = tower3.group(1), tower3.group(2)
    g1, h1 = tower3.extra_generators[1][GEN_COMMIT_G], tower3.extra_generators[1][GEN_COMMIT_H]
    g2, h2 = tower3.extra_generators[2][GEN_COMMIT_G], tower3.extra_generators[2][GEN_COMMIT_H]
    gamma = tower3.extra_generators[1][GEN_LEFT]
    parent = rng.randrange(1, pg.q)
    wrong_child = (pg.exp(gamma, parent) + 1) % cg.q or 1  # NOT γ^parent
    r1, r2 = pg.random_exponent(rng), cg.random_exponent(rng)
    c_parent = pg.mul(pg.exp(g1, parent), pg.exp(h1, r1))
    c_child = cg.mul(cg.exp(g2, wrong_child), cg.exp(h2, r2))
    return dict(pg=pg, cg=cg, g1=g1, h1=h1, g2=g2, h2=h2, gamma=gamma,
                parent=parent, r1=r1, r2=r2, wrong_child=wrong_child,
                c_parent=c_parent, c_child=c_child)


def _grind_forgery(s, rounds: int, max_attempts: int, seed: int) -> int | None:
    """Try to forge an edge proof for the false statement.

    Strategy: prepare every round for challenge bit 0 (honest-looking
    ``u, τ`` from fresh nonces — bit 0 only checks recomputation, which
    a witnessless prover CAN satisfy).  The forgery lands iff
    Fiat–Shamir deals all-zero bits; grind by re-randomizing nonces.
    Returns the attempt count on success, None when the budget runs out.
    """
    rng = random.Random(seed)
    pg, cg = s["pg"], s["cg"]
    for attempt in range(1, max_attempts + 1):
        us, ts, responses = [], [], []
        for _ in range(rounds):
            w, v = rng.randrange(pg.q), rng.randrange(pg.q)
            sigma = rng.randrange(cg.q)
            us.append(pg.mul(pg.exp(s["g1"], w), pg.exp(s["h1"], v)))
            ts.append(cg.mul(cg.exp(s["g2"], pg.exp(s["gamma"], w)),
                             cg.exp(s["h2"], sigma)))
            responses.append((w, v, sigma))
        proof = CommittedEdgeProof(
            commitments_u=tuple(us), commitments_t=tuple(ts),
            responses=tuple(responses),
        )
        transcript = Transcript(b"forge-%d" % attempt)  # grinding = new domain
        if verify_edge(pg, s["g1"], s["h1"], s["c_parent"], s["gamma"],
                       cg, s["g2"], s["h2"], s["c_child"], proof,
                       Transcript(b"forge-%d" % attempt)):
            return attempt
    return None


class TestGrinding:
    def test_tiny_rounds_forgeable(self, false_statement):
        """rounds=2 ⇒ success probability 1/4 per transcript: grinding
        must land well within a few dozen attempts."""
        attempt = _grind_forgery(false_statement, rounds=2, max_attempts=200, seed=1)
        assert attempt is not None and attempt <= 100

    def test_work_scales_with_rounds(self, false_statement):
        """Mean grinding work ≈ 2^rounds: measure at 1 vs 3 rounds."""
        costs = {}
        for rounds in (1, 3):
            attempts = [
                _grind_forgery(false_statement, rounds=rounds,
                               max_attempts=1000, seed=100 * rounds + i)
                for i in range(10)
            ]
            assert all(a is not None for a in attempts)
            costs[rounds] = sum(attempts) / len(attempts)
        # expectation 2 vs 8; generous band for 10 samples
        assert costs[3] > costs[1]

    def test_production_rounds_resist_grinding(self, false_statement):
        """At 24 rounds, 300 grinding attempts (vs expected 2^24) fail."""
        assert _grind_forgery(false_statement, rounds=24,
                              max_attempts=300, seed=7) is None

    def test_honest_bits_occasionally_nonzero(self, false_statement):
        """Sanity: the challenge really varies across transcripts (the
        forgery only works on the all-zeros draw)."""
        pg = false_statement["pg"]
        bits = set()
        for i in range(8):
            t = Transcript(b"probe-%d" % i)
            t.absorb_int(i)
            bits.add(t.challenge(4))
        assert len(bits) > 1

"""Tests for the cross-group equality proof (integer responses)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.crypto.hashing import Transcript
from repro.crypto.zkp.equality import prove_equality, verify_equality


def t(domain=b"eq"):
    return Transcript(domain)


@pytest.fixture(params=["toy", "tate"])
def backend(request, toy_backend, tate_backend):
    return toy_backend if request.param == "toy" else tate_backend


@pytest.fixture()
def setting(schnorr_group, backend, rng):
    """Pedersen commitment in the Schnorr group + B^s in the GT group."""
    g = schnorr_group
    h = g.derive_generator(b"pedersen-h")
    bound_bits = min(g.q.bit_length(), backend.order.bit_length()) - 1
    witness = rng.randrange(1, 1 << bound_bits)
    randomizer = g.random_exponent(rng)
    commitment = g.mul(g.power(witness), g.exp(h, randomizer))
    base_gt = backend.pair(backend.g, backend.g)
    statement = backend.gt_exp(base_gt, witness)
    helpers = dict(
        exp_b=lambda k: backend.gt_exp(base_gt, k),
        mul_b=backend.gt_mul,
        exp_el_b=backend.gt_exp,
        encode_b=lambda el: _enc(el),
        decode_b=lambda enc: _dec(backend, enc),
    )
    return g, h, commitment, statement, witness, randomizer, bound_bits, helpers


def _enc(el):
    if hasattr(el, "a"):
        return (el.a, el.b)
    return (int(el),)


def _dec(backend, enc):
    one = backend.gt_one()
    if hasattr(one, "a"):
        from repro.crypto.pairing.field import Fp2

        return Fp2(enc[0], enc[1], one.p)
    return enc[0]


def _prove(setting, rng, transcript=None):
    g, h, commitment, statement, witness, randomizer, bits, helpers = setting
    return prove_equality(
        g, g.g, h, commitment,
        exp_b=helpers["exp_b"],
        encode_b=helpers["encode_b"],
        statement_b=statement,
        witness=witness,
        randomizer=randomizer,
        witness_bits=bits,
        rng=rng,
        transcript=transcript or t(),
    )


def _verify(setting, proof, transcript=None, statement=None, commitment=None):
    g, h, commit0, statement0, *_rest, helpers = setting
    return verify_equality(
        g, g.g, h, commitment if commitment is not None else commit0,
        exp_b=helpers["exp_b"],
        mul_b=helpers["mul_b"],
        exp_el_b=helpers["exp_el_b"],
        encode_b=helpers["encode_b"],
        decode_b=helpers["decode_b"],
        statement_b=statement if statement is not None else statement0,
        proof=proof,
        transcript=transcript or t(),
    )


class TestEqualityProof:
    def test_accepts_valid(self, setting, rng):
        proof = _prove(setting, rng)
        assert _verify(setting, proof)

    def test_rejects_wrong_gt_statement(self, setting, rng, backend):
        proof = _prove(setting, rng)
        wrong = backend.gt_exp(backend.pair(backend.g, backend.g), 99999)
        assert not _verify(setting, proof, statement=wrong)

    def test_rejects_wrong_commitment(self, setting, rng):
        g = setting[0]
        proof = _prove(setting, rng)
        assert not _verify(setting, proof, commitment=g.mul(setting[2], g.g))

    def test_rejects_tampered_integer_response(self, setting, rng):
        proof = _prove(setting, rng)
        bad = dataclasses.replace(proof, z=proof.z + 1)
        assert not _verify(setting, bad)

    def test_rejects_oversized_response(self, setting, rng):
        proof = _prove(setting, rng)
        bad = dataclasses.replace(proof, z=1 << (proof.witness_bits + 500))
        assert not _verify(setting, bad)

    def test_rejects_transcript_mismatch(self, setting, rng):
        proof = _prove(setting, rng, transcript=t(b"one"))
        assert not _verify(setting, proof, transcript=t(b"two"))

    def test_prover_validates_bound(self, setting, rng):
        g, h, commitment, statement, witness, randomizer, bits, helpers = setting
        with pytest.raises(ValueError):
            prove_equality(
                g, g.g, h, commitment,
                exp_b=helpers["exp_b"], encode_b=helpers["encode_b"],
                statement_b=statement, witness=witness, randomizer=randomizer,
                witness_bits=witness.bit_length() - 1,  # too tight
                rng=rng, transcript=t(),
            )

    def test_prover_validates_opening(self, setting, rng):
        g, h, commitment, statement, witness, randomizer, bits, helpers = setting
        with pytest.raises(ValueError):
            prove_equality(
                g, g.g, h, g.mul(commitment, g.g),
                exp_b=helpers["exp_b"], encode_b=helpers["encode_b"],
                statement_b=statement, witness=witness, randomizer=randomizer,
                witness_bits=bits, rng=rng, transcript=t(),
            )

    def test_response_never_reduced(self, setting, rng):
        """The integer response can exceed both group orders — that is
        the whole point of the technique."""
        proofs = [_prove(setting, rng) for _ in range(3)]
        g = setting[0]
        assert any(p.z > g.q for p in proofs)

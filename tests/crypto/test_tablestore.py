"""Tests for the shared-memory table transport."""

from __future__ import annotations

import os
import stat
import tempfile

import pytest

from repro.crypto import tablestore
from repro.crypto.tablestore import TableStore, TableStoreError, load, pack, unpack


@pytest.fixture(autouse=True)
def _no_crash_hook():
    yield
    tablestore.set_crash_hook(None)


class TestFraming:
    def test_roundtrip(self):
        blob = os.urandom(257)
        assert unpack(pack(blob)) == blob

    def test_empty_blob(self):
        assert unpack(pack(b"")) == b""

    def test_short_payload_rejected(self):
        with pytest.raises(TableStoreError, match="shorter"):
            unpack(b"RPTB")

    def test_bad_magic_rejected(self):
        framed = bytearray(pack(b"hello"))
        framed[0] ^= 0xFF
        with pytest.raises(TableStoreError, match="magic"):
            unpack(bytes(framed))

    def test_version_skew_rejected(self):
        framed = bytearray(pack(b"hello"))
        framed[5] ^= 0x01
        with pytest.raises(TableStoreError, match="version"):
            unpack(bytes(framed))

    def test_truncation_rejected(self):
        framed = pack(b"x" * 64)
        with pytest.raises(TableStoreError, match="truncated"):
            unpack(framed[:-8])

    def test_corruption_rejected(self):
        framed = bytearray(pack(b"x" * 64))
        framed[-1] ^= 0x01
        with pytest.raises(TableStoreError, match="digest"):
            unpack(bytes(framed))

    def test_oversized_buffer_tolerated(self):
        # shared-memory segments round up to page size; trailing slack
        # beyond the declared length must not affect validation
        framed = pack(b"payload") + b"\x00" * 4096
        assert unpack(framed) == b"payload"


class TestPublishLoad:
    @pytest.mark.parametrize("prefer_shm", [True, False])
    def test_roundtrip(self, prefer_shm):
        blob = os.urandom(1024)
        store = TableStore()
        try:
            ref = store.publish(blob, prefer_shared_memory=prefer_shm)
            assert ref is store.ref
            if not prefer_shm:
                assert ref[0] == "file"
            assert load(ref) == blob
            # a second attach works too — load never unlinks
            assert load(ref) == blob
        finally:
            store.close()

    def test_double_publish_rejected(self):
        store = TableStore()
        try:
            store.publish(b"x")
            with pytest.raises(RuntimeError):
                store.publish(b"y")
        finally:
            store.close()

    def test_close_unlinks_file(self):
        store = TableStore()
        ref = store.publish(b"data", prefer_shared_memory=False)
        path = ref[1]
        assert os.path.exists(path)
        store.close()
        assert not os.path.exists(path)
        assert store.ref is None

    def test_close_idempotent(self):
        store = TableStore()
        store.publish(b"data")
        store.close()
        store.close()

    def test_load_after_close_fails(self):
        store = TableStore()
        ref = store.publish(b"data", prefer_shared_memory=False)
        store.close()
        with pytest.raises((TableStoreError, OSError)):
            load(ref)

    def test_unknown_ref_kind(self):
        with pytest.raises(TableStoreError, match="unknown"):
            load(("carrier-pigeon", "name", 3))


class TestFileFallbackHardening:
    """The file fallback crosses a shared temp dir and the blob is
    unpickled after validation — the digest proves integrity, not
    origin, so creation and read-back must pin the file to this uid."""

    def test_created_private_and_exclusive(self):
        store = TableStore()
        try:
            ref = store.publish(b"blob", prefer_shared_memory=False)
            mode = stat.S_IMODE(os.stat(ref[1]).st_mode)
            assert mode == 0o600
            assert load(ref) == b"blob"
        finally:
            store.close()

    def test_preexisting_path_never_adopted(self, monkeypatch):
        monkeypatch.setattr(tablestore.secrets, "token_hex", lambda n: "pinned")
        squatted = os.path.join(tempfile.gettempdir(), "repro-tables-pinned.bin")
        with open(squatted, "wb") as handle:
            handle.write(b"attacker bytes")
        try:
            with pytest.raises(OSError):
                TableStore().publish(b"blob", prefer_shared_memory=False)
            # the squatter's file is not ours: publish must not unlink it
            with open(squatted, "rb") as handle:
                assert handle.read() == b"attacker bytes"
        finally:
            os.unlink(squatted)

    @pytest.mark.skipif(not hasattr(os, "getuid"), reason="POSIX only")
    def test_foreign_owner_rejected(self, monkeypatch):
        store = TableStore()
        try:
            ref = store.publish(b"blob", prefer_shared_memory=False)
            real_uid = os.getuid()
            monkeypatch.setattr(os, "getuid", lambda: real_uid + 1)
            with pytest.raises(TableStoreError, match="owned"):
                load(ref)
        finally:
            store.close()

    @pytest.mark.skipif(not hasattr(os, "O_NOFOLLOW"), reason="needs O_NOFOLLOW")
    def test_symlink_rejected(self, tmp_path):
        framed = pack(b"x")
        target = tmp_path / "target.bin"
        target.write_bytes(framed)
        link = tmp_path / "link.bin"
        link.symlink_to(target)
        with pytest.raises(OSError):
            load(("file", str(link), len(framed)))

    def test_non_regular_file_rejected(self, tmp_path):
        with pytest.raises((TableStoreError, OSError)):
            load(("file", str(tmp_path), 8))


class TestCrashWindow:
    class _Boom(RuntimeError):
        pass

    @pytest.mark.parametrize("prefer_shm", [True, False])
    def test_crash_mid_publish_cleans_up(self, prefer_shm):
        def hook():
            raise self._Boom("publisher died")

        tablestore.set_crash_hook(hook)
        store = TableStore()
        with pytest.raises(self._Boom):
            store.publish(b"tables", prefer_shared_memory=prefer_shm)
        assert store.ref is None
        # nothing leaked under the temp dir
        import glob
        import tempfile

        leftovers = glob.glob(
            os.path.join(tempfile.gettempdir(), "repro-tables-*.bin")
        )
        assert leftovers == []

    def test_clearing_hook_restores_publish(self):
        tablestore.set_crash_hook(lambda: (_ for _ in ()).throw(self._Boom()))
        store = TableStore()
        with pytest.raises(self._Boom):
            store.publish(b"tables")
        tablestore.set_crash_hook(None)
        try:
            ref = store.publish(b"tables")
            assert load(ref) == b"tables"
        finally:
            store.close()

"""Tests for Schnorr groups and the DEC group tower."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.cunningham import known_chain
from repro.crypto.groups import GroupTower, SchnorrGroup, build_tower
from repro.crypto.ntheory import is_probable_prime


class TestSchnorrGroup:
    def test_generate_shape(self, schnorr_group):
        g = schnorr_group
        assert (g.p - 1) % g.q == 0
        assert is_probable_prime(g.p) and is_probable_prime(g.q)
        assert pow(g.g, g.q, g.p) == 1

    def test_validation_rejects_bad_order(self):
        with pytest.raises(ValueError):
            SchnorrGroup(p=23, q=7, g=2)  # 7 does not divide 22

    def test_validation_rejects_wrong_order_generator(self):
        # 5 has order 22 mod 23, not 11
        with pytest.raises(ValueError):
            SchnorrGroup(p=23, q=11, g=5)

    def test_validation_rejects_identity(self):
        with pytest.raises(ValueError):
            SchnorrGroup(p=23, q=11, g=1)

    def test_exp_reduces_mod_q(self, schnorr_group):
        g = schnorr_group
        x = 5
        assert g.power(x) == g.power(x + g.q)

    def test_mul_inv(self, schnorr_group, rng):
        g = schnorr_group
        a = g.random_element(rng)
        assert g.mul(a, g.inv(a)) == 1

    def test_contains(self, schnorr_group, rng):
        g = schnorr_group
        assert g.contains(g.random_element(rng))
        assert not g.contains(0)
        assert not g.contains(g.p)

    def test_derive_generator_in_subgroup_and_stable(self, schnorr_group):
        g = schnorr_group
        h1 = g.derive_generator(b"label-a")
        h2 = g.derive_generator(b"label-a")
        h3 = g.derive_generator(b"label-b")
        assert h1 == h2 != h3
        assert g.contains(h1) and g.contains(h3)
        assert h1 != 1

    def test_from_order(self, rng):
        q = 1000003  # prime
        grp = SchnorrGroup.from_order(q, rng)
        assert grp.q == q and (grp.p - 1) % q == 0
        assert is_probable_prime(grp.p)

    def test_from_order_rejects_composite(self, rng):
        with pytest.raises(ValueError):
            SchnorrGroup.from_order(1000000, rng)

    @given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=25)
    def test_homomorphism(self, a, b):
        rng = random.Random(99)
        grp = SchnorrGroup.generate(32, rng)
        assert grp.mul(grp.power(a), grp.power(b)) == grp.power(a + b)


class TestGroupTower:
    def test_depth_and_verify(self, tower3):
        assert tower3.depth == 3
        assert tower3.verify()

    def test_chain_linkage(self, tower3):
        """Storey i's modulus must be storey i+1's order (except the top)."""
        for i in range(tower3.depth):
            assert tower3.group(i).p == tower3.group(i + 1).q

    def test_orders_form_cunningham_chain(self, tower3):
        orders = [g.q for g in tower3.levels]
        for a, b in zip(orders, orders[1:]):
            assert b == 2 * a + 1
            assert is_probable_prime(a) and is_probable_prime(b)

    def test_four_generators_per_level(self, tower3):
        for storey, gens in enumerate(tower3.extra_generators):
            assert len(gens) == 4
            grp = tower3.group(storey)
            for h in gens:
                assert grp.contains(h) and h != 1

    def test_generators_distinct_within_level(self, tower3):
        for gens in tower3.extra_generators:
            assert len(set(gens)) == len(gens)

    def test_build_with_explicit_chain(self, rng):
        chain = known_chain(3)
        tower = build_tower(2, rng, chain=chain)
        assert tower.depth == 2 and tower.verify()

    def test_build_rejects_short_chain(self, rng):
        chain = known_chain(2)
        with pytest.raises(ValueError):
            build_tower(5, rng, chain=chain)

    def test_build_level_zero(self, rng):
        tower = build_tower(0, rng)
        assert tower.depth == 0

    def test_build_negative_level_rejected(self, rng):
        with pytest.raises(ValueError):
            build_tower(-1, rng)

    def test_online_search_path(self, rng):
        """use_known_chain=False exercises the Fig. 2 search path."""
        tower = build_tower(1, rng, use_known_chain=False, chain_bits=10)
        assert tower.verify()
        assert tower.chain.start.bit_length() == 10

    def test_element_is_exponent_one_storey_up(self, tower3, rng):
        """The double-discrete-log property the e-cash tree relies on."""
        g0, g1 = tower3.group(0), tower3.group(1)
        element = g0.random_element(rng)
        assert 0 < element < g1.q + g1.q + 1  # element of Z_{p0} = Z_{q1}
        assert g1.contains(g1.power(element))

"""Toy vs Tate pairing backends must agree on every decision.

Differential parity suite: the same logical spend/verify vectors run
through a DEC instance on the *toy* symmetric pairing and one on the
real (small) *Tate* pairing, and the resulting accept/reject decision
vectors must be identical — valid tokens accepted, each tampering
rejected, on both backends.  The whole matrix additionally runs with
fixed-base exponentiation tables forced on and globally off (reusing
:func:`tests.crypto.test_fastexp_toggle._run_both`), so backend choice
and the fastexp toggle are shown to be jointly decision-invariant.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.crypto.cl_sig import cl_keygen
from repro.ecash.batch import batch_verify_spends
from repro.ecash.dec import begin_withdrawal, cl_blind_issue, finish_withdrawal, setup
from repro.ecash.spend import create_spend, verify_spend
from repro.ecash.tree import NodeId
from tests.crypto.test_fastexp_toggle import _run_both


@pytest.fixture(scope="module")
def toy3_params(session_rng):
    """Toy-backend twin of the session ``dec_params`` (both level 3)."""
    return setup(3, session_rng, security_bits=40, real_pairing=False, edge_rounds=8)


def _decision_vector(params, seed: int) -> tuple:
    """One full withdraw→spend→verify run reduced to its decisions.

    The returned tuple is backend-independent by construction: booleans
    and labels only, no group elements.
    """
    rng = random.Random(seed)
    bank = cl_keygen(params.backend, rng)
    other_bank = cl_keygen(params.backend, rng)
    secret, request = begin_withdrawal(params, rng)
    signature = cl_blind_issue(params.backend, bank, request, rng)
    coin = finish_withdrawal(params, bank.public, secret, signature)

    tokens = [
        create_spend(params, bank.public, coin.secret, coin.signature, NodeId(2, i), rng)
        for i in range(3)
    ]
    valid = tokens[0]
    tampered_key = replace(valid, node_key=valid.node_key + 1)
    tampered_node = replace(valid, node=NodeId(2, (valid.node.index + 1) % 4))
    swapped_edges = replace(valid, edges=tuple(reversed(valid.edges)))

    decisions = (
        ("valid", verify_spend(params, bank.public, valid)),
        ("valid-sibling", verify_spend(params, bank.public, tokens[1])),
        ("wrong-bank-key", verify_spend(params, other_bank.public, valid)),
        ("tampered-node-key", verify_spend(params, bank.public, tampered_key)),
        ("tampered-node-id", verify_spend(params, bank.public, tampered_node)),
        ("swapped-edge-proofs", verify_spend(params, bank.public, swapped_edges)),
        ("wrong-context", verify_spend(params, bank.public, valid, context=b"spv")),
        ("batch", tuple(batch_verify_spends(
            params, bank.public, [tokens[2], tampered_key], rng))),
    )
    return decisions


EXPECTED = (
    ("valid", True),
    ("valid-sibling", True),
    ("wrong-bank-key", False),
    ("tampered-node-key", False),
    ("tampered-node-id", False),
    ("swapped-edge-proofs", False),
    ("wrong-context", False),
    ("batch", (True, False)),
)


class TestBackendParity:
    def test_decision_vectors_match_across_backends(self, dec_params, toy3_params):
        tate = _decision_vector(dec_params, seed=2001)
        toy = _decision_vector(toy3_params, seed=2001)
        assert tate == toy
        assert tate == EXPECTED

    def test_parity_holds_under_fastexp_toggle(self, dec_params, toy3_params):
        """The full matrix: {toy, tate} x {tables on, tables off}."""
        tate_on, tate_off = _run_both(lambda: _decision_vector(dec_params, seed=2002))
        toy_on, toy_off = _run_both(lambda: _decision_vector(toy3_params, seed=2002))
        assert tate_on == tate_off == toy_on == toy_off
        assert tate_on == EXPECTED

    def test_parity_across_independent_seeds(self, dec_params, toy3_params):
        for seed in (7, 99, 31337):
            assert (_decision_vector(dec_params, seed=seed)
                    == _decision_vector(toy3_params, seed=seed) == EXPECTED), seed

"""Property tests: RLC batch verdicts ≡ sequential verdicts.

Two families, both driven by hypothesis:

* **Sigma equations** — random batches of Schnorr proofs over the
  64-bit test group: honest batches accept, and a single mutated
  response/commitment/statement makes the batch reject with the
  bisection fingering exactly the mutated item.  Each property runs
  with the fast-exp tables enabled and disabled — the combination is
  computed through :func:`repro.crypto.fastexp.multi_exp` either way,
  and a verdict may never depend on the cache state.
* **Pairing products** — random multi-term pairing equations pushed
  through both backends' ``pairing_batch`` accumulators (the toy
  exponent backend and the Tate backend's shared-final-exponentiation
  batch): the batched verdict must equal the exact per-term product.
"""

from __future__ import annotations

import dataclasses
import random

from hypothesis import given, settings, strategies as st

from repro.crypto import fastexp
from repro.crypto.batchverify import verify_each
from repro.crypto.hashing import Transcript
from repro.crypto.zkp.schnorr import collect_dlog, prove_dlog, verify_dlog

_FASTEXP_MODES = (
    {"enabled": True, "promote_after": 0, "min_modulus_bits": 1},
    {"enabled": False},
)


def _with_fastexp(config, fn):
    previous = fastexp.configure(**config)
    fastexp.reset()
    try:
        return fn()
    finally:
        fastexp.configure(**previous)
        fastexp.reset()


def _make_batch(group, seeds):
    items = []
    for i, seed in enumerate(seeds):
        rng = random.Random(seed)
        witness = rng.randrange(1, group.q)
        statement = group.exp(group.g, witness)
        transcript = Transcript(b"rlc-prop")
        transcript.absorb_int(i)
        proof = prove_dlog(group, group.g, statement, witness, rng, transcript)
        items.append((statement, proof))
    return items


def _collect_all(group, items):
    batches = []
    for i, (statement, proof) in enumerate(items):
        transcript = Transcript(b"rlc-prop")
        transcript.absorb_int(i)
        checks = collect_dlog(group, group.g, statement, proof, transcript)
        assert checks is not None
        batches.append(checks)
    return batches


def _sequential(group, items):
    out = []
    for i, (statement, proof) in enumerate(items):
        transcript = Transcript(b"rlc-prop")
        transcript.absorb_int(i)
        out.append(verify_dlog(group, group.g, statement, proof, transcript))
    return out


@given(
    seeds=st.lists(st.integers(0, 2**32), min_size=1, max_size=6),
    batch_seed=st.integers(0, 2**64),
)
@settings(max_examples=25)
def test_honest_batches_accept(schnorr_group, seeds, batch_seed):
    items = _make_batch(schnorr_group, seeds)
    for config in _FASTEXP_MODES:
        verdicts = _with_fastexp(
            config,
            lambda: verify_each(_collect_all(schnorr_group, items), seed=batch_seed),
        )
        assert verdicts == [True] * len(items)


@given(
    seeds=st.lists(st.integers(0, 2**32), min_size=1, max_size=6),
    batch_seed=st.integers(0, 2**64),
    position=st.integers(0, 5),
    mutation=st.sampled_from(["response", "commitment", "statement"]),
    delta=st.integers(1, 2**16),
)
@settings(max_examples=25)
def test_single_mutation_rejected_and_fingered(
    schnorr_group, seeds, batch_seed, position, mutation, delta
):
    group = schnorr_group
    items = _make_batch(group, seeds)
    bad = position % len(items)
    statement, proof = items[bad]
    if mutation == "response":
        proof = dataclasses.replace(
            proof, response=(proof.response + delta) % group.q
        )
    elif mutation == "commitment":
        # multiply by g^delta: still a subgroup member, so the mutation
        # survives the eager membership screen and must be caught by
        # the (batched) equation itself
        proof = dataclasses.replace(
            proof, commitment=group.mul(proof.commitment, group.exp(group.g, delta))
        )
    else:
        statement = group.mul(statement, group.exp(group.g, delta))
    items[bad] = (statement, proof)

    expected = _sequential(group, items)
    assert expected[bad] is False
    for config in _FASTEXP_MODES:
        verdicts = _with_fastexp(
            config,
            lambda: verify_each(_collect_all(group, items), seed=batch_seed),
        )
        assert verdicts == expected
        assert verdicts[bad] is False
        assert all(v for i, v in enumerate(verdicts) if i != bad)


# ---------------------------------------------------------------------------
# pairing-batch accumulators
# ---------------------------------------------------------------------------

def _pairing_batch_property(backend, terms, tamper):
    """Assert batched == exact for Π ê(g^a, g^b)^k (· tampered term)."""
    g = backend.g
    batch = backend.pairing_batch()
    acc = backend.gt_one()
    for a, b, k in terms:
        left = backend.exp(g, a)
        right = backend.exp(g, b)
        batch.add_pair(left, right, k)
        acc = backend.gt_mul(acc, backend.gt_exp(backend.pair(left, right), k))
        # balance in G_T: ê(g,g)^{-abk}
        balance = (-a * b * k) % backend.order
        batch.add_gt(backend.pair(g, g), balance)
        acc = backend.gt_mul(acc, backend.gt_exp(backend.pair(g, g), balance))
    if tamper:
        batch.add_gt(backend.pair(g, g), tamper)
        acc = backend.gt_mul(acc, backend.gt_exp(backend.pair(g, g), tamper))
    exact = backend.gt_eq(acc, backend.gt_one())
    assert batch.check() == exact
    if not tamper:
        assert batch.check()
    return exact


@given(
    terms=st.lists(
        st.tuples(
            st.integers(1, 2**24), st.integers(1, 2**24), st.integers(1, 2**24)
        ),
        min_size=1,
        max_size=4,
    ),
    tamper=st.integers(0, 2**24),
)
@settings(max_examples=15)
def test_tate_pairing_batch_matches_exact(tate_backend, terms, tamper):
    for config in _FASTEXP_MODES:
        _with_fastexp(
            config,
            lambda: _pairing_batch_property(
                tate_backend, terms, tamper % tate_backend.order
            ),
        )


@given(
    terms=st.lists(
        st.tuples(
            st.integers(1, 2**24), st.integers(1, 2**24), st.integers(1, 2**24)
        ),
        min_size=1,
        max_size=4,
    ),
    tamper=st.integers(0, 2**24),
)
@settings(max_examples=15)
def test_toy_pairing_batch_matches_exact(toy_backend, terms, tamper):
    for config in _FASTEXP_MODES:
        _with_fastexp(
            config,
            lambda: _pairing_batch_property(
                toy_backend, terms, tamper % toy_backend.order
            ),
        )

"""Tests for the RSA partially blind signature (the PPMSpbs coin)."""

from __future__ import annotations

import random

import pytest

from repro.crypto.partial_blind import (
    PartialBlindRequester,
    PartialBlindSignature,
    PartialBlindSigner,
    derive_exponent,
    verify_partial_blind,
)


@pytest.fixture()
def signer(rsa_key):
    return PartialBlindSigner(rsa_key)


class TestDeriveExponent:
    def test_deterministic(self):
        assert derive_exponent(b"info", 0) == derive_exponent(b"info", 0)

    def test_info_separation(self):
        assert derive_exponent(b"info-a", 0) != derive_exponent(b"info-b", 0)

    def test_counter_separation(self):
        assert derive_exponent(b"info", 0) != derive_exponent(b"info", 1)

    def test_exponent_is_odd_prime_sized(self):
        e = derive_exponent(b"serial-123", 0)
        assert e % 2 == 1
        assert e.bit_length() == 128

    def test_exponent_is_prime(self):
        from repro.crypto.ntheory import is_probable_prime

        for i in range(5):
            assert is_probable_prime(derive_exponent(b"x" + bytes([i]), 0))


class TestProtocol:
    def test_full_flow(self, signer, rng):
        requester = PartialBlindRequester(signer.public_key, rng)
        blinded = requester.blind(b"sp-public-key", b"serial-1")
        blind_sig, counter = signer.sign_blinded(blinded, b"serial-1")
        sig = requester.unblind(blind_sig, counter)
        assert verify_partial_blind(signer.public_key, b"sp-public-key", sig)
        assert sig.common_info == b"serial-1"

    def test_wrong_message_rejected(self, signer, rng):
        requester = PartialBlindRequester(signer.public_key, rng)
        blinded = requester.blind(b"msg", b"serial")
        sig = requester.unblind(*signer.sign_blinded(blinded, b"serial"))
        assert not verify_partial_blind(signer.public_key, b"other", sig)

    def test_wrong_common_info_rejected(self, signer, rng):
        requester = PartialBlindRequester(signer.public_key, rng)
        blinded = requester.blind(b"msg", b"serial")
        sig = requester.unblind(*signer.sign_blinded(blinded, b"serial"))
        forged = PartialBlindSignature(
            value=sig.value, counter=sig.counter, common_info=b"other-serial"
        )
        assert not verify_partial_blind(signer.public_key, b"msg", forged)

    def test_signer_info_mismatch_caught_at_unblind(self, signer, rng):
        """If the signer signs under different common info, the requester
        detects it when verifying after unblinding."""
        requester = PartialBlindRequester(signer.public_key, rng)
        blinded = requester.blind(b"msg", b"serial-A")
        blind_sig, counter = signer.sign_blinded(blinded, b"serial-B")
        with pytest.raises(ValueError):
            requester.unblind(blind_sig, counter)

    def test_unblind_without_blind(self, signer, rng):
        requester = PartialBlindRequester(signer.public_key, rng)
        with pytest.raises(RuntimeError):
            requester.unblind(1, 0)

    def test_blindness(self, signer, rng):
        """Two blindings of the same (message, info) pair must differ."""
        r1 = PartialBlindRequester(signer.public_key, rng)
        r2 = PartialBlindRequester(signer.public_key, rng)
        assert r1.blind(b"m", b"s") != r2.blind(b"m", b"s")

    def test_signer_range_validation(self, signer):
        with pytest.raises(ValueError):
            signer.sign_blinded(0, b"s")

    def test_out_of_range_signature_rejected(self, signer):
        bad = PartialBlindSignature(value=0, counter=0, common_info=b"s")
        assert not verify_partial_blind(signer.public_key, b"m", bad)

    def test_encoded_size(self, signer):
        sig = PartialBlindSignature(value=123, counter=0, common_info=b"serial-1")
        assert sig.encoded_size(signer.public_key) == signer.public_key.modulus_bytes + 4 + 8

    def test_distinct_serials_give_distinct_coins(self, signer):
        """Serials are the double-deposit defence: signatures must bind them."""
        rng = random.Random(3)
        sigs = []
        for serial in (b"s1", b"s2", b"s3"):
            requester = PartialBlindRequester(signer.public_key, rng)
            blinded = requester.blind(b"same-key", serial)
            sigs.append(requester.unblind(*signer.sign_blinded(blinded, serial)))
        assert len({s.value for s in sigs}) == 3

    def test_unforgeability_smoke(self, signer, rng):
        hits = 0
        for _ in range(30):
            forged = PartialBlindSignature(
                value=rng.randrange(1, signer.public_key.n), counter=0, common_info=b"s"
            )
            hits += verify_partial_blind(signer.public_key, b"m", forged)
        assert hits == 0

    def test_blind_with_counter_retry_path(self, signer, rng):
        """The explicit-counter blinding must interoperate with a signer
        that (hypothetically) had to skip counter 0."""
        requester = PartialBlindRequester(signer.public_key, rng)
        blinded = requester.blind_with_counter(b"msg", b"serial", 1)
        # force-sign under counter 1's exponent
        from repro.crypto.ntheory import modinv

        e1 = derive_exponent(b"serial", 1)
        phi = (signer._sk.p - 1) * (signer._sk.q - 1)
        d1 = modinv(e1, phi)
        blind_sig = pow(blinded, d1, signer._sk.n)
        sig = requester.unblind(blind_sig, 1)
        assert verify_partial_blind(signer.public_key, b"msg", sig)

"""Unit and property tests for the number-theory substrate."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ntheory import (
    SMALL_PRIMES,
    crt,
    is_probable_prime,
    is_quadratic_residue,
    jacobi,
    miller_rabin,
    modinv,
    next_prime,
    primes_up_to,
    random_prime,
    random_safe_prime,
    random_sophie_germain_prime,
    sqrt_mod_prime,
)

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 7919, 104729, (1 << 61) - 1]
KNOWN_COMPOSITES = [1, 0, -7, 4, 9, 91, 561, 6601, 41041, (1 << 61) - 2]
# 561, 6601, 41041 are Carmichael numbers — Fermat liars, Miller-Rabin must catch them


class TestPrimality:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_known_composites(self, n):
        assert not is_probable_prime(n)

    def test_matches_sieve_below_10000(self):
        sieved = set(primes_up_to(10_000))
        for n in range(10_000):
            assert is_probable_prime(n) == (n in sieved), n

    def test_small_primes_table(self):
        assert SMALL_PRIMES[0] == 2
        assert all(is_probable_prime(p) for p in SMALL_PRIMES[:50])

    def test_miller_rabin_detects_carmichael(self):
        # 561 = 3*11*17: Fermat test with base 2 passes, MR must not
        assert not miller_rabin(561, [2])

    def test_large_prime(self):
        # 2^127 - 1 is a Mersenne prime
        assert is_probable_prime((1 << 127) - 1)
        assert not is_probable_prime((1 << 127) + 1)


class TestNextPrime:
    @pytest.mark.parametrize(
        "n,expected", [(0, 2), (2, 3), (3, 5), (10, 11), (7918, 7919), (100, 101)]
    )
    def test_values(self, n, expected):
        assert next_prime(n) == expected

    @given(st.integers(min_value=0, max_value=10_000))
    def test_result_is_prime_and_greater(self, n):
        p = next_prime(n)
        assert p > n and is_probable_prime(p)


class TestRandomPrimes:
    def test_bit_length_exact(self):
        rng = random.Random(1)
        for bits in (8, 16, 48, 128):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_congruence_constraint(self):
        rng = random.Random(2)
        p = random_prime(64, rng, congruence=(3, 4))
        assert p % 4 == 3 and is_probable_prime(p)

    def test_safe_prime(self):
        rng = random.Random(3)
        p = random_safe_prime(32, rng)
        assert is_probable_prime(p) and is_probable_prime((p - 1) // 2)
        assert p.bit_length() == 32

    def test_sophie_germain(self):
        rng = random.Random(4)
        q = random_sophie_germain_prime(24, rng)
        assert is_probable_prime(q) and is_probable_prime(2 * q + 1)

    def test_rejects_tiny(self):
        rng = random.Random(5)
        with pytest.raises(ValueError):
            random_prime(1, rng)
        with pytest.raises(ValueError):
            random_safe_prime(2, rng)


class TestModular:
    @given(st.integers(min_value=1, max_value=10**9))
    def test_modinv_roundtrip(self, a):
        p = 1_000_000_007  # prime
        inv = modinv(a % p if a % p else 1, p)
        assert ((a % p if a % p else 1) * inv) % p == 1

    def test_modinv_noninvertible(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    def test_crt_basic(self):
        # x ≡ 2 (mod 3), x ≡ 3 (mod 5), x ≡ 2 (mod 7) -> 23
        assert crt([2, 3, 2], [3, 5, 7]) == 23

    @given(
        st.integers(min_value=0, max_value=10**6),
    )
    def test_crt_reconstructs(self, x):
        moduli = [101, 103, 107, 109]
        residues = [x % m for m in moduli]
        prod = 101 * 103 * 107 * 109
        assert crt(residues, moduli) == x % prod

    def test_crt_validation(self):
        with pytest.raises(ValueError):
            crt([1], [3, 5])
        with pytest.raises(ValueError):
            crt([], [])


class TestJacobiAndSqrt:
    def test_jacobi_against_euler(self):
        p = 10007  # prime -> Jacobi == Legendre
        for a in range(1, 200):
            euler = pow(a, (p - 1) // 2, p)
            expected = 1 if euler == 1 else (-1 if euler == p - 1 else 0)
            assert jacobi(a, p) == expected

    def test_jacobi_rejects_even_modulus(self):
        with pytest.raises(ValueError):
            jacobi(3, 10)

    @pytest.mark.parametrize("p", [10007, 104729, 7919])  # includes p % 4 == 3 and == 1
    def test_sqrt_roundtrip(self, p):
        rng = random.Random(p)
        for _ in range(25):
            x = rng.randrange(1, p)
            a = (x * x) % p
            r = sqrt_mod_prime(a, p)
            assert (r * r) % p == a

    def test_sqrt_of_zero(self):
        assert sqrt_mod_prime(0, 10007) == 0

    def test_sqrt_nonresidue_raises(self):
        p = 10007
        nonresidue = next(a for a in range(2, p) if not is_quadratic_residue(a, p))
        with pytest.raises(ValueError):
            sqrt_mod_prime(nonresidue, p)

    @given(st.integers(min_value=1, max_value=10006))
    @settings(max_examples=50)
    def test_is_qr_consistent_with_sqrt(self, a):
        p = 10007
        if is_quadratic_residue(a, p):
            r = sqrt_mod_prime(a, p)
            assert (r * r) % p == a % p
        else:
            with pytest.raises(ValueError):
                sqrt_mod_prime(a, p)

"""Tests for Cunningham-chain search and the precomputed table."""

from __future__ import annotations

import random

import pytest

from repro.crypto.cunningham import (
    KNOWN_CHAINS,
    CunninghamChain,
    extend_chain,
    find_chain,
    find_chain_with_stats,
    is_first_kind_chain,
    known_chain,
)
from repro.crypto.ntheory import is_probable_prime


class TestChainDataclass:
    def test_primes_materialization(self):
        chain = CunninghamChain(2, 5)
        assert chain.primes() == [2, 5, 11, 23, 47]

    def test_verify_classic_chain(self):
        assert CunninghamChain(89, 6).verify()

    def test_verify_detects_break(self):
        assert not CunninghamChain(89, 7).verify()  # 89-chain is length 6

    def test_validation(self):
        with pytest.raises(ValueError):
            CunninghamChain(7, 0)
        with pytest.raises(ValueError):
            CunninghamChain(1, 3)


class TestPredicates:
    def test_is_first_kind_chain(self):
        assert is_first_kind_chain(2, 5)
        assert is_first_kind_chain(1122659, 7)
        assert not is_first_kind_chain(4, 1)
        assert not is_first_kind_chain(13, 2)  # 27 composite

    def test_extend_chain(self):
        assert extend_chain(89) == 6
        assert extend_chain(4) == 0
        assert extend_chain(13) == 1


class TestSearch:
    def test_find_chain_small(self):
        rng = random.Random(7)
        chain = find_chain(2, 10, rng)
        assert chain.length == 2 and chain.verify()
        assert chain.start.bit_length() == 10

    def test_find_chain_length3(self):
        rng = random.Random(8)
        chain = find_chain(3, 12, rng)
        assert chain.verify()

    def test_find_chain_with_stats_counts_attempts(self):
        rng = random.Random(9)
        chain, attempts = find_chain_with_stats(2, 12, rng)
        assert attempts >= 1 and chain.verify()

    def test_search_effort_grows_with_length(self):
        """The Fig. 2 phenomenon: longer chains need far more samples."""
        rng = random.Random(10)
        short = sum(find_chain_with_stats(1, 14, rng)[1] for _ in range(5))
        long = sum(find_chain_with_stats(3, 14, rng)[1] for _ in range(5))
        assert long > short

    def test_rejects_bad_arguments(self):
        rng = random.Random(11)
        with pytest.raises(ValueError):
            find_chain(0, 16, rng)
        with pytest.raises(ValueError):
            find_chain(2, 2, rng)


class TestKnownChains:
    @pytest.mark.parametrize("length", sorted(KNOWN_CHAINS))
    def test_table_entries_are_chains(self, length):
        assert is_first_kind_chain(KNOWN_CHAINS[length], length)

    @pytest.mark.parametrize("length", range(1, 15))
    def test_known_chain_every_length(self, length):
        chain = known_chain(length)
        assert chain.length == length
        assert chain.verify()

    @pytest.mark.parametrize("length", range(1, 15))
    def test_tail_derivation_gives_large_starts(self, length):
        """Coin-secret space must stay cryptographically meaningful."""
        assert known_chain(length).start.bit_length() >= 35

    def test_known_chain_too_long_raises(self):
        with pytest.raises(KeyError):
            known_chain(99)

    def test_known_chain_rejects_nonpositive(self):
        with pytest.raises(KeyError):
            known_chain(0)

    def test_tail_relation(self):
        """A tail chain's start is 2*previous+1 of the longer chain."""
        longer = known_chain(14).primes()
        shorter = known_chain(13).primes()
        assert shorter == longer[1:]

    def test_chain_elements_all_prime(self):
        for p in known_chain(10).primes():
            assert is_probable_prime(p)


class TestWindowWidening:
    def test_empty_window_widens_instead_of_looping(self):
        """No length-5 chain starts with a 12-bit prime; the search must
        widen the window and still terminate."""
        rng = random.Random(77)
        chain, attempts = find_chain_with_stats(5, 12, rng)
        assert chain.verify()
        assert chain.start.bit_length() > 12  # forced out of the window
        assert attempts > (8 << 12) * 0.5  # it really exhausted the window

    def test_bits_is_a_minimum(self):
        rng = random.Random(78)
        chain = find_chain(2, 10, rng)
        assert chain.start.bit_length() >= 10

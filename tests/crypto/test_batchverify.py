"""Unit tests for random-linear-combination batch verification."""

from __future__ import annotations

import random

import pytest

from repro.crypto.batchverify import (
    COEFFICIENT_BITS,
    BatchVerifier,
    CoefficientSource,
    LinearCheck,
    linear_check,
    verify_each,
)
from repro.crypto.hashing import Transcript
from repro.crypto.zkp.schnorr import collect_dlog, prove_dlog, verify_dlog

# tiny Schnorr pair (p = 2q + 1) for canonicalisation tests; the
# subgroup of squares mod 23 has order 11 and generator 2
P, Q, G = 23, 11, 2


class TestLinearCheck:
    def test_holds_on_identity(self):
        check = linear_check(P, Q, [(G, 3), (pow(G, Q - 3, P), 1)])
        assert check.holds()

    def test_fails_on_nonidentity(self):
        check = linear_check(P, Q, [(G, 3), (pow(G, Q - 4, P), 1)])
        assert not check.holds()

    def test_negative_exponents_fold(self):
        # g^3 · g^{-3} == 1 with the -3 folded to q - 3
        check = linear_check(P, Q, [(G, 3), (G, -3)])
        assert all(0 <= e < Q for e in check.exponents)
        assert check.holds()

    def test_zero_exponent_terms_dropped(self):
        check = linear_check(P, Q, [(G, 0), (G, Q), (5, 2)])
        assert check.bases == (5,) and check.exponents == (2,)

    def test_bases_reduced(self):
        check = linear_check(P, Q, [(G + P, 1)])
        assert check.bases == (G,)

    def test_rejects_degenerate_modulus(self):
        with pytest.raises(ValueError):
            linear_check(1, Q, [(G, 1)])
        with pytest.raises(ValueError):
            linear_check(P, 1, [(G, 1)])


class TestCoefficientSource:
    def test_deterministic(self):
        a = CoefficientSource(seed=1234)
        b = CoefficientSource(seed=1234)
        order = (1 << 64) - 59
        for index in range(8):
            assert a.coefficient(order, index, 1, (0, 1)) == \
                b.coefficient(order, index, 1, (0, 1))

    def test_range_never_zero(self):
        source = CoefficientSource(seed=99)
        order = (1 << 64) - 59
        bound = min(1 << COEFFICIENT_BITS, order)
        for index in range(200):
            c = source.coefficient(order, index)
            assert 1 <= c < bound

    def test_position_sensitivity(self):
        source = CoefficientSource(seed=7)
        order = (1 << 64) - 59
        base = source.coefficient(order, 0, 0, ())
        assert source.coefficient(order, 1, 0, ()) != base
        assert source.coefficient(order, 0, 1, ()) != base
        assert source.coefficient(order, 0, 0, (0,)) != base

    def test_seed_sensitivity(self):
        order = (1 << 64) - 59
        assert CoefficientSource(seed=1).coefficient(order, 0) != \
            CoefficientSource(seed=2).coefficient(order, 0)

    def test_tiny_order_degenerates_to_one(self):
        source = CoefficientSource(seed=5)
        assert source.coefficient(2, 0) == 1
        assert source.coefficient(2, 3, 1, (1, 0)) == 1

    def test_bytes_seed_accepted(self):
        order = (1 << 64) - 59
        c = CoefficientSource(seed=b"abc").coefficient(order, 0)
        assert 1 <= c < min(1 << COEFFICIENT_BITS, order)


def _dlog_batch(group, rng, n):
    """n independent Schnorr proofs over *group*; returns per-item
    (statement, proof) with domain-separated transcripts."""
    items = []
    for i in range(n):
        witness = rng.randrange(1, group.q)
        statement = group.exp(group.g, witness)
        transcript = Transcript(b"batchverify-test")
        transcript.absorb_int(i)
        proof = prove_dlog(group, group.g, statement, witness, rng, transcript)
        items.append((statement, proof))
    return items


def _collect(group, items):
    batches = []
    for i, (statement, proof) in enumerate(items):
        transcript = Transcript(b"batchverify-test")
        transcript.absorb_int(i)
        checks = collect_dlog(group, group.g, statement, proof, transcript)
        assert checks is not None
        batches.append(checks)
    return batches


def _sequential(group, items):
    verdicts = []
    for i, (statement, proof) in enumerate(items):
        transcript = Transcript(b"batchverify-test")
        transcript.absorb_int(i)
        verdicts.append(verify_dlog(group, group.g, statement, proof, transcript))
    return verdicts


class TestBatchVerifier:
    def test_empty(self):
        verifier = BatchVerifier(seed=1)
        assert len(verifier) == 0
        assert verifier.verify() == {}

    def test_item_with_no_checks_accepts(self):
        verifier = BatchVerifier(seed=1)
        verifier.add("empty", [])
        assert verifier.verify() == {"empty": True}

    def test_honest_batch_accepts(self, schnorr_group, rng):
        items = _dlog_batch(schnorr_group, rng, 6)
        assert verify_each(_collect(schnorr_group, items), seed=42) == [True] * 6

    @pytest.mark.parametrize("mutate", ["response", "commitment", "statement"])
    def test_single_mutation_fingered(self, schnorr_group, rng, mutate):
        import dataclasses

        group = schnorr_group
        items = _dlog_batch(group, rng, 7)
        bad = 3
        statement, proof = items[bad]
        if mutate == "response":
            proof = dataclasses.replace(proof, response=(proof.response + 1) % group.q)
        elif mutate == "commitment":
            # stays a subgroup member, so only the equation breaks
            proof = dataclasses.replace(
                proof, commitment=group.mul(proof.commitment, group.g)
            )
        else:
            statement = group.mul(statement, group.g)
        items[bad] = (statement, proof)

        verdicts = verify_each(_collect(group, items), seed=rng.getrandbits(256))
        assert verdicts == _sequential(group, items)
        assert verdicts[bad] is False
        assert all(v for i, v in enumerate(verdicts) if i != bad)

    def test_multiple_bad_items_all_fingered(self, schnorr_group, rng):
        import dataclasses

        group = schnorr_group
        items = _dlog_batch(group, rng, 8)
        bad = {1, 4, 6}
        for i in bad:
            statement, proof = items[i]
            items[i] = (statement, dataclasses.replace(
                proof, response=(proof.response + 1 + i) % group.q))
        verdicts = verify_each(_collect(group, items), seed=7)
        assert verdicts == [i not in bad for i in range(len(items))]

    def test_cancellation_pair_does_not_cancel(self, schnorr_group, rng):
        """Complementary tamperings v and v^-1 across two items must both
        be caught — per-equation coefficients prevent the cancellation."""
        group = schnorr_group
        items = _dlog_batch(group, rng, 2)
        checks = _collect(group, items)
        # plant g^+1 into item 0's equation and g^-1 into item 1's
        c0, c1 = checks[0][0], checks[1][0]
        checks[0] = [linear_check(group.p, group.q,
                                  list(zip(c0.bases, c0.exponents)) + [(group.g, 1)])]
        checks[1] = [linear_check(group.p, group.q,
                                  list(zip(c1.bases, c1.exponents)) + [(group.g, -1)])]
        assert verify_each(checks, seed=13) == [False, False]

    def test_singleton_is_exact(self, schnorr_group, rng):
        import dataclasses

        group = schnorr_group
        ((statement, proof),) = _dlog_batch(group, rng, 1)
        bad = dataclasses.replace(proof, response=(proof.response + 1) % group.q)
        assert verify_each(_collect(group, [(statement, bad)]), seed=0) == [False]
        assert verify_each(_collect(group, [(statement, proof)]), seed=0) == [True]

    def test_same_seed_same_verdicts(self, schnorr_group, rng):
        items = _dlog_batch(schnorr_group, rng, 4)
        batches = _collect(schnorr_group, items)
        assert verify_each(batches, seed=77) == verify_each(batches, seed=77)

    def test_mixed_groups_in_one_item(self, schnorr_group, rng):
        """Checks over different (modulus, order) pairs coexist in one
        batch — each group combines separately."""
        items = _dlog_batch(schnorr_group, rng, 3)
        batches = _collect(schnorr_group, items)
        for checks in batches:
            checks.append(linear_check(P, Q, [(G, 3), (G, -3)]))
        assert verify_each(batches, seed=5) == [True, True, True]

    def test_arbitrary_keys(self, schnorr_group, rng):
        items = _dlog_batch(schnorr_group, rng, 2)
        batches = _collect(schnorr_group, items)
        verifier = BatchVerifier(seed=3)
        verifier.add(("token", 0), batches[0])
        verifier.add(("token", 1), batches[1])
        assert verifier.verify() == {("token", 0): True, ("token", 1): True}

"""Tests for committed-double-log edge proofs (the spend-path proofs)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.crypto.hashing import Transcript
from repro.crypto.zkp.committed_double_log import (
    prove_edge,
    prove_revealed_edge,
    verify_edge,
    verify_revealed_edge,
)
from repro.ecash.tree import GEN_COMMIT_G, GEN_COMMIT_H, GEN_LEFT


def t(domain=b"edge"):
    return Transcript(domain)


@pytest.fixture()
def edge_setting(tower3, rng):
    """A parent committed in storey 1, its child committed in storey 2."""
    pg = tower3.group(1)
    cg = tower3.group(2)
    g1, h1 = tower3.extra_generators[1][GEN_COMMIT_G], tower3.extra_generators[1][GEN_COMMIT_H]
    g2, h2 = tower3.extra_generators[2][GEN_COMMIT_G], tower3.extra_generators[2][GEN_COMMIT_H]
    gamma = tower3.extra_generators[1][GEN_LEFT]
    parent = rng.randrange(1, pg.q)
    child = pg.exp(gamma, parent)
    r1, r2 = pg.random_exponent(rng), cg.random_exponent(rng)
    c_parent = pg.mul(pg.exp(g1, parent), pg.exp(h1, r1))
    c_child = cg.mul(cg.exp(g2, child), cg.exp(h2, r2))
    return dict(
        pg=pg, cg=cg, g1=g1, h1=h1, g2=g2, h2=h2, gamma=gamma,
        parent=parent, child=child, r1=r1, r2=r2,
        c_parent=c_parent, c_child=c_child,
    )


def _prove(s, rng, rounds=12, transcript=None):
    return prove_edge(
        s["pg"], s["g1"], s["h1"], s["c_parent"], s["gamma"],
        s["cg"], s["g2"], s["h2"], s["c_child"],
        s["parent"], s["r1"], s["r2"], rng, transcript or t(), rounds=rounds,
    )


def _verify(s, proof, transcript=None, **overrides):
    merged = {**s, **overrides}
    return verify_edge(
        merged["pg"], merged["g1"], merged["h1"], merged["c_parent"], merged["gamma"],
        merged["cg"], merged["g2"], merged["h2"], merged["c_child"],
        proof, transcript or t(),
    )


class TestHiddenEdge:
    def test_accepts_valid(self, edge_setting, rng):
        proof = _prove(edge_setting, rng)
        assert _verify(edge_setting, proof)

    def test_rejects_wrong_child_commitment(self, edge_setting, rng):
        s = edge_setting
        proof = _prove(s, rng)
        assert not _verify(s, proof, c_child=s["cg"].mul(s["c_child"], s["g2"]))

    def test_rejects_wrong_parent_commitment(self, edge_setting, rng):
        s = edge_setting
        proof = _prove(s, rng)
        assert not _verify(s, proof, c_parent=s["pg"].mul(s["c_parent"], s["g1"]))

    def test_rejects_wrong_gamma(self, edge_setting, rng):
        s = edge_setting
        proof = _prove(s, rng)
        other_gamma = s["pg"].exp(s["gamma"], 2)
        assert not _verify(s, proof, gamma=other_gamma)

    def test_rejects_tampered_round(self, edge_setting, rng):
        s = edge_setting
        proof = _prove(s, rng)
        responses = list(proof.responses)
        w, v, sig = responses[0]
        responses[0] = ((w + 1) % s["pg"].q, v, sig)
        bad = dataclasses.replace(proof, responses=tuple(responses))
        assert not _verify(s, bad)

    def test_rejects_transcript_mismatch(self, edge_setting, rng):
        proof = _prove(edge_setting, rng, transcript=t(b"x"))
        assert not _verify(edge_setting, proof, transcript=t(b"y"))

    def test_rejects_round_count_zero(self, edge_setting, rng):
        with pytest.raises(ValueError):
            _prove(edge_setting, rng, rounds=0)

    def test_prover_validates_openings(self, edge_setting, rng):
        s = dict(edge_setting)
        s["parent"] = (s["parent"] + 1) % s["pg"].q
        with pytest.raises(ValueError):
            _prove(s, rng)

    def test_rejects_tower_mismatch(self, edge_setting, rng, schnorr_group):
        s = edge_setting
        with pytest.raises(ValueError):
            prove_edge(
                s["pg"], s["g1"], s["h1"], s["c_parent"], s["gamma"],
                schnorr_group, schnorr_group.g, schnorr_group.g, 1,
                s["parent"], s["r1"], s["r2"], rng, t(),
            )

    def test_proof_size_scales_with_rounds(self, edge_setting, rng):
        p6 = _prove(edge_setting, rng, rounds=6)
        p12 = _prove(edge_setting, rng, rounds=12)
        assert p12.encoded_size(16, 16) == 2 * p6.encoded_size(16, 16)

    def test_commitments_hide_parent(self, edge_setting, rng):
        """Two proofs about the same parent share no commitment values."""
        p1 = _prove(edge_setting, rng)
        p2 = _prove(edge_setting, rng)
        assert set(p1.commitments_u).isdisjoint(p2.commitments_u)


class TestRevealedEdge:
    @pytest.fixture()
    def revealed(self, tower3, rng):
        pg = tower3.group(1)
        g1 = tower3.extra_generators[1][GEN_COMMIT_G]
        h1 = tower3.extra_generators[1][GEN_COMMIT_H]
        gamma = tower3.extra_generators[1][GEN_LEFT]
        parent = rng.randrange(1, pg.q)
        child = pg.exp(gamma, parent)
        r = pg.random_exponent(rng)
        c_parent = pg.mul(pg.exp(g1, parent), pg.exp(h1, r))
        return pg, g1, h1, gamma, parent, child, r, c_parent

    def test_accepts_valid(self, revealed, rng):
        pg, g1, h1, gamma, parent, child, r, c_parent = revealed
        proof = prove_revealed_edge(pg, g1, h1, c_parent, gamma, child, parent, r, rng, t())
        assert verify_revealed_edge(pg, g1, h1, c_parent, gamma, child, proof, t())

    def test_rejects_wrong_child(self, revealed, rng):
        pg, g1, h1, gamma, parent, child, r, c_parent = revealed
        proof = prove_revealed_edge(pg, g1, h1, c_parent, gamma, child, parent, r, rng, t())
        assert not verify_revealed_edge(
            pg, g1, h1, c_parent, gamma, pg.mul(child, gamma), proof, t()
        )

    def test_rejects_wrong_commitment(self, revealed, rng):
        pg, g1, h1, gamma, parent, child, r, c_parent = revealed
        proof = prove_revealed_edge(pg, g1, h1, c_parent, gamma, child, parent, r, rng, t())
        assert not verify_revealed_edge(
            pg, g1, h1, pg.mul(c_parent, g1), gamma, child, proof, t()
        )

    def test_rejects_tampered_responses(self, revealed, rng):
        pg, g1, h1, gamma, parent, child, r, c_parent = revealed
        proof = prove_revealed_edge(pg, g1, h1, c_parent, gamma, child, parent, r, rng, t())
        bad = dataclasses.replace(proof, z1=(proof.z1 + 1) % pg.q)
        assert not verify_revealed_edge(pg, g1, h1, c_parent, gamma, child, bad, t())

    def test_prover_validates(self, revealed, rng):
        pg, g1, h1, gamma, parent, child, r, c_parent = revealed
        with pytest.raises(ValueError):
            prove_revealed_edge(pg, g1, h1, c_parent, gamma, child, parent + 1, r, rng, t())
        with pytest.raises(ValueError):
            prove_revealed_edge(
                pg, g1, h1, c_parent, gamma, pg.mul(child, gamma), parent, r, rng, t()
            )

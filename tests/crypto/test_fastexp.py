"""Fixed-base comb tables and simultaneous multi-exponentiation.

Parity suites pin every fast path against the naive loop it replaces
(``pow`` / per-element square-and-multiply / :func:`tate_pairing`),
including the edge cases the batch verifiers rely on: empty inputs,
zero scalars, scalars far above the group order, single elements, and
mismatched lengths (which must raise).
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.crypto import fastexp
from repro.crypto.pairing import TatePairing, generate_curve
from repro.crypto.pairing.curve import Point
from repro.crypto.pairing.tate import MillerTable, multi_operate, tate_pairing

# RFC 2409 Oakley Group 2: a well-known 1024-bit safe prime (generating
# one takes minutes on the bench VM; hardcoding keeps tests fast)
P1024 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF",
    16,
)
Q1024 = (P1024 - 1) // 2
G1024 = 4  # 2^2 — a quadratic residue, hence of order Q1024


@pytest.fixture(autouse=True)
def _isolated_fastexp():
    """Each test starts with empty caches and default configuration."""
    previous = fastexp.configure()
    fastexp.reset()
    yield
    fastexp.configure(**previous)
    fastexp.reset()


# ---------------------------------------------------------------------------
# FixedBaseTable
# ---------------------------------------------------------------------------

class TestFixedBaseTable:
    @pytest.mark.parametrize("teeth,splits", [(8, 4), (6, 4), (10, 2), (1, 1), (3, 5)])
    def test_parity_with_pow(self, teeth, splits):
        rng = random.Random(0xFA57)
        table = fastexp.FixedBaseTable(G1024, P1024, bits=160, teeth=teeth, splits=splits)
        for _ in range(16):
            e = rng.getrandbits(160)
            assert table.exp(e) == pow(G1024, e, P1024)

    def test_boundary_exponents(self):
        table = fastexp.FixedBaseTable(G1024, P1024, bits=160)
        for e in (0, 1, 2, (1 << 160) - 1):
            assert table.exp(e) == pow(G1024, e, P1024)

    def test_exponent_above_bits_falls_back_exactly(self):
        table = fastexp.FixedBaseTable(G1024, P1024, bits=64)
        e = 1 << 100  # outside the precomputed range
        assert table.exp(e) == pow(G1024, e, P1024)

    def test_order_reduction(self):
        rng = random.Random(1)
        table = fastexp.FixedBaseTable(G1024, P1024, order=Q1024)
        e = rng.getrandbits(2048)  # scalar far above the group order
        assert table.exp(e) == pow(G1024, e % Q1024, P1024)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            fastexp.FixedBaseTable(G1024, P1024)  # no bits, no order
        with pytest.raises(ValueError):
            fastexp.FixedBaseTable(G1024, P1024, bits=0)
        with pytest.raises(ValueError):
            fastexp.FixedBaseTable(G1024, P1024, bits=64, teeth=0)
        with pytest.raises(ValueError):
            fastexp.FixedBaseTable(G1024, 2, bits=64)

    def test_table_size_accounting(self):
        table = fastexp.FixedBaseTable(G1024, P1024, bits=160, teeth=8, splits=4)
        assert table.table_size == 4 * 256


class TestGenericFixedBaseTable:
    def test_point_parity(self, session_rng):
        params = generate_curve(32, session_rng)
        backend = TatePairing(params)
        base = backend.random_element(session_rng)
        table = fastexp.GenericFixedBaseTable(
            backend.identity(), lambda a, b: a + b, base,
            backend.order.bit_length(), teeth=4, splits=2,
        )
        for _ in range(8):
            s = session_rng.randrange(backend.order)
            assert table.exp(s) == base.multiply(s)

    def test_rejects_out_of_range(self):
        table = fastexp.GenericFixedBaseTable(1, lambda a, b: a * b % P1024, G1024, bits=16)
        with pytest.raises(ValueError):
            table.exp(1 << 20)
        with pytest.raises(ValueError):
            table.exp(-1)


# ---------------------------------------------------------------------------
# multi_exp — parity and edge cases
# ---------------------------------------------------------------------------

def _naive_product(bases, exps, p):
    acc = 1
    for b, e in zip(bases, exps):
        acc = acc * pow(b, e, p) % p
    return acc


class TestMultiExp:
    def test_parity_with_naive_loop(self):
        rng = random.Random(0x5A5A)
        bases = [pow(G1024, rng.getrandbits(64), P1024) for _ in range(6)]
        exps = [rng.getrandbits(160) for _ in range(6)]
        assert fastexp.multi_exp(bases, exps, P1024) == _naive_product(bases, exps, P1024)

    def test_empty_input(self):
        assert fastexp.multi_exp([], [], P1024) == 1

    def test_all_zero_scalars(self):
        assert fastexp.multi_exp([G1024, 7], [0, 0], P1024) == 1

    def test_some_zero_scalars_skipped(self):
        rng = random.Random(2)
        bases = [G1024, 7, 11]
        exps = [rng.getrandbits(80), 0, rng.getrandbits(80)]
        assert fastexp.multi_exp(bases, exps, P1024) == _naive_product(bases, exps, P1024)

    def test_single_element(self):
        e = random.Random(3).getrandbits(160)
        assert fastexp.multi_exp([G1024], [e], P1024) == pow(G1024, e, P1024)

    def test_scalar_far_above_group_order(self):
        # multi_exp works over the integers: no implicit reduction
        e = Q1024 * 5 + 12345
        assert fastexp.multi_exp([G1024], [e], P1024) == pow(G1024, e, P1024)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            fastexp.multi_exp([G1024, 7], [1], P1024)
        with pytest.raises(ValueError):
            fastexp.multi_exp([G1024], [1, 2], P1024)

    def test_negative_scalar_raises(self):
        with pytest.raises(ValueError):
            fastexp.multi_exp([G1024], [-1], P1024)

    def test_window_sizes(self):
        rng = random.Random(4)
        bases = [pow(G1024, rng.getrandbits(32), P1024) for _ in range(4)]
        exps = [rng.getrandbits(96) for _ in range(4)]
        want = _naive_product(bases, exps, P1024)
        for window in (1, 2, 4, 6):
            assert fastexp.multi_exp(bases, exps, P1024, window=window) == want


class TestMultiExpGeneric:
    def test_matches_pairing_multi_operate(self, session_rng):
        """The generic Straus here and the one in tate.py must agree."""
        params = generate_curve(32, session_rng)
        backend = TatePairing(params)
        points = [backend.random_element(session_rng) for _ in range(5)]
        scalars = [session_rng.randrange(backend.order) for _ in range(5)]
        via_fastexp = fastexp.multi_exp_generic(
            backend.identity(), lambda a, b: a + b, points, scalars
        )
        via_tate = multi_operate(backend.identity(), lambda a, b: a + b, points, scalars)
        naive = backend.identity()
        for pt, s in zip(points, scalars):
            naive = naive + pt.multiply(s)
        assert via_fastexp == via_tate == naive

    def test_gt_multi_exp_parity(self, tate_backend, session_rng):
        gt = [tate_backend.gt_generator().pow(session_rng.randrange(1, tate_backend.order))
              for _ in range(4)]
        scalars = [session_rng.randrange(tate_backend.order) for _ in range(4)]
        naive = tate_backend.gt_one()
        for el, s in zip(gt, scalars):
            naive = naive * el.pow(s)
        assert tate_backend.gt_multi_exp(gt, scalars) == naive
        assert fastexp.multi_exp_generic(
            tate_backend.gt_one(), lambda a, b: a * b, gt, scalars
        ) == naive

    def test_edge_cases(self):
        op = lambda a, b: a + b
        assert fastexp.multi_exp_generic(0, op, [], []) == 0
        assert fastexp.multi_exp_generic(0, op, [5, 9], [0, 0]) == 0
        with pytest.raises(ValueError):
            fastexp.multi_exp_generic(0, op, [5], [1, 2])
        with pytest.raises(ValueError):
            fastexp.multi_exp_generic(0, op, [5], [-3])


# ---------------------------------------------------------------------------
# the promotion cache and the module-level exp_fixed
# ---------------------------------------------------------------------------

class TestPromotionCache:
    def test_promotes_after_threshold(self):
        built = []
        cache = fastexp.PromotionCache(
            "t.promote", lambda k: built.append(k) or k, promote_after=3
        )
        for _ in range(3):
            assert cache.get("a", "a") is None  # below threshold
        assert cache.get("a", "a") == "a"  # 4th use builds
        assert built == ["a"]
        assert cache.get("a", "a") == "a"  # now a hit
        assert cache.stats.misses == 3 and cache.stats.builds == 1 and cache.stats.hits == 1

    def test_force_builds_immediately(self):
        cache = fastexp.PromotionCache("t.force", lambda k: k * 2, promote_after=10)
        assert cache.force("x", "x") == "xx"
        assert cache.get("x", "x") == "xx"
        assert cache.stats.builds == 1 and cache.stats.hits == 1

    def test_lru_eviction_bound(self):
        cache = fastexp.PromotionCache("t.lru", lambda k: k, max_entries=2, promote_after=0)
        for key in ("a", "b", "c"):
            cache.force(key, key)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # "a" was evicted; "b" and "c" survive
        assert cache.get("b", "b") == "b"
        assert cache.get("c", "c") == "c"

    def test_clear_resets_everything(self):
        cache = fastexp.PromotionCache("t.clear", lambda k: k, promote_after=0)
        cache.force("a", "a")
        cache.clear()
        assert len(cache) == 0 and cache.stats.builds == 0


class TestExpFixed:
    def test_small_modulus_bypasses(self, schnorr_group):
        # 64-bit group < min_modulus_bits: always the plain pow path
        grp = schnorr_group
        e = 123456789
        assert grp.exp_fixed(grp.g, e) == grp.exp(grp.g, e)
        stats = fastexp.stats()["fastexp.int"]
        assert stats["bypasses"] >= 1 and stats["builds"] == 0

    def test_large_modulus_promotes_and_hits(self):
        fastexp.configure(promote_after=2)
        for i in range(6):
            got = fastexp.exp_fixed(G1024, P1024, 1000 + i, order=Q1024)
            assert got == pow(G1024, 1000 + i, P1024)
        stats = fastexp.stats()["fastexp.int"]
        assert stats["builds"] == 1
        assert stats["hits"] == 3  # uses 4..6 served from the table
        assert stats["tables"] == 1

    def test_disabled_bypasses(self):
        fastexp.configure(enabled=False)
        assert not fastexp.enabled()
        got = fastexp.exp_fixed(G1024, P1024, 777, order=Q1024)
        assert got == pow(G1024, 777, P1024)
        assert fastexp.stats()["fastexp.int"]["builds"] == 0

    def test_warm_builds_eagerly(self):
        assert fastexp.warm_fixed_base(G1024, P1024, order=Q1024)
        stats = fastexp.stats()["fastexp.int"]
        assert stats["builds"] == 1
        assert fastexp.exp_fixed(G1024, P1024, 424242, order=Q1024) == pow(
            G1024, 424242, P1024
        )
        assert fastexp.stats()["fastexp.int"]["hits"] == 1

    def test_warm_is_gated_too(self, schnorr_group):
        assert not fastexp.warm_fixed_base(schnorr_group.g, schnorr_group.p,
                                           order=schnorr_group.q)

    def test_env_override_disables(self, monkeypatch):
        # the env knob is read at import; emulate by reloading config
        monkeypatch.setenv("REPRO_FASTEXP", "0")
        import importlib

        import repro.crypto.fastexp as fe_mod
        state = fe_mod.configure()
        try:
            importlib.reload(fe_mod)
            assert not fe_mod.enabled()
        finally:
            importlib.reload(fe_mod)
            monkeypatch.delenv("REPRO_FASTEXP")
            importlib.reload(fe_mod)
            fe_mod.configure(**{k: v for k, v in state.items()})


# ---------------------------------------------------------------------------
# Miller tables
# ---------------------------------------------------------------------------

class TestMillerTable:
    @pytest.fixture(scope="class")
    def curve_backend(self):
        rng = random.Random(0x417)
        params = generate_curve(40, rng)
        return params, TatePairing(params), rng

    def test_pair_parity_over_random_points(self, curve_backend):
        params, backend, rng = curve_backend
        for _ in range(3):
            P = backend.random_element(rng)
            table = MillerTable(params, P)
            for _ in range(4):
                Q = backend.random_element(rng)
                assert table.pair(Q) == tate_pairing(params, P, Q)

    def test_pair_infinity(self, curve_backend):
        params, backend, rng = curve_backend
        table = MillerTable(params, backend.g)
        assert table.pair(backend.identity()) == backend.gt_one()

    def test_rejects_infinity_base(self, curve_backend):
        params, backend, _ = curve_backend
        with pytest.raises(ValueError):
            MillerTable(params, backend.identity())

    def test_backend_pair_uses_table_after_promotion(self, curve_backend):
        params, _, rng = curve_backend
        backend = TatePairing(params)  # fresh caches
        P = backend.random_element(rng)
        Q = backend.random_element(rng)
        ref = tate_pairing(params, P, Q)
        for _ in range(5):
            assert backend.pair(P, Q) == ref
        stats = backend._pair_tables.stats
        assert stats.builds >= 1 and stats.hits >= 1

    def test_symmetry_slot_swap(self, curve_backend):
        """A table for the *second* argument serves via ê(a,b) = ê(b,a)."""
        params, _, rng = curve_backend
        backend = TatePairing(params)
        P = backend.random_element(rng)
        Q = backend.random_element(rng)
        backend.warm_pair(Q)  # only the second slot is warmed
        assert backend.pair(P, Q) == tate_pairing(params, P, Q)
        assert backend._pair_tables.stats.hits >= 1

    def test_pickle_drops_and_rebuilds_caches(self, curve_backend):
        params, _, rng = curve_backend
        backend = TatePairing(params)
        backend.warm_pair(backend.g)
        clone = pickle.loads(pickle.dumps(backend))
        assert len(clone._pair_tables) == 0  # caches not shipped
        P = backend.random_element(rng)
        assert clone.pair(backend.g, P) == backend.pair(backend.g, P)

"""Tables on vs off must not change a single bit of any decision.

The acceptance criterion for the fast-exp work: every ZKP verifier and
CL verification produces *bit-identical* accept/reject decisions (and
provers bit-identical proof objects) whether the fixed-base tables are
enabled — here forced on with ``promote_after=0`` and no modulus gate,
so even the small test groups take the table path — or globally
disabled.  Each scenario runs twice from identical RNG seeds under the
two configurations and compares full object equality.
"""

from __future__ import annotations

import random

from repro.crypto import fastexp
from repro.crypto.cl_sig import cl_blind_issue, cl_keygen, cl_sign, cl_verify
from repro.crypto.hashing import Transcript
from repro.crypto.zkp.committed_double_log import (
    prove_edge,
    prove_revealed_edge,
    verify_edge,
    verify_revealed_edge,
)
from repro.crypto.zkp.or_proof import prove_or, verify_or
from repro.crypto.zkp.range_proof import commit_value, prove_range, verify_range
from repro.crypto.zkp.representation import prove_representation, verify_representation
from repro.crypto.zkp.schnorr import prove_dlog, verify_dlog
from repro.ecash.batch import batch_verify_spends
from repro.ecash.dec import begin_withdrawal, finish_withdrawal
from repro.ecash.spend import create_spend
from repro.ecash.tree import NodeId


def _run_both(scenario):
    """Run *scenario* with tables forced on, then off; return both results."""
    forced_on = fastexp.configure(enabled=True, promote_after=0, min_modulus_bits=1)
    fastexp.reset()
    try:
        with_tables = scenario()
    finally:
        fastexp.configure(**forced_on)
    disabled = fastexp.configure(enabled=False)
    fastexp.reset()
    try:
        without_tables = scenario()
    finally:
        fastexp.configure(**disabled)
        fastexp.reset()
    return with_tables, without_tables


def test_schnorr_dlog_identical(schnorr_group):
    grp = schnorr_group

    def scenario():
        rng = random.Random(101)
        x = grp.random_exponent(rng)
        y = grp.power(x)
        proof = prove_dlog(grp, grp.g, y, x, rng, Transcript(b"t"))
        ok = verify_dlog(grp, grp.g, y, proof, Transcript(b"t"))
        bad = verify_dlog(grp, grp.g, grp.mul(y, grp.g), proof, Transcript(b"t"))
        return proof, ok, bad

    on, off = _run_both(scenario)
    assert on == off
    assert on[1] is True and on[2] is False


def test_representation_identical(schnorr_group):
    grp = schnorr_group
    bases = [grp.g, grp.derive_generator(b"h1"), grp.derive_generator(b"h2")]

    def scenario():
        rng = random.Random(102)
        witnesses = [grp.random_exponent(rng) for _ in bases]
        statement = 1
        for b, w in zip(bases, witnesses):
            statement = grp.mul(statement, grp.exp(b, w))
        proof = prove_representation(grp, bases, statement, witnesses, rng, Transcript(b"t"))
        ok = verify_representation(grp, bases, statement, proof, Transcript(b"t"))
        bad = verify_representation(
            grp, bases, grp.mul(statement, grp.g), proof, Transcript(b"t")
        )
        return proof, ok, bad

    on, off = _run_both(scenario)
    assert on == off
    assert on[1] is True and on[2] is False


def test_or_proof_identical(schnorr_group):
    grp = schnorr_group
    h = grp.derive_generator(b"or-base")

    def scenario():
        rng = random.Random(103)
        w = grp.random_exponent(rng)
        statements = [grp.exp(h, w), grp.random_element(rng), grp.random_element(rng)]
        proof = prove_or(grp, h, statements, known_index=0, witness=w,
                         rng=rng, transcript=Transcript(b"t"))
        ok = verify_or(grp, h, statements, proof, Transcript(b"t"))
        bad = verify_or(grp, h, list(reversed(statements)), proof, Transcript(b"t"))
        return proof, ok, bad

    on, off = _run_both(scenario)
    assert on == off
    assert on[1] is True and on[2] is False


def test_range_proof_identical(schnorr_group):
    grp = schnorr_group
    g = grp.derive_generator(b"range-g")
    h = grp.derive_generator(b"range-h")

    def scenario():
        rng = random.Random(104)
        value = 11
        commitment, r = commit_value(grp, g, h, value, rng)
        proof = prove_range(grp, g, h, commitment, value, r, bits=5,
                            rng=rng, transcript=Transcript(b"t"))
        ok = verify_range(grp, g, h, commitment, proof, Transcript(b"t"))
        bad = verify_range(grp, g, h, grp.mul(commitment, g), proof, Transcript(b"t"))
        return commitment, proof, ok, bad

    on, off = _run_both(scenario)
    assert on == off
    assert on[2] is True and on[3] is False


def test_committed_double_log_identical(tower3):
    grp_p = tower3.group(0)
    grp_c = tower3.group(1)
    gens_p = tower3.extra_generators[0]
    gens_c = tower3.extra_generators[1]
    g, h, gamma = gens_p[2], gens_p[3], gens_p[0]
    g2, h2 = gens_c[2], gens_c[3]

    def scenario():
        rng = random.Random(105)
        parent = rng.randrange(1, grp_p.q)
        r1 = rng.randrange(grp_p.q)
        r2 = rng.randrange(grp_c.q)
        child = grp_p.exp(gamma, parent)
        c_par = grp_p.mul(grp_p.exp(g, parent), grp_p.exp(h, r1))
        c_ch = grp_c.mul(grp_c.exp(g2, child), grp_c.exp(h2, r2))
        proof = prove_edge(grp_p, g, h, c_par, gamma, grp_c, g2, h2, c_ch,
                           parent, r1, r2, rng, Transcript(b"t"), rounds=8)
        ok = verify_edge(grp_p, g, h, c_par, gamma, grp_c, g2, h2, c_ch,
                         proof, Transcript(b"t"))
        rev = prove_revealed_edge(grp_p, g, h, c_par, gamma, child,
                                  parent, r1, rng, Transcript(b"r"))
        ok_rev = verify_revealed_edge(grp_p, g, h, c_par, gamma, child,
                                      rev, Transcript(b"r"))
        bad = verify_revealed_edge(grp_p, g, h, c_par, gamma,
                                   grp_p.mul(child, gamma), rev, Transcript(b"r"))
        return proof, ok, rev, ok_rev, bad

    on, off = _run_both(scenario)
    assert on == off
    assert on[1] is True and on[3] is True and on[4] is False


def test_cl_verify_identical(tate_backend):
    backend = tate_backend

    def scenario():
        rng = random.Random(106)
        keypair = cl_keygen(backend, rng)
        sig = cl_sign(backend, keypair, 42, rng)
        ok = cl_verify(backend, keypair.public, 42, sig)
        bad = cl_verify(backend, keypair.public, 43, sig)
        return (
            backend.element_encode(sig.a),
            backend.element_encode(sig.b),
            backend.element_encode(sig.c),
            ok,
            bad,
        )

    on, off = _run_both(scenario)
    assert on == off
    assert on[3] is True and on[4] is False


def test_spend_and_batch_verify_identical(dec_params):
    """End to end: withdraw, spend, batch-verify — identical either way."""
    params = dec_params

    def scenario():
        rng = random.Random(107)
        bank_kp = cl_keygen(params.backend, rng)
        secret, request = begin_withdrawal(params, rng)
        signature = cl_blind_issue(params.backend, bank_kp, request, rng)
        coin = finish_withdrawal(params, bank_kp.public, secret, signature)
        tokens = [
            create_spend(params, bank_kp.public, coin.secret, coin.signature,
                         NodeId(2, i), rng)
            for i in range(2)
        ]
        verdicts = batch_verify_spends(params, bank_kp.public, tokens, rng)
        return [t.node_key for t in tokens], verdicts

    on, off = _run_both(scenario)
    assert on == off
    assert all(on[1])

"""Tests for hashing helpers and the Fiat–Shamir transcript."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import Transcript, hash_to_int, hash_to_range, sha256


class TestSha256:
    def test_deterministic(self):
        assert sha256(b"a", b"b") == sha256(b"a", b"b")

    def test_length_prefixing_blocks_concat_ambiguity(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert sha256(b"ab", b"c") != sha256(b"a", b"bc")

    def test_digest_size(self):
        assert len(sha256(b"x")) == 32


class TestHashToRange:
    @given(st.integers(min_value=1, max_value=10**30), st.binary(max_size=64))
    @settings(max_examples=50)
    def test_in_range(self, upper, data):
        v = hash_to_range(upper, data)
        assert 0 <= v < upper

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            hash_to_range(0, b"x")

    def test_spread_over_small_range(self):
        """Counter-mode extension should cover a small range uniformly-ish."""
        seen = {hash_to_range(10, b"x", i.to_bytes(4, "big")) for i in range(200)}
        assert seen == set(range(10))

    def test_hash_to_int_256bits(self):
        assert 0 <= hash_to_int(b"q") < (1 << 256)


class TestTranscript:
    def test_same_absorptions_same_challenge(self):
        t1, t2 = Transcript(b"d"), Transcript(b"d")
        for t in (t1, t2):
            t.absorb_int(42)
            t.absorb(b"hello")
        assert t1.challenge(10**9) == t2.challenge(10**9)

    def test_domain_separation(self):
        t1, t2 = Transcript(b"alpha"), Transcript(b"beta")
        t1.absorb_int(1)
        t2.absorb_int(1)
        assert t1.challenge(10**9) != t2.challenge(10**9)

    def test_absorption_order_matters(self):
        t1, t2 = Transcript(b"d"), Transcript(b"d")
        t1.absorb_int(1)
        t1.absorb_int(2)
        t2.absorb_int(2)
        t2.absorb_int(1)
        assert t1.challenge(10**9) != t2.challenge(10**9)

    def test_sequential_challenges_differ(self):
        t = Transcript(b"d")
        t.absorb_int(7)
        assert t.challenge(10**12) != t.challenge(10**12)

    def test_challenge_after_divergence_differs(self):
        t1, t2 = Transcript(b"d"), Transcript(b"d")
        t1.absorb_int(1)
        c1 = t1.challenge(10**9)
        t2.absorb_int(1)
        c2 = t2.challenge(10**9)
        assert c1 == c2
        t1.absorb_int(5)
        t2.absorb_int(6)
        assert t1.challenge(10**9) != t2.challenge(10**9)

    def test_challenge_bytes_length(self):
        t = Transcript(b"d")
        assert len(t.challenge_bytes(100)) == 100

    def test_fork_independent(self):
        t = Transcript(b"d")
        t.absorb_int(3)
        f1 = t.fork(b"left")
        f2 = t.fork(b"right")
        assert f1.challenge(10**9) != f2.challenge(10**9)
        # forking must not disturb the parent
        t_again = Transcript(b"d")
        t_again.absorb_int(3)
        assert t.challenge(10**9) == t_again.challenge(10**9)

    def test_absorb_ints_equivalent(self):
        t1, t2 = Transcript(b"d"), Transcript(b"d")
        t1.absorb_ints(1, 2, 3)
        for v in (1, 2, 3):
            t2.absorb_int(v)
        assert t1.challenge(997) == t2.challenge(997)

"""Tests for the Chaum RSA blind signature."""

from __future__ import annotations

import random

import pytest

from repro.crypto.blind import (
    BlindClient,
    BlindSigner,
    message_representative,
    verify_blind_signature,
)


@pytest.fixture()
def signer(rsa_key):
    return BlindSigner(rsa_key)


class TestBlindSignature:
    def test_full_flow(self, signer, rng):
        client = BlindClient(signer.public_key, rng)
        blinded = client.blind(b"coin-001")
        sig = client.unblind(signer.sign_blinded(blinded))
        assert verify_blind_signature(signer.public_key, b"coin-001", sig)

    def test_signature_invalid_for_other_message(self, signer, rng):
        client = BlindClient(signer.public_key, rng)
        sig = client.unblind(signer.sign_blinded(client.blind(b"coin-001")))
        assert not verify_blind_signature(signer.public_key, b"coin-002", sig)

    def test_blindness_signer_sees_random_looking_value(self, signer, rng):
        """The blinded values of the same message must differ per run."""
        c1 = BlindClient(signer.public_key, rng)
        c2 = BlindClient(signer.public_key, rng)
        assert c1.blind(b"same") != c2.blind(b"same")

    def test_blinded_value_not_representative(self, signer, rng):
        client = BlindClient(signer.public_key, rng)
        blinded = client.blind(b"m")
        assert blinded != message_representative(b"m", signer.public_key.n)

    def test_unblind_without_blind_raises(self, signer, rng):
        client = BlindClient(signer.public_key, rng)
        with pytest.raises(RuntimeError):
            client.unblind(12345)

    def test_unblind_consumes_state(self, signer, rng):
        client = BlindClient(signer.public_key, rng)
        client.unblind(signer.sign_blinded(client.blind(b"x")))
        with pytest.raises(RuntimeError):
            client.unblind(1)

    def test_signer_range_validation(self, signer):
        with pytest.raises(ValueError):
            signer.sign_blinded(0)
        with pytest.raises(ValueError):
            signer.sign_blinded(signer.sk.n)

    def test_verify_range_validation(self, signer):
        assert not verify_blind_signature(signer.public_key, b"m", 0)
        assert not verify_blind_signature(signer.public_key, b"m", signer.public_key.n)

    def test_unforgeability_smoke(self, signer, rng):
        """A signature picked at random should virtually never verify."""
        hits = sum(
            verify_blind_signature(signer.public_key, b"m", rng.randrange(1, signer.public_key.n))
            for _ in range(50)
        )
        assert hits == 0

    def test_many_messages(self, signer):
        rng = random.Random(5)
        for i in range(10):
            msg = f"coin-{i}".encode()
            client = BlindClient(signer.public_key, rng)
            sig = client.unblind(signer.sign_blinded(client.blind(msg)))
            assert verify_blind_signature(signer.public_key, msg, sig)

"""Golden regression vectors.

These pin exact outputs of the deterministic algorithms so that an
accidental change to a hash domain, a derivation rule, the codec wire
format, or the precomputed chain table shows up as a loud, specific
failure instead of a silent incompatibility (old snapshots and exported
parameter blobs must stay readable across versions).

When a change is *intentional*, update the vector and bump the affected
wire-format magic (see ``repro/core/ledger.py`` and
``repro/ecash/params_io.py``).
"""

from __future__ import annotations

import random

from repro.crypto import rsa
from repro.crypto.cunningham import known_chain
from repro.crypto.hashing import hash_to_range, sha256
from repro.crypto.partial_blind import derive_exponent
from repro.net.codec import decode, encode


class TestGoldenVectors:
    def test_known_chain_tail_derivation(self):
        """The tail-carving rule is part of the parameter format."""
        assert known_chain(13).start == 190810084461084659
        assert known_chain(14).start == 95405042230542329

    def test_rsa_keygen_deterministic(self):
        """Seeded keygen is the reproducibility contract of the library."""
        k = rsa.generate_keypair(256, random.Random(12345))
        assert k.n == (
            69287938976617489468353787843249337093577349545720816361171578347031493102321
        )

    def test_transcript_hash_domain(self):
        assert sha256(b"repro", b"golden").hex() == (
            "864b8b35523458848c31572525ffe0d1638f2ae13feab086584e3ea649b25b03"
        )

    def test_hash_to_range(self):
        assert hash_to_range(10**12, b"golden") == 481257678002

    def test_pbs_exponent_derivation(self):
        """Signer and requester derive this independently — it is wire
        format in all but name."""
        assert derive_exponent(b"golden-serial", 0) == (
            249109602954405820709804122971502216643
        )

    def test_codec_wire_format(self):
        value = {"a": [1, (2, b"x")], "b": -3.5}
        blob = bytes.fromhex("0902060161070203010108020301020501780601620bc00c000000000000")
        assert encode(value) == blob
        assert decode(blob) == value

"""Cross-module integration scenarios.

These tests run whole-market scenarios spanning many modules at once:
workload generation → protocol runs → bank state → adversary analysis.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.attacks.adversary import CuriousMAView
from repro.attacks.denomination import run_denomination_attack
from repro.core.ppms_dec import PPMSdecSession
from repro.core.ppms_pbs import PPMSpbsSession
from repro.workloads.population import generate_market
from repro.workloads.sensing import noise_map_reading


class TestFullDecMarket:
    def test_multi_job_market(self, dec_params, rng):
        """Several jobs with several SPs each; every balance must add up."""
        session = PPMSdecSession(dec_params, rng, rsa_bits=512)
        spec = generate_market(rng, level=dec_params.tree_level, n_jobs=3,
                               participants_per_job=(1, 2))
        np_rng = np.random.default_rng(0)

        sp_counter = 0
        jos = []
        for i, job in enumerate(spec.jobs):
            jo = session.new_job_owner(f"jo-{i}", funds=64)
            jos.append(jo)
            sps = []
            for _ in range(job.n_participants):
                sps.append(session.new_participant(f"sp-{sp_counter}"))
                sp_counter += 1
            session.run_job(jo, sps, payment=job.payment,
                            description=job.description,
                            data_payload=noise_map_reading(np_rng))

        bank = session.ma.bank
        total_funds = 64 * len(spec.jobs)
        held = sum(bank.accounts.values()) + sum(jo.spendable_balance() for jo in jos)
        assert held == total_funds
        assert len(session.ma.board.jobs()) == 3

    def test_ma_view_attack_on_real_protocol_run(self, dec_params, rng):
        """Wire the curious-MA view to a real run and attack the deposits."""
        session = PPMSdecSession(dec_params, rng, rsa_bits=512, break_algorithm="epcba")
        view = CuriousMAView()
        view.attach(session.transport)

        jo = session.new_job_owner("jo-1", funds=16)
        sp = session.new_participant("sp-1")
        payment = 5
        session.run_job(jo, [sp], payment=payment, description="health study")
        profile = session.ma.board.jobs()[0]
        view.observe_job(profile.job_id, profile.payment)
        for event in session.ma.deposit_events:
            view.observe_deposit(event.aid, event.amount, event.time)

        # single published job: the attack trivially "succeeds" but must
        # at least be consistent (true job covered)
        result = run_denomination_attack(
            view.published_jobs, profile.job_id, view.deposits_of("sp-1")
        )
        assert result.true_job_covered
        assert sum(view.deposits_of("sp-1")) == payment

    def test_deposited_amounts_are_break_denominations(self, dec_params, rng):
        session = PPMSdecSession(dec_params, rng, rsa_bits=512, break_algorithm="pcba")
        jo = session.new_job_owner("jo-1", funds=16)
        sp = session.new_participant("sp-1")
        session.run_job(jo, [sp], payment=5)
        amounts = sorted(e.amount for e in session.ma.deposit_events)
        assert amounts == [1, 4]  # 5 = 101b


class TestFullPbsMarket:
    def test_unitary_market_many_jobs(self, rng):
        session = PPMSpbsSession(rng, rsa_bits=512)
        jos = [session.new_job_owner(funds=4) for _ in range(2)]
        sps = [session.new_participant() for _ in range(3)]
        for jo in jos:
            session.run_job(jo, sps)
        bank = session.ma.bank
        for sp in sps:
            assert bank.balance(sp.account_pub.fingerprint()) == 2
        for jo in jos:
            assert bank.balance(jo.account_pub.fingerprint()) == 1

    def test_serials_isolated_per_jo(self, rng):
        """Serial freshness is tracked per JO: two JOs may coincidentally
        sign equal serials without blocking each other."""
        session = PPMSpbsSession(rng, rsa_bits=512)
        jo1 = session.new_job_owner(funds=2)
        jo2 = session.new_job_owner(funds=2)
        sp = session.new_participant()
        session.run_job(jo1, [sp])
        session.run_job(jo2, [sp])
        assert session.ma.bank.balance(sp.account_pub.fingerprint()) == 2


class TestMechanismComparison:
    def test_pbs_is_faster_and_lighter(self, dec_params, rng):
        """Fig. 5 + Table II in one assertion: per complete round the
        light-weight mechanism costs less in ops and bytes."""
        import time

        dec_session = PPMSdecSession(dec_params, rng, rsa_bits=512)
        jo_d = dec_session.new_job_owner("jo", funds=16)
        sp_d = dec_session.new_participant("sp")
        t0 = time.perf_counter()
        dec_session.run_job(jo_d, [sp_d], payment=1)
        dec_time = time.perf_counter() - t0

        pbs_session = PPMSpbsSession(rng, rsa_bits=512)
        jo_p = pbs_session.new_job_owner(funds=2)
        sp_p = pbs_session.new_participant()
        t0 = time.perf_counter()
        pbs_session.run_job(jo_p, [sp_p])
        pbs_time = time.perf_counter() - t0

        assert pbs_time < dec_time
        assert (
            pbs_session.transport.meter.total_bytes()
            < dec_session.transport.meter.total_bytes()
        )
        dec_zkp = sum(dec_session.counter.get(p, "ZKP") for p in ("JO", "SP", "MA"))
        pbs_zkp = sum(pbs_session.counter.get(p, "ZKP") for p in ("JO", "SP", "MA"))
        assert dec_zkp > 0 and pbs_zkp == 0

"""Stateful property test of a whole PPMSdec market.

Hypothesis drives random interleavings of market operations — jobs of
random payments, new participants, SP-to-SP trades, redemptions — and
checks global invariants after every step:

* **conservation** — money entering the system (account openings)
  equals accounts + outstanding wallet float + redeemed value;
* **no negative balances** anywhere, ever;
* **the bank's books audit clean** with the known float.

Runs on the toy pairing backend for speed; the crypto paths exercised
are identical in structure to the Tate configuration.
"""

from __future__ import annotations

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.ledger import audit_bank
from repro.core.ppms_dec import PPMSdecSession
from repro.core.trading import RedemptionDesk, trade_sensing_service
from repro.ecash.dec import setup

_PARAMS = None


def _params():
    global _PARAMS
    if _PARAMS is None:
        _PARAMS = setup(3, random.Random(0x5EED), security_bits=80,
                        real_pairing=False, edge_rounds=4)
    return _PARAMS


class MarketMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.rng = random.Random(0xFACE)
        self.session = PPMSdecSession(_params(), self.rng, rsa_bits=512)
        self.desk = RedemptionDesk(bank=self.session.ma.bank, rng=self.rng)
        self.jos = []
        self.sps = []
        self.opened = 0
        self.n = 0

    # -- operations ---------------------------------------------------------
    @rule(funds=st.sampled_from([8, 16, 24]))
    def new_jo(self, funds):
        self.n += 1
        jo = self.session.new_job_owner(f"jo-{self.n}", funds=funds)
        self.jos.append(jo)
        self.opened += funds

    @rule()
    def new_sp(self):
        self.n += 1
        self.sps.append(self.session.new_participant(f"sp-{self.n}"))

    @precondition(lambda self: self.jos and self.sps)
    @rule(payment=st.integers(min_value=1, max_value=8), data=st.data())
    def run_job(self, payment, data):
        jo = data.draw(st.sampled_from(self.jos))
        sp = data.draw(st.sampled_from(self.sps))
        bank = self.session.ma.bank
        # a job needs the JO able to fund the payment (wallets + account)
        if jo.spendable_balance() + bank.balance(jo.aid) < payment:
            return
        try:
            self.session.run_job(jo, [sp], payment=payment)
        except ValueError:
            # wallet fragmentation forced a withdrawal the account could
            # not cover; the abort is atomic (no coin minted, no credit)
            # so the invariants below still must hold
            pass

    @precondition(lambda self: self.sps)
    @rule(data=st.data(), amount=st.integers(min_value=1, max_value=4))
    def redeem(self, data, amount):
        sp = data.draw(st.sampled_from(self.sps))
        bank = self.session.ma.bank
        if bank.balance(sp.aid) < amount:
            return
        self.desk.redeem(sp.aid, amount)

    @precondition(lambda self: len(self.sps) >= 2)
    @rule(data=st.data(), price=st.integers(min_value=1, max_value=4))
    def trade(self, data, price):
        buyer = data.draw(st.sampled_from(self.sps))
        seller = data.draw(st.sampled_from([s for s in self.sps if s is not buyer]))
        bank = self.session.ma.bank
        if bank.balance(buyer.aid) < 8:  # needs a whole coin
            return
        buyer_jo = trade_sensing_service(self.session, buyer.aid, seller, payment=price)
        self.jos.append(buyer_jo)  # tracks any residual wallet float

    # -- invariants ----------------------------------------------------------
    @invariant()
    def conservation(self):
        bank = self.session.ma.bank
        accounts = sum(bank.accounts.values())
        float_ = sum(jo.spendable_balance() for jo in self.jos)
        redeemed = sum(v.amount for v in self.desk.issued)
        assert accounts + float_ + redeemed == self.opened, (
            f"opened {self.opened} != accounts {accounts} + float {float_} "
            f"+ redeemed {redeemed}"
        )

    @invariant()
    def no_negative_balances(self):
        assert all(b >= 0 for b in self.session.ma.bank.accounts.values())

    @invariant()
    def books_audit_clean(self):
        float_ = sum(jo.spendable_balance() for jo in self.jos)
        report = audit_bank(self.session.ma.bank, outstanding_float=float_)
        assert report.clean, report.findings


MarketMachine.TestCase.settings = settings(
    max_examples=5, stateful_step_count=10, deadline=None
)
TestMarketMachine = MarketMachine.TestCase

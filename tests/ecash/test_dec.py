"""Tests for the DEC scheme facade: withdraw / deposit / double spend."""

from __future__ import annotations

import random

import pytest

from repro.ecash.dec import (
    DECBank,
    DoubleSpendError,
    begin_withdrawal,
    finish_withdrawal,
    setup,
)
from repro.ecash.spend import create_spend
from repro.ecash.tree import NodeId


def withdraw(params, bank, rng, aid="jo"):
    secret, request = begin_withdrawal(params, rng)
    signature = bank.issue(aid, request)
    return finish_withdrawal(params, bank.public_key, secret, signature)


@pytest.fixture()
def bank(dec_params, rng):
    b = DECBank.create(dec_params, rng)
    b.open_account("jo", 100)
    b.open_account("sp", 0)
    return b


class TestSetup:
    def test_levels_and_backend(self, dec_params):
        assert dec_params.tree_level == 3
        assert dec_params.tower.depth >= 3
        assert dec_params.backend.order > dec_params.tower.group(0).q

    def test_setup_online_chain_search(self):
        rng = random.Random(5)
        params = setup(1, rng, use_known_chain=False, chain_bits=12, security_bits=24)
        assert params.tower.verify()

    def test_toy_backend_setup(self, dec_params_toy):
        assert dec_params_toy.tree_level == 4
        assert dec_params_toy.backend.name == "toy"


class TestAccounts:
    def test_open_and_balance(self, bank):
        assert bank.balance("jo") == 100
        with pytest.raises(ValueError):
            bank.open_account("jo")

    def test_unknown_account(self, bank):
        with pytest.raises(KeyError):
            bank.balance("ghost")


class TestWithdrawal:
    def test_debits_account(self, dec_params, bank, rng):
        withdraw(dec_params, bank, rng)
        assert bank.balance("jo") == 100 - (1 << dec_params.tree_level)
        assert bank.withdrawals == ["jo"]

    def test_insufficient_funds(self, dec_params, bank, rng):
        with pytest.raises(ValueError):
            secret, request = begin_withdrawal(dec_params, rng)
            bank.issue("sp", request)  # sp has balance 0

    def test_coin_is_certified(self, dec_params, bank, rng):
        coin = withdraw(dec_params, bank, rng)
        from repro.crypto.cl_sig import cl_verify

        assert cl_verify(dec_params.backend, bank.public_key, coin.secret, coin.signature)

    def test_secret_in_range(self, dec_params, bank, rng):
        coin = withdraw(dec_params, bank, rng)
        assert 0 < coin.secret < dec_params.secret_bound()

    def test_wallet_has_full_value(self, dec_params, bank, rng):
        coin = withdraw(dec_params, bank, rng)
        assert coin.wallet().balance == 1 << dec_params.tree_level


class TestDeposit:
    def test_credits_account(self, dec_params, bank, rng):
        coin = withdraw(dec_params, bank, rng)
        token = create_spend(
            dec_params, bank.public_key, coin.secret, coin.signature, NodeId(1, 0), rng
        )
        amount = bank.deposit("sp", token)
        assert amount == 4 and bank.balance("sp") == 4

    def test_rejects_unknown_account(self, dec_params, bank, rng):
        coin = withdraw(dec_params, bank, rng)
        token = create_spend(
            dec_params, bank.public_key, coin.secret, coin.signature, NodeId(0, 0), rng
        )
        with pytest.raises(ValueError):
            bank.deposit("ghost", token)

    def test_rejects_invalid_token(self, dec_params, bank, rng):
        import dataclasses

        coin = withdraw(dec_params, bank, rng)
        token = create_spend(
            dec_params, bank.public_key, coin.secret, coin.signature, NodeId(0, 0), rng
        )
        grp = dec_params.tower.group(0)
        bad = dataclasses.replace(token, node_key=grp.exp(token.node_key, 2))
        with pytest.raises(ValueError):
            bank.deposit("sp", bad)
        assert bank.balance("sp") == 0

    def test_context_mismatch_rejected(self, dec_params, bank, rng):
        coin = withdraw(dec_params, bank, rng)
        token = create_spend(
            dec_params, bank.public_key, coin.secret, coin.signature, NodeId(0, 0), rng,
            context=b"payment-xyz",
        )
        with pytest.raises(ValueError):
            bank.deposit("sp", token)  # bank checks default empty context
        assert bank.deposit("sp", token, context=b"payment-xyz") == 8


class TestDoubleSpendDetection:
    @pytest.fixture()
    def coin(self, dec_params, bank, rng):
        return withdraw(dec_params, bank, rng)

    def _spend(self, dec_params, bank, coin, node, rng):
        return create_spend(
            dec_params, bank.public_key, coin.secret, coin.signature, node, rng
        )

    def test_same_node_twice(self, dec_params, bank, coin, rng):
        t1 = self._spend(dec_params, bank, coin, NodeId(2, 1), rng)
        t2 = self._spend(dec_params, bank, coin, NodeId(2, 1), rng)
        bank.deposit("sp", t1)
        with pytest.raises(DoubleSpendError):
            bank.deposit("sp", t2)

    def test_ancestor_after_descendant(self, dec_params, bank, coin, rng):
        leaf = self._spend(dec_params, bank, coin, NodeId(3, 4), rng)
        parent = self._spend(dec_params, bank, coin, NodeId(1, 1), rng)
        bank.deposit("sp", leaf)
        with pytest.raises(DoubleSpendError):
            bank.deposit("sp", parent)

    def test_descendant_after_ancestor(self, dec_params, bank, coin, rng):
        parent = self._spend(dec_params, bank, coin, NodeId(1, 0), rng)
        leaf = self._spend(dec_params, bank, coin, NodeId(3, 1), rng)
        bank.deposit("sp", parent)
        with pytest.raises(DoubleSpendError):
            bank.deposit("sp", leaf)

    def test_root_blocks_everything(self, dec_params, bank, coin, rng):
        root = self._spend(dec_params, bank, coin, NodeId(0, 0), rng)
        bank.deposit("sp", root)
        for node in (NodeId(1, 0), NodeId(2, 3), NodeId(3, 7)):
            token = self._spend(dec_params, bank, coin, node, rng)
            with pytest.raises(DoubleSpendError):
                bank.deposit("sp", token)

    def test_disjoint_nodes_fine(self, dec_params, bank, coin, rng):
        bank.deposit("sp", self._spend(dec_params, bank, coin, NodeId(1, 0), rng))
        bank.deposit("sp", self._spend(dec_params, bank, coin, NodeId(2, 2), rng))
        bank.deposit("sp", self._spend(dec_params, bank, coin, NodeId(3, 6), rng))
        assert bank.balance("sp") == 4 + 2 + 1

    def test_detection_across_accounts(self, dec_params, bank, coin, rng):
        """A JO paying the same node to two SPs is caught at the bank."""
        bank.open_account("sp2", 0)
        t1 = self._spend(dec_params, bank, coin, NodeId(2, 0), rng)
        t2 = self._spend(dec_params, bank, coin, NodeId(2, 0), rng)
        bank.deposit("sp", t1)
        with pytest.raises(DoubleSpendError):
            bank.deposit("sp2", t2)

    def test_failed_deposit_leaves_no_state(self, dec_params, bank, coin, rng):
        t1 = self._spend(dec_params, bank, coin, NodeId(3, 0), rng)
        t_anc = self._spend(dec_params, bank, coin, NodeId(2, 0), rng)
        t_sib = self._spend(dec_params, bank, coin, NodeId(3, 1), rng)
        bank.deposit("sp", t1)
        with pytest.raises(DoubleSpendError):
            bank.deposit("sp", t_anc)
        # the sibling (disjoint from t1, overlapping the failed t_anc)
        # must still deposit: the failed deposit recorded nothing
        assert bank.deposit("sp", t_sib) == 1

    def test_two_different_coins_never_collide(self, dec_params, bank, rng):
        coin1 = withdraw(dec_params, bank, rng)
        coin2 = withdraw(dec_params, bank, rng)
        t1 = self._spend(dec_params, bank, coin1, NodeId(0, 0), rng)
        t2 = self._spend(dec_params, bank, coin2, NodeId(0, 0), rng)
        bank.deposit("sp", t1)
        bank.deposit("sp", t2)
        assert bank.balance("sp") == 16


class TestConservation:
    def test_money_conserved_end_to_end(self, dec_params, bank, rng):
        """Withdrawn value == deposited value + value left in the wallet."""
        coin = withdraw(dec_params, bank, rng)
        wallet = coin.wallet()
        deposited = 0
        for denom in (4, 2, 1):
            node = wallet.allocate(denom)
            token = create_spend(
                dec_params, bank.public_key, coin.secret, coin.signature, node, rng
            )
            deposited += bank.deposit("sp", token)
        assert deposited == 7
        assert wallet.balance == 1
        assert bank.balance("jo") + bank.balance("sp") + wallet.balance == 100


class TestDoubleSpendEvidence:
    def test_evidence_attached(self, dec_params, bank, rng):
        from repro.ecash.dec import DoubleSpendEvidence

        coin = withdraw(dec_params, bank, rng)
        t1 = create_spend(dec_params, bank.public_key, coin.secret, coin.signature,
                          NodeId(2, 0), rng)
        t2 = create_spend(dec_params, bank.public_key, coin.secret, coin.signature,
                          NodeId(3, 1), rng)  # descendant of (2, 0)
        bank.deposit("sp", t1)
        with pytest.raises(DoubleSpendError) as excinfo:
            bank.deposit("sp", t2)
        evidence = excinfo.value.evidence
        assert isinstance(evidence, DoubleSpendEvidence)
        assert evidence.prior == ("sp", 2, 0)
        assert evidence.offending_node == ("sp", 3, 1)
        # the colliding serial really is under both nodes
        from repro.ecash.tree import leaf_serials, node_key

        prior_serials = leaf_serials(
            dec_params.tower, NodeId(2, 0),
            node_key(dec_params.tower, coin.secret, NodeId(2, 0)),
            dec_params.tree_level,
        )
        assert evidence.serial in prior_serials

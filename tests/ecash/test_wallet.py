"""Tests for the wallet's buddy allocation over the coin tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecash.tree import CoinTree, NodeId
from repro.ecash.wallet import InsufficientFunds, Wallet


def make_wallet(level=3) -> Wallet:
    return Wallet(tree=CoinTree(level), secret=12345)


class TestBalances:
    def test_fresh_wallet(self):
        w = make_wallet(3)
        assert w.total_value == 8 and w.balance == 8 and w.spent_value == 0

    def test_balance_after_allocations(self):
        w = make_wallet(3)
        w.allocate(4)
        w.allocate(2)
        assert w.balance == 2 and w.spent_value == 6


class TestAllocate:
    def test_allocates_correct_level(self):
        w = make_wallet(3)
        assert w.allocate(8).level == 0
        w = make_wallet(3)
        assert w.allocate(1).level == 3

    def test_rejects_non_power_of_two(self):
        w = make_wallet(3)
        with pytest.raises(ValueError):
            w.allocate(3)
        with pytest.raises(ValueError):
            w.allocate(0)

    def test_rejects_oversized(self):
        w = make_wallet(2)
        with pytest.raises(InsufficientFunds):
            w.allocate(8)

    def test_no_conflicting_allocations(self):
        w = make_wallet(3)
        nodes = [w.allocate(1) for _ in range(8)]
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                assert not a.conflicts_with(b)

    def test_exhaustion(self):
        w = make_wallet(2)
        w.allocate(4)
        with pytest.raises(InsufficientFunds):
            w.allocate(1)

    def test_fragmentation(self):
        """Allocating all leaves blocks any larger node even though the
        total balance would suffice."""
        w = make_wallet(2)
        w.allocate(1)
        w.allocate(1)
        w.allocate(1)
        assert w.balance == 1
        with pytest.raises(InsufficientFunds):
            w.allocate(2)  # both level-1 nodes are now partially used

    def test_deterministic_lowest_index_first(self):
        w = make_wallet(3)
        assert w.allocate(1) == NodeId(3, 0)
        assert w.allocate(1) == NodeId(3, 1)

    @given(st.lists(st.sampled_from([1, 2, 4]), min_size=1, max_size=8))
    @settings(max_examples=60)
    def test_never_overspends(self, denoms):
        w = make_wallet(3)
        allocated = 0
        for d in denoms:
            try:
                w.allocate(d)
                allocated += d
            except InsufficientFunds:
                pass
        assert allocated == w.spent_value <= w.total_value


class TestAllocateAmount:
    def test_atomic_success(self):
        w = make_wallet(3)
        nodes = w.allocate_amount([4, 2, 1])
        assert len(nodes) == 3 and w.balance == 1

    def test_skips_zero_slots(self):
        w = make_wallet(3)
        nodes = w.allocate_amount([4, 0, 0, 1])
        assert len(nodes) == 2

    def test_atomic_rollback(self):
        w = make_wallet(2)
        with pytest.raises(InsufficientFunds):
            w.allocate_amount([4, 1])  # 4 takes the root, 1 then impossible
        assert w.balance == 4 and not w.spent


class TestAvailability:
    def test_is_available_respects_ancestors(self):
        w = make_wallet(3)
        w.allocate(8)  # root
        assert not w.is_available(NodeId(2, 1))

    def test_is_available_respects_descendants(self):
        w = make_wallet(3)
        node = w.allocate(1)
        assert not w.is_available(NodeId(0, 0))
        assert not w.is_available(node)

    def test_too_deep_unavailable(self):
        w = make_wallet(2)
        assert not w.is_available(NodeId(3, 0))

    def test_available_nodes_listing(self):
        w = make_wallet(2)
        w.allocate(2)  # NodeId(1, 0)
        assert w.available_nodes(1) == [NodeId(1, 1)]

    def test_release(self):
        w = make_wallet(2)
        node = w.allocate(4)
        w.release(node)
        assert w.balance == 4 and w.is_available(node)


class TestRandomizedInvariant:
    def test_spent_nodes_never_conflict(self):
        rng = random.Random(7)
        w = make_wallet(4)
        for _ in range(60):
            d = rng.choice([1, 2, 4, 8])
            try:
                w.allocate(d)
            except InsufficientFunds:
                continue
        spent = sorted(w.spent)
        for i, a in enumerate(spent):
            for b in spent[i + 1 :]:
                assert not a.conflicts_with(b)

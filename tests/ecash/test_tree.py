"""Unit + property tests for the coin tree and node-key derivation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecash.tree import CoinTree, NodeId, derive_key_chain, leaf_serials, node_key

LEVELS = st.integers(min_value=0, max_value=8)


def node_ids(max_level=8):
    return st.integers(min_value=0, max_value=max_level).flatmap(
        lambda lv: st.tuples(st.just(lv), st.integers(min_value=0, max_value=(1 << lv) - 1))
    ).map(lambda t: NodeId(*t))


class TestNodeId:
    def test_validation(self):
        with pytest.raises(ValueError):
            NodeId(-1, 0)
        with pytest.raises(ValueError):
            NodeId(2, 4)

    def test_value(self):
        assert NodeId(0, 0).value(3) == 8
        assert NodeId(3, 5).value(3) == 1
        with pytest.raises(ValueError):
            NodeId(4, 0).value(3)

    def test_parent_child_roundtrip(self):
        n = NodeId(3, 5)
        assert n.parent.child(n.index & 1) == n

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            _ = NodeId(0, 0).parent

    def test_child_bit_validation(self):
        with pytest.raises(ValueError):
            NodeId(0, 0).child(2)

    def test_path_bits(self):
        assert NodeId(0, 0).path_bits() == ()
        assert NodeId(3, 0b101).path_bits() == (1, 0, 1)

    def test_ancestors(self):
        n = NodeId(3, 6)
        assert list(n.ancestors()) == [NodeId(2, 3), NodeId(1, 1), NodeId(0, 0)]

    @given(node_ids())
    @settings(max_examples=50)
    def test_ancestry_reflexive_conflict(self, n):
        assert n.conflicts_with(n)
        assert n.is_ancestor_of(n)

    @given(node_ids(6))
    @settings(max_examples=50)
    def test_root_ancestor_of_everything(self, n):
        assert NodeId(0, 0).is_ancestor_of(n)

    @given(node_ids(6))
    @settings(max_examples=50)
    def test_parent_child_conflict(self, n):
        left, right = n.child(0), n.child(1)
        assert n.conflicts_with(left) and n.conflicts_with(right)
        assert not left.conflicts_with(right)

    @given(node_ids(6), node_ids(6))
    @settings(max_examples=80)
    def test_conflict_iff_leaf_spans_overlap(self, a, b):
        """Conflicts are exactly leaf-span intersections — the invariant
        the bank's serial-expansion detection relies on."""
        level = 7
        sa, sb = set(a.leaf_span(level)), set(b.leaf_span(level))
        assert a.conflicts_with(b) == bool(sa & sb)

    def test_leaf_span(self):
        assert list(NodeId(1, 1).leaf_span(3)) == [4, 5, 6, 7]
        assert list(NodeId(3, 2).leaf_span(3)) == [2]

    def test_ordering(self):
        assert NodeId(1, 0) < NodeId(1, 1) < NodeId(2, 0)


class TestCoinTree:
    def test_total_value(self):
        assert CoinTree(4).total_value == 16

    def test_nodes_at(self):
        tree = CoinTree(3)
        assert len(list(tree.nodes_at(2))) == 4
        with pytest.raises(ValueError):
            list(tree.nodes_at(4))

    def test_all_nodes_count(self):
        assert len(list(CoinTree(3).all_nodes())) == 2**4 - 1

    def test_node_for_denomination(self):
        tree = CoinTree(3)
        assert tree.node_for_denomination(8) == NodeId(0, 0)
        assert tree.node_for_denomination(1, index=5) == NodeId(3, 5)
        with pytest.raises(ValueError):
            tree.node_for_denomination(3)
        with pytest.raises(ValueError):
            tree.node_for_denomination(16)

    def test_validation(self):
        with pytest.raises(ValueError):
            CoinTree(-1)


class TestKeyDerivation:
    def test_chain_length(self, tower3, rng):
        secret = rng.randrange(1, tower3.group(0).q)
        keys = derive_key_chain(tower3, secret, NodeId(3, 5))
        assert len(keys) == 4

    def test_deterministic(self, tower3, rng):
        secret = rng.randrange(1, tower3.group(0).q)
        n = NodeId(2, 3)
        assert node_key(tower3, secret, n) == node_key(tower3, secret, n)

    def test_sibling_keys_differ(self, tower3, rng):
        secret = rng.randrange(1, tower3.group(0).q)
        assert node_key(tower3, secret, NodeId(2, 0)) != node_key(tower3, secret, NodeId(2, 1))

    def test_different_secrets_different_keys(self, tower3, rng):
        n = NodeId(1, 1)
        k1 = node_key(tower3, 12345, n)
        k2 = node_key(tower3, 12346, n)
        assert k1 != k2

    def test_keys_live_in_their_storey(self, tower3, rng):
        secret = rng.randrange(1, tower3.group(0).q)
        keys = derive_key_chain(tower3, secret, NodeId(3, 7))
        for storey, key in enumerate(keys):
            assert tower3.group(storey).contains(key)

    def test_rejects_secret_out_of_range(self, tower3):
        with pytest.raises(ValueError):
            derive_key_chain(tower3, 0, NodeId(0, 0))
        with pytest.raises(ValueError):
            derive_key_chain(tower3, tower3.group(0).q, NodeId(0, 0))

    def test_rejects_node_too_deep(self, tower3):
        with pytest.raises(ValueError):
            derive_key_chain(tower3, 5, NodeId(4, 0))


class TestLeafSerials:
    def test_leaf_count(self, tower3, rng):
        secret = rng.randrange(1, tower3.group(0).q)
        for level in range(4):
            n = NodeId(level, 0)
            serials = leaf_serials(tower3, n, node_key(tower3, secret, n), 3)
            assert len(serials) == 1 << (3 - level)

    def test_conflicting_nodes_share_serials(self, tower3, rng):
        """The double-spend detection invariant."""
        secret = rng.randrange(1, tower3.group(0).q)
        parent = NodeId(1, 0)
        child = NodeId(2, 1)  # descendant of parent
        s_parent = set(leaf_serials(tower3, parent, node_key(tower3, secret, parent), 3))
        s_child = set(leaf_serials(tower3, child, node_key(tower3, secret, child), 3))
        assert s_child <= s_parent

    def test_disjoint_nodes_disjoint_serials(self, tower3, rng):
        secret = rng.randrange(1, tower3.group(0).q)
        a, b = NodeId(1, 0), NodeId(1, 1)
        sa = set(leaf_serials(tower3, a, node_key(tower3, secret, a), 3))
        sb = set(leaf_serials(tower3, b, node_key(tower3, secret, b), 3))
        assert sa.isdisjoint(sb)

    def test_leaf_node_single_serial_is_its_key(self, tower3, rng):
        secret = rng.randrange(1, tower3.group(0).q)
        leaf = NodeId(3, 2)
        key = node_key(tower3, secret, leaf)
        assert leaf_serials(tower3, leaf, key, 3) == [key]

    def test_two_coins_disjoint_serials(self, tower3):
        """Different coin secrets must never collide (w.h.p.)."""
        root = NodeId(0, 0)
        s1 = set(leaf_serials(tower3, root, node_key(tower3, 1111, root), 3))
        s2 = set(leaf_serials(tower3, root, node_key(tower3, 2222, root), 3))
        assert s1.isdisjoint(s2)

    def test_depth_validation(self, tower3):
        with pytest.raises(ValueError):
            leaf_serials(tower3, NodeId(2, 0), 5, 1)  # node deeper than tree
        with pytest.raises(ValueError):
            leaf_serials(tower3, NodeId(0, 0), 5, 9)  # tree deeper than tower

"""Tests for DEC public-parameter export/import."""

from __future__ import annotations

import random

import pytest

from repro.crypto.cl_sig import cl_keygen
from repro.ecash.params_io import ParamsError, export_params, import_params


class TestRoundTrip:
    def test_tate_params_roundtrip(self, dec_params, rng):
        blob = export_params(dec_params)
        loaded, bank_pk = import_params(blob)
        assert bank_pk is None
        assert loaded.tree_level == dec_params.tree_level
        assert loaded.edge_rounds == dec_params.edge_rounds
        assert [g.p for g in loaded.tower.levels] == [g.p for g in dec_params.tower.levels]
        assert loaded.tower.extra_generators == dec_params.tower.extra_generators
        assert loaded.backend.order == dec_params.backend.order

    def test_toy_params_roundtrip(self, dec_params_toy):
        blob = export_params(dec_params_toy)
        loaded, _ = import_params(blob)
        assert loaded.backend.name == "toy"
        assert loaded.backend.order == dec_params_toy.backend.order

    def test_bank_key_roundtrip(self, dec_params, rng):
        kp = cl_keygen(dec_params.backend, rng)
        blob = export_params(dec_params, kp.public)
        loaded, bank_pk = import_params(blob)
        enc = dec_params.backend.element_encode
        assert enc(bank_pk.X) == enc(kp.public.X)
        assert enc(bank_pk.Y) == enc(kp.public.Y)

    def test_loaded_params_are_functional(self, dec_params, rng):
        """A resident must be able to run the whole scheme off the blob."""
        from repro.ecash.dec import begin_withdrawal, finish_withdrawal
        from repro.ecash.spend import create_spend, verify_spend
        from repro.ecash.tree import NodeId
        from repro.crypto.cl_sig import cl_blind_issue

        kp = cl_keygen(dec_params.backend, rng)
        blob = export_params(dec_params, kp.public)
        loaded, bank_pk = import_params(blob)

        secret, request = begin_withdrawal(loaded, rng)
        signature = cl_blind_issue(loaded.backend, kp, request, rng)
        coin = finish_withdrawal(loaded, bank_pk, secret, signature)
        token = create_spend(loaded, bank_pk, coin.secret, coin.signature,
                             NodeId(1, 1), rng)
        assert verify_spend(loaded, bank_pk, token)
        # cross-check: the original params verify the same token
        assert verify_spend(dec_params, kp.public, token)


class TestValidation:
    def test_bad_magic(self, dec_params):
        with pytest.raises(ParamsError, match="magic"):
            import_params(b"nope" + export_params(dec_params))

    def test_corruption_detected(self, dec_params):
        blob = bytearray(export_params(dec_params))
        blob[-1] ^= 0x01
        with pytest.raises(ParamsError, match="digest"):
            import_params(bytes(blob))

    def test_malicious_tower_rejected(self, dec_params):
        """A tampered-but-redigested blob with a broken tower must fail."""
        from repro.crypto.hashing import sha256
        from repro.net.codec import decode, encode

        magic = b"repro-dec-params-v1"
        blob = export_params(dec_params)
        state = decode(blob[len(magic) + 32 :])
        state["levels"][0]["q"] = state["levels"][0]["q"] - 2  # break chain link
        body = encode(state)
        forged = magic + sha256(magic, body) + body
        with pytest.raises(ParamsError):
            import_params(forged)

    def test_wrong_order_generator_rejected(self, dec_params):
        from repro.crypto.hashing import sha256
        from repro.net.codec import decode, encode

        magic = b"repro-dec-params-v1"
        blob = export_params(dec_params)
        state = decode(blob[len(magic) + 32 :])
        state["generators"][0][0] = 1  # identity is never a generator
        body = encode(state)
        forged = magic + sha256(magic, body) + body
        with pytest.raises(ParamsError, match="generator"):
            import_params(forged)

    def test_small_pairing_rejected(self, dec_params):
        """A pairing subgroup smaller than storey 0 breaks coin secrets."""
        from repro.crypto.hashing import sha256
        from repro.net.codec import decode, encode

        magic = b"repro-dec-params-v1"
        blob = export_params(dec_params)
        state = decode(blob[len(magic) + 32 :])
        state["backend"] = {"kind": "toy", "p": 23, "q": 11, "g": 4}
        body = encode(state)
        forged = magic + sha256(magic, body) + body
        with pytest.raises(ParamsError, match="inconsistent"):
            import_params(forged)

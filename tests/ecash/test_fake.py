"""Tests for fake-coin padding (the denomination-attack length defence)."""

from __future__ import annotations

import random

import pytest

from repro.ecash.fake import make_fake_blob, pad_payment, payment_wire_size


class TestFakeBlob:
    def test_length(self, rng):
        assert len(make_fake_blob(100, rng)) == 100

    def test_random(self, rng):
        assert make_fake_blob(64, rng) != make_fake_blob(64, rng)

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            make_fake_blob(0, rng)


class TestPadPayment:
    def test_slot_count(self, rng):
        padded = pad_payment([b"x" * 50], slots=5, rng=rng)
        assert len(padded) == 5

    def test_preserves_real_blobs(self, rng):
        real = [b"coin-A" * 10, b"coin-B" * 10]
        padded = pad_payment(real, slots=6, rng=rng)
        for blob in real:
            assert blob in padded

    def test_fakes_match_longest_real(self, rng):
        real = [b"a" * 80, b"b" * 120]
        padded = pad_payment(real, slots=5, rng=rng)
        fakes = [b for b in padded if b not in real]
        assert all(len(b) == 120 for b in fakes)

    def test_explicit_reference_length(self, rng):
        padded = pad_payment([], slots=3, rng=rng, reference_length=99)
        assert all(len(b) == 99 for b in padded)

    def test_rejects_too_few_slots(self, rng):
        with pytest.raises(ValueError):
            pad_payment([b"a", b"b"], slots=1, rng=rng)

    def test_no_fakes_when_full(self, rng):
        real = [b"a" * 10, b"b" * 10]
        padded = pad_payment(real, slots=2, rng=rng)
        assert sorted(padded) == sorted(real)


class TestLengthIndistinguishability:
    def test_wire_size_independent_of_real_count(self):
        """The whole point: the MA cannot tell 1 real coin from 5 by size."""
        rng = random.Random(1)
        ref = 200
        sizes = set()
        for n_real in (0, 1, 3, 5):
            blobs = [bytes(rng.getrandbits(8) for _ in range(ref)) for _ in range(n_real)]
            padded = pad_payment(blobs, slots=5, rng=rng, reference_length=ref)
            sizes.add(payment_wire_size(padded))
        assert len(sizes) == 1

    def test_shuffled_positions(self):
        """Real coins must not sit at predictable positions."""
        real = b"\x01" * 32
        first_positions = set()
        for seed in range(30):
            rng = random.Random(seed)
            padded = pad_payment([real], slots=4, rng=rng, reference_length=32)
            first_positions.add(padded.index(real))
        assert len(first_positions) > 1

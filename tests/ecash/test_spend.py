"""Tests for spend-token creation/verification — the heart of PPMSdec."""

from __future__ import annotations

import dataclasses

import pytest

from repro.crypto.cl_sig import cl_keygen, cl_sign
from repro.ecash.dec import begin_withdrawal, finish_withdrawal
from repro.ecash.spend import DECParams, create_spend, verify_spend
from repro.ecash.tree import NodeId, node_key


@pytest.fixture()
def certified_coin(dec_params, rng):
    """A bank keypair plus a properly withdrawn coin (blind issuance)."""
    from repro.crypto.cl_sig import cl_blind_issue

    bank_kp = cl_keygen(dec_params.backend, rng)
    secret, request = begin_withdrawal(dec_params, rng)
    signature = cl_blind_issue(dec_params.backend, bank_kp, request, rng)
    coin = finish_withdrawal(dec_params, bank_kp.public, secret, signature)
    return bank_kp, coin


ALL_LEVELS_NODES = [NodeId(0, 0), NodeId(1, 1), NodeId(2, 2), NodeId(3, 5)]


class TestHonestSpends:
    @pytest.mark.parametrize("node", ALL_LEVELS_NODES, ids=lambda n: f"L{n.level}i{n.index}")
    def test_spend_every_depth(self, dec_params, certified_coin, rng, node):
        bank_kp, coin = certified_coin
        token = create_spend(dec_params, bank_kp.public, coin.secret, coin.signature, node, rng)
        assert verify_spend(dec_params, bank_kp.public, token)
        assert token.node == node
        assert len(token.edges) == node.level
        assert len(token.key_commitments) == node.level

    def test_node_key_matches_derivation(self, dec_params, certified_coin, rng):
        bank_kp, coin = certified_coin
        node = NodeId(2, 1)
        token = create_spend(dec_params, bank_kp.public, coin.secret, coin.signature, node, rng)
        assert token.node_key == node_key(dec_params.tower, coin.secret, node)

    def test_denomination(self, dec_params, certified_coin, rng):
        bank_kp, coin = certified_coin
        token = create_spend(
            dec_params, bank_kp.public, coin.secret, coin.signature, NodeId(1, 0), rng
        )
        assert token.denomination(dec_params.tree_level) == 4

    def test_context_binding(self, dec_params, certified_coin, rng):
        bank_kp, coin = certified_coin
        node = NodeId(1, 0)
        token = create_spend(
            dec_params, bank_kp.public, coin.secret, coin.signature, node, rng, context=b"sess-1"
        )
        assert verify_spend(dec_params, bank_kp.public, token, context=b"sess-1")
        assert not verify_spend(dec_params, bank_kp.public, token, context=b"sess-2")

    def test_encoded_size_grows_with_depth(self, dec_params, certified_coin, rng):
        bank_kp, coin = certified_coin
        sizes = []
        for node in (NodeId(0, 0), NodeId(1, 0), NodeId(2, 0), NodeId(3, 0)):
            token = create_spend(
                dec_params, bank_kp.public, coin.secret, coin.signature, node, rng
            )
            sizes.append(token.encoded_size(dec_params))
        assert sizes == sorted(sizes) and sizes[0] < sizes[-1]


class TestUnlinkability:
    def test_two_spends_share_no_values(self, dec_params, certified_coin, rng):
        """Spends of sibling nodes of the SAME coin must look unrelated."""
        bank_kp, coin = certified_coin
        t1 = create_spend(dec_params, bank_kp.public, coin.secret, coin.signature, NodeId(3, 0), rng)
        t2 = create_spend(dec_params, bank_kp.public, coin.secret, coin.signature, NodeId(3, 1), rng)
        enc = dec_params.backend.element_encode
        assert enc(t1.sig_a) != enc(t2.sig_a)
        assert t1.commitment_s != t2.commitment_s
        assert set(t1.key_commitments).isdisjoint(t2.key_commitments)
        assert t1.node_key != t2.node_key

    def test_randomized_signature_differs_from_original(self, dec_params, certified_coin, rng):
        bank_kp, coin = certified_coin
        token = create_spend(
            dec_params, bank_kp.public, coin.secret, coin.signature, NodeId(0, 0), rng
        )
        enc = dec_params.backend.element_encode
        assert enc(token.sig_a) != enc(coin.signature.a)


class TestForgeryRejection:
    @pytest.fixture()
    def token(self, dec_params, certified_coin, rng):
        bank_kp, coin = certified_coin
        return bank_kp, create_spend(
            dec_params, bank_kp.public, coin.secret, coin.signature, NodeId(2, 1), rng
        )

    def test_tampered_node_key(self, dec_params, token):
        bank_kp, tok = token
        grp = dec_params.tower.group(tok.node.level)
        bad = dataclasses.replace(tok, node_key=grp.exp(tok.node_key, 2))
        assert not verify_spend(dec_params, bank_kp.public, bad)

    def test_retargeted_node(self, dec_params, token):
        """Replaying a token against a different node id must fail."""
        bank_kp, tok = token
        bad = dataclasses.replace(tok, node=NodeId(2, 2))
        assert not verify_spend(dec_params, bank_kp.public, bad)

    def test_tampered_commitment(self, dec_params, token):
        bank_kp, tok = token
        grp = dec_params.tower.group(0)
        bad = dataclasses.replace(tok, commitment_s=grp.mul(tok.commitment_s, grp.g))
        assert not verify_spend(dec_params, bank_kp.public, bad)

    def test_tampered_cl_signature(self, dec_params, token):
        bank_kp, tok = token
        backend = dec_params.backend
        bad = dataclasses.replace(tok, sig_b=backend.exp(tok.sig_b, 2))
        assert not verify_spend(dec_params, bank_kp.public, bad)

    def test_identity_signature_rejected(self, dec_params, token):
        bank_kp, tok = token
        backend = dec_params.backend
        bad = dataclasses.replace(
            tok,
            sig_a=backend.identity(),
            sig_b=backend.identity(),
            sig_c=backend.identity(),
        )
        assert not verify_spend(dec_params, bank_kp.public, bad)

    def test_wrong_bank_key(self, dec_params, token, rng):
        bank_kp, tok = token
        other = cl_keygen(dec_params.backend, rng)
        assert not verify_spend(dec_params, other.public, tok)

    def test_uncertified_coin_rejected(self, dec_params, rng):
        """A coin signed by a NON-bank key must not verify under the bank."""
        backend = dec_params.backend
        bank_kp = cl_keygen(backend, rng)
        rogue_kp = cl_keygen(backend, rng)
        secret = rng.randrange(1, dec_params.secret_bound())
        rogue_sig = cl_sign(backend, rogue_kp, secret, rng)
        token = create_spend(dec_params, rogue_kp.public, secret, rogue_sig, NodeId(0, 0), rng)
        assert verify_spend(dec_params, rogue_kp.public, token)  # fine under rogue
        assert not verify_spend(dec_params, bank_kp.public, token)  # forged vs bank

    def test_edge_count_mismatch(self, dec_params, token):
        bank_kp, tok = token
        bad = dataclasses.replace(tok, edges=tok.edges[:-1])
        assert not verify_spend(dec_params, bank_kp.public, bad)

    def test_commitment_count_mismatch(self, dec_params, token):
        bank_kp, tok = token
        bad = dataclasses.replace(tok, key_commitments=tok.key_commitments[:-1])
        assert not verify_spend(dec_params, bank_kp.public, bad)

    def test_node_too_deep_rejected(self, dec_params, token):
        bank_kp, tok = token
        deep = NodeId(dec_params.tree_level + 1, 0)
        bad = dataclasses.replace(tok, node=deep)
        assert not verify_spend(dec_params, bank_kp.public, bad)


class TestCreateValidation:
    def test_rejects_secret_out_of_range(self, dec_params, certified_coin, rng):
        bank_kp, coin = certified_coin
        with pytest.raises(ValueError):
            create_spend(
                dec_params, bank_kp.public, dec_params.secret_bound() + 1,
                coin.signature, NodeId(0, 0), rng,
            )

    def test_rejects_node_too_deep(self, dec_params, certified_coin, rng):
        bank_kp, coin = certified_coin
        with pytest.raises(ValueError):
            create_spend(
                dec_params, bank_kp.public, coin.secret, coin.signature,
                NodeId(dec_params.tree_level + 1, 0), rng,
            )


class TestDECParamsValidation:
    def test_rejects_shallow_tower(self, dec_params):
        with pytest.raises(ValueError):
            DECParams(
                tower=dec_params.tower,
                backend=dec_params.backend,
                tree_level=dec_params.tower.depth + 1,
            )

    def test_rejects_small_pairing_order(self, dec_params, toy_backend):
        if toy_backend.order > dec_params.tower.group(0).q:
            pytest.skip("toy order happens to be large enough")
        with pytest.raises(ValueError):
            DECParams(tower=dec_params.tower, backend=toy_backend, tree_level=1)

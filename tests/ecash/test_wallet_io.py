"""Tests for spend-side wallet persistence."""

from __future__ import annotations

import pytest

from repro.crypto.cl_sig import cl_blind_issue, cl_keygen
from repro.ecash.dec import begin_withdrawal, finish_withdrawal
from repro.ecash.tree import NodeId
from repro.ecash.wallet_io import WalletSnapshotError, restore_coins, snapshot_coins


@pytest.fixture()
def coins(dec_params, rng):
    bank_kp = cl_keygen(dec_params.backend, rng)
    out = []
    for _ in range(2):
        secret, request = begin_withdrawal(dec_params, rng)
        signature = cl_blind_issue(dec_params.backend, bank_kp, request, rng)
        coin = finish_withdrawal(dec_params, bank_kp.public, secret, signature)
        wallet = coin.wallet()
        wallet.allocate(2)
        wallet.allocate(1)
        out.append((coin, wallet))
    return bank_kp, out


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, coins):
        _, original = coins
        restored = restore_coins(snapshot_coins(original))
        assert len(restored) == 2
        for (c0, w0), (c1, w1) in zip(original, restored):
            assert c1.secret == c0.secret and c1.level == c0.level
            assert w1.spent == w0.spent
            assert w1.balance == w0.balance

    def test_restored_coin_still_spendable(self, dec_params, coins, rng):
        """A coin restored from disk must mint verifiable tokens."""
        from repro.ecash.spend import create_spend, verify_spend

        bank_kp, original = coins
        (coin, wallet), *_ = restore_coins(snapshot_coins(original))
        node = wallet.allocate(1)
        token = create_spend(dec_params, bank_kp.public, coin.secret,
                             coin.signature, node, rng)
        assert verify_spend(dec_params, bank_kp.public, token)

    def test_restored_wallet_protects_spent_nodes(self, coins):
        """The point of persistence: no self double-spend after restart."""
        _, original = coins
        (_, wallet), *_ = restore_coins(snapshot_coins(original))
        spent_node = next(iter(wallet.spent))
        assert not wallet.is_available(spent_node)

    def test_empty_list(self):
        assert restore_coins(snapshot_coins([])) == []


class TestValidation:
    def test_bad_magic(self, coins):
        _, original = coins
        with pytest.raises(WalletSnapshotError, match="magic"):
            restore_coins(b"x" + snapshot_coins(original))

    def test_corruption(self, coins):
        _, original = coins
        blob = bytearray(snapshot_coins(original))
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(WalletSnapshotError):
            restore_coins(bytes(blob))

    def test_overlapping_spent_nodes_rejected(self, coins):
        """A snapshot claiming conflicting spends is corrupt by definition."""
        from repro.crypto.hashing import sha256
        from repro.net.codec import decode, encode

        _, original = coins
        magic = b"repro-wallet-snapshot-v1"
        blob = snapshot_coins(original)
        state = decode(blob[len(magic) + 32 :])
        state["coins"][0]["spent"] = [NodeId(0, 0), NodeId(1, 0)]  # conflict
        body = encode(state)
        forged = magic + sha256(magic, body) + body
        with pytest.raises(WalletSnapshotError, match="overlapping"):
            restore_coins(forged)

"""Decision parity for the sigma-equation RLC deposit path.

`batch_verify_spends(sigma_batch=True)` must return exactly the
verdict list of per-token `verify_spend`, at every batch size the
batcher grid produces, on both pairing backends, with the fast-exp
tables on and off — including which planted forgery the bisection
fingers.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.crypto import fastexp
from repro.crypto.cl_sig import cl_blind_issue, cl_keygen
from repro.ecash.batch import batch_verify_spends
from repro.ecash.dec import begin_withdrawal, finish_withdrawal
from repro.ecash.spend import create_spend, verify_spend
from repro.ecash.tree import NodeId

BATCH_SIZES = (1, 2, 7, 32)

_FASTEXP_MODES = ("fastexp-on", "fastexp-off")


@pytest.fixture(params=_FASTEXP_MODES)
def fastexp_mode(request):
    if request.param == "fastexp-on":
        previous = fastexp.configure(
            enabled=True, promote_after=0, min_modulus_bits=1
        )
    else:
        previous = fastexp.configure(enabled=False)
    fastexp.reset()
    yield request.param
    fastexp.configure(**previous)
    fastexp.reset()


def _make_stack(params, rng, count=6):
    bank_kp = cl_keygen(params.backend, rng)
    secret, request = begin_withdrawal(params, rng)
    signature = cl_blind_issue(params.backend, bank_kp, request, rng)
    coin = finish_withdrawal(params, bank_kp.public, secret, signature)
    tokens = [
        create_spend(params, bank_kp.public, coin.secret, coin.signature,
                     NodeId(3, i), rng)
        for i in range(count)
    ]
    return bank_kp, tokens


@pytest.fixture(scope="module")
def tate_stack(dec_params, session_rng):
    return _make_stack(dec_params, session_rng)


@pytest.fixture(scope="module")
def toy_stack(dec_params_toy, session_rng):
    return _make_stack(dec_params_toy, session_rng)


def _stack_for(backend_name, request):
    if backend_name == "tate":
        return request.getfixturevalue("dec_params"), \
            request.getfixturevalue("tate_stack")
    return request.getfixturevalue("dec_params_toy"), \
        request.getfixturevalue("toy_stack")


def _cycle(tokens, size):
    # duplicates are fine: verdicts are positional, and double-spend
    # detection happens in the bank layer, not in verification
    return [tokens[i % len(tokens)] for i in range(size)]


def _mutate(params, token, kind, delta=1):
    backend = params.backend
    if kind == "sig_b":
        return dataclasses.replace(token, sig_b=backend.exp(token.sig_b, 2 + delta))
    if kind == "response":
        return dataclasses.replace(
            token,
            equality=dataclasses.replace(token.equality, z=token.equality.z + delta),
        )
    if kind == "commitment":
        group = params.tower.group(token.node.level)
        return dataclasses.replace(
            token,
            commitment_s=group.mul(token.commitment_s, group.exp(group.g, delta)),
        )
    raise AssertionError(kind)


@pytest.mark.parametrize("backend_name", ["tate", "toy"])
@pytest.mark.parametrize("size", BATCH_SIZES)
def test_honest_parity(backend_name, size, fastexp_mode, request, rng):
    params, (bank_kp, tokens) = _stack_for(backend_name, request)
    batch = _cycle(tokens, size)
    verdicts = batch_verify_spends(params, bank_kp.public, batch, rng)
    assert verdicts == [True] * size
    assert verdicts == [verify_spend(params, bank_kp.public, t) for t in batch]


@pytest.mark.parametrize("backend_name", ["tate", "toy"])
@pytest.mark.parametrize("kind", ["sig_b", "response", "commitment"])
@pytest.mark.parametrize("size", BATCH_SIZES)
def test_planted_forgery_fingered(backend_name, kind, size, fastexp_mode,
                                  request, rng):
    params, (bank_kp, tokens) = _stack_for(backend_name, request)
    batch = _cycle(tokens, size)
    bad = size // 2
    batch[bad] = _mutate(params, batch[bad], kind)
    verdicts = batch_verify_spends(params, bank_kp.public, batch, rng)
    expected = [verify_spend(params, bank_kp.public, t) for t in batch]
    assert expected[bad] is False
    assert verdicts == expected
    assert verdicts[bad] is False
    assert all(v for i, v in enumerate(verdicts) if i != bad)


@pytest.mark.parametrize("backend_name", ["tate", "toy"])
def test_multiple_forgeries_all_fingered(backend_name, fastexp_mode,
                                         request, rng):
    params, (bank_kp, tokens) = _stack_for(backend_name, request)
    batch = _cycle(tokens, 8)
    kinds = {1: "sig_b", 3: "response", 6: "commitment"}
    for i, kind in kinds.items():
        batch[i] = _mutate(params, batch[i], kind, delta=1 + i)
    verdicts = batch_verify_spends(params, bank_kp.public, batch, rng)
    assert verdicts == [i not in kinds for i in range(len(batch))]
    assert verdicts == [verify_spend(params, bank_kp.public, t) for t in batch]


@pytest.mark.parametrize("backend_name", ["tate", "toy"])
def test_cancellation_pair_caught(backend_name, fastexp_mode, request, rng):
    """Complementary sig_b tamperings must not cancel across tokens."""
    params, (bank_kp, tokens) = _stack_for(backend_name, request)
    backend = params.backend
    inv = pow(2, -1, backend.order)
    bad1 = dataclasses.replace(tokens[0], sig_b=backend.exp(tokens[0].sig_b, 2))
    bad2 = dataclasses.replace(tokens[1], sig_b=backend.exp(tokens[1].sig_b, inv))
    verdicts = batch_verify_spends(params, bank_kp.public, [bad1, bad2], rng)
    assert verdicts == [False, False]


def _forge_cofactor_token(params, bank_pk, coin, node, rng, monkeypatch):
    """A token whose ONLY defect is R_B offset by an order-2 cofactor
    element (negation).

    The prover runs honestly except that the equality proof's G_T
    commitment is negated *before* the transcript absorbs it: the
    Fiat–Shamir challenge, the group-A equation and every edge proof
    are consistent with the negated encoding, so nothing but the
    deferred G_T equation (and the subgroup gate) can reject it.
    Without the μ_r membership check this forgery survives the batched
    pairing product whenever its random coefficient is even.
    """
    import repro.ecash.spend as spend_mod

    orig = spend_mod._gt_encode
    calls = {"n": 0}

    def crooked(backend, element):
        enc = orig(backend, element)
        calls["n"] += 1
        if calls["n"] == 1:  # prove_equality encodes R_B first
            p = (backend.params.p if len(enc) == 2 else backend.target.p)
            return tuple((-v) % p for v in enc)
        return enc

    monkeypatch.setattr(spend_mod, "_gt_encode", crooked)
    try:
        token = create_spend(params, bank_pk, coin.secret, coin.signature,
                             node, rng)
    finally:
        monkeypatch.setattr(spend_mod, "_gt_encode", orig)
    assert calls["n"] >= 2
    return token


@pytest.mark.parametrize("backend_name", ["tate", "toy"])
def test_cofactor_offset_commitment_rejected(backend_name, fastexp_mode,
                                             request, rng, monkeypatch):
    """An R_B outside the prime-order G_T subgroup must be rejected
    eagerly — and identically — by every path.

    F_{p²}^* (and Z_p^*) have cofactor order: an order-2 offset on the
    equality commitment cancels out of the RLC pairing product with
    probability 1/2 over the coefficient's parity, so without the
    membership gate the batched verdict diverges from sequential
    verification on about half the seeds.
    """
    from repro.crypto.cl_sig import cl_blind_issue, cl_keygen
    from repro.ecash.dec import begin_withdrawal, finish_withdrawal
    from repro.ecash.spend import verify_spend_collect, verify_spend_deferred

    params, (bank_kp, tokens) = _stack_for(backend_name, request)
    bank_pk = bank_kp.public
    secret, request_msg = begin_withdrawal(params, rng)
    signature = cl_blind_issue(params.backend, bank_kp, request_msg, rng)
    coin = finish_withdrawal(params, bank_pk, secret, signature)
    forged = _forge_cofactor_token(params, bank_pk, coin, NodeId(3, 1), rng,
                                   monkeypatch)

    # the subgroup gate rejects at collection, before any batching
    assert verify_spend(params, bank_pk, forged) is False
    assert verify_spend_deferred(params, bank_pk, forged) is None
    assert verify_spend_collect(params, bank_pk, forged) is None

    batch = _cycle(tokens, 5)
    batch[2] = forged
    expected = [True, True, False, True, True]
    for seed in range(8):  # pre-gate, each seed escaped with prob ~1/2
        assert batch_verify_spends(params, bank_pk, batch,
                                   random.Random(seed)) == expected
        assert batch_verify_spends(params, bank_pk, batch,
                                   random.Random(seed),
                                   sigma_batch=False) == expected


@pytest.mark.parametrize("backend_name", ["tate", "toy"])
def test_seed_determinism(backend_name, fastexp_mode, request):
    params, (bank_kp, tokens) = _stack_for(backend_name, request)
    batch = _cycle(tokens, 7)
    batch[2] = _mutate(params, batch[2], "response")
    first = batch_verify_spends(params, bank_kp.public, batch, random.Random(11))
    second = batch_verify_spends(params, bank_kp.public, batch, random.Random(11))
    assert first == second


def test_legacy_path_still_agrees(dec_params, fastexp_mode, request, rng):
    """sigma_batch=False keeps the PR 2 two-stage screen available and
    decision-identical."""
    bank_kp, tokens = request.getfixturevalue("tate_stack")
    batch = _cycle(tokens, 7)
    batch[4] = _mutate(dec_params, batch[4], "sig_b")
    legacy = batch_verify_spends(
        dec_params, bank_kp.public, batch, rng, sigma_batch=False
    )
    rlc = batch_verify_spends(dec_params, bank_kp.public, batch, rng)
    assert legacy == rlc == [verify_spend(dec_params, bank_kp.public, t)
                            for t in batch]

"""Model-based (stateful) property tests for wallet and bank invariants.

Hypothesis drives random operation sequences against the real
implementations while a simple reference model tracks what *must* be
true; any divergence is a shrunk, replayable counterexample.  These
catch interaction bugs that example-based tests structurally miss
(allocate/release interleavings, deposit orderings across accounts).
"""

from __future__ import annotations

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.ecash.tree import CoinTree, NodeId
from repro.ecash.wallet import InsufficientFunds, Wallet

LEVEL = 4


class WalletMachine(RuleBasedStateMachine):
    """The wallet against a leaf-interval reference model.

    Model: the set of level-``LEVEL`` leaf indices covered by spent
    nodes.  Invariants: spent nodes never conflict; spent value equals
    covered-leaf count; balance is the complement.
    """

    def __init__(self):
        super().__init__()
        self.wallet = Wallet(tree=CoinTree(LEVEL), secret=1)
        self.covered: set[int] = set()
        self.live_nodes: list[NodeId] = []

    @rule(denom_exp=st.integers(min_value=0, max_value=LEVEL))
    def allocate(self, denom_exp):
        denom = 1 << denom_exp
        try:
            node = self.wallet.allocate(denom)
        except InsufficientFunds:
            # the model must agree there is no free aligned run this size
            width = denom
            free = [
                i for i in range(self.wallet.total_value) if i not in self.covered
            ]
            runs = any(
                all((start + k) in free for k in range(width))
                for start in range(0, self.wallet.total_value, width)
            )
            assert not runs, f"wallet refused denom {denom} despite a free run"
            return
        span = set(node.leaf_span(LEVEL))
        assert span.isdisjoint(self.covered), "allocated node overlaps spent leaves"
        self.covered |= span
        self.live_nodes.append(node)

    @precondition(lambda self: self.live_nodes)
    @rule(data=st.data())
    def release(self, data):
        idx = data.draw(st.integers(min_value=0, max_value=len(self.live_nodes) - 1))
        node = self.live_nodes.pop(idx)
        self.wallet.release(node)
        self.covered -= set(node.leaf_span(LEVEL))

    @invariant()
    def value_matches_model(self):
        assert self.wallet.spent_value == len(self.covered)
        assert self.wallet.balance == self.wallet.total_value - len(self.covered)

    @invariant()
    def no_conflicts_among_spent(self):
        spent = sorted(self.wallet.spent)
        for i, a in enumerate(spent):
            for b in spent[i + 1 :]:
                assert not a.conflicts_with(b)


WalletMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestWalletMachine = WalletMachine.TestCase


class BankSerialMachine(RuleBasedStateMachine):
    """The bank's double-spend bookkeeping against an interval model.

    Uses the toy-backend DEC instance (fast) shared across examples via
    lazy class-level setup.  The model tracks which leaf intervals of
    which coin have been deposited; the bank must accept exactly the
    non-overlapping deposits and reject the rest — regardless of order
    or account.
    """

    _params = None
    _bank_seed = 0

    def __init__(self):
        super().__init__()
        from repro.ecash.dec import DECBank, begin_withdrawal, finish_withdrawal, setup

        cls = type(self)
        if cls._params is None:
            cls._params = setup(
                3, random.Random(0xABCD), security_bits=80,
                real_pairing=False, edge_rounds=4,
            )
        self.params = cls._params
        rng = random.Random(1000 + cls._bank_seed)
        cls._bank_seed += 1
        self.rng = rng
        self.bank = DECBank.create(self.params, rng)
        self.bank.open_account("jo", 1 << (self.params.tree_level + 2))
        self.bank.open_account("sp0", 0)
        self.bank.open_account("sp1", 0)
        self.coins = []
        for _ in range(2):
            secret, request = begin_withdrawal(self.params, rng)
            sig = self.bank.issue("jo", request)
            self.coins.append(finish_withdrawal(self.params, self.bank.public_key, secret, sig))
        # model: per coin, set of deposited leaf indices
        self.deposited: list[set[int]] = [set(), set()]
        self.credited = 0

    @rule(
        coin_idx=st.integers(min_value=0, max_value=1),
        level=st.integers(min_value=0, max_value=3),
        index=st.integers(min_value=0, max_value=7),
        account=st.sampled_from(["sp0", "sp1"]),
    )
    def deposit(self, coin_idx, level, index, account):
        from repro.ecash.dec import DoubleSpendError
        from repro.ecash.spend import create_spend

        node = NodeId(level, index % (1 << level))
        coin = self.coins[coin_idx]
        token = create_spend(
            self.params, self.bank.public_key, coin.secret, coin.signature, node, self.rng
        )
        span = set(node.leaf_span(self.params.tree_level))
        expect_conflict = bool(span & self.deposited[coin_idx])
        try:
            amount = self.bank.deposit(account, token)
        except DoubleSpendError:
            assert expect_conflict, (
                f"bank rejected a non-overlapping deposit: coin {coin_idx} node {node}"
            )
            return
        assert not expect_conflict, (
            f"bank accepted an overlapping deposit: coin {coin_idx} node {node}"
        )
        assert amount == len(span)
        self.deposited[coin_idx] |= span
        self.credited += amount

    @invariant()
    def credits_match_model(self):
        total = self.bank.accounts["sp0"] + self.bank.accounts["sp1"]
        assert total == self.credited == sum(len(s) for s in self.deposited)

    @invariant()
    def never_overspent(self):
        for covered in self.deposited:
            assert len(covered) <= 1 << self.params.tree_level


BankSerialMachine.TestCase.settings = settings(
    max_examples=8, stateful_step_count=12, deadline=None
)
TestBankSerialMachine = BankSerialMachine.TestCase

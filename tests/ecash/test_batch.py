"""Tests for batch verification of spend tokens."""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.crypto.cl_sig import cl_blind_issue, cl_keygen
from repro.ecash.batch import batch_verify_spends, batched_pairing_check
from repro.ecash.dec import begin_withdrawal, finish_withdrawal
from repro.ecash.spend import create_spend, verify_spend
from repro.ecash.tree import NodeId


@pytest.fixture()
def stack(dec_params, rng):
    """Bank key, a certified coin, and six disjoint spend tokens."""
    bank_kp = cl_keygen(dec_params.backend, rng)
    secret, request = begin_withdrawal(dec_params, rng)
    signature = cl_blind_issue(dec_params.backend, bank_kp, request, rng)
    coin = finish_withdrawal(dec_params, bank_kp.public, secret, signature)
    nodes = [NodeId(3, i) for i in range(6)]
    tokens = [
        create_spend(dec_params, bank_kp.public, coin.secret, coin.signature, n, rng)
        for n in nodes
    ]
    return bank_kp, tokens


class TestBatchedPairingCheck:
    def test_honest_batch_passes(self, dec_params, stack, rng):
        bank_kp, tokens = stack
        assert batched_pairing_check(dec_params, bank_kp.public, tokens, rng)

    def test_empty_batch(self, dec_params, stack, rng):
        bank_kp, _ = stack
        assert batched_pairing_check(dec_params, bank_kp.public, [], rng)

    def test_single_bad_token_caught(self, dec_params, stack, rng):
        bank_kp, tokens = stack
        backend = dec_params.backend
        bad = dataclasses.replace(tokens[2], sig_b=backend.exp(tokens[2].sig_b, 2))
        assert not batched_pairing_check(
            dec_params, bank_kp.public, tokens[:2] + [bad] + tokens[3:], rng
        )

    def test_cancellation_attack_unlikely(self, dec_params, stack, rng):
        """Two complementary tamperings must not cancel (random r_i)."""
        bank_kp, tokens = stack
        backend = dec_params.backend
        bad1 = dataclasses.replace(tokens[0], sig_b=backend.exp(tokens[0].sig_b, 2))
        inv = pow(2, -1, backend.order)
        bad2 = dataclasses.replace(tokens[1], sig_b=backend.exp(tokens[1].sig_b, inv))
        assert not batched_pairing_check(dec_params, bank_kp.public, [bad1, bad2], rng)


class TestBatchVerify:
    def test_matches_individual_verdicts_honest(self, dec_params, stack, rng):
        bank_kp, tokens = stack
        batch = batch_verify_spends(dec_params, bank_kp.public, tokens, rng)
        individual = [verify_spend(dec_params, bank_kp.public, t) for t in tokens]
        assert batch == individual == [True] * len(tokens)

    def test_matches_individual_verdicts_with_cheater(self, dec_params, stack, rng):
        bank_kp, tokens = stack
        backend = dec_params.backend
        tampered = list(tokens)
        tampered[1] = dataclasses.replace(tokens[1], sig_b=backend.exp(tokens[1].sig_b, 3))
        batch = batch_verify_spends(dec_params, bank_kp.public, tampered, rng)
        individual = [verify_spend(dec_params, bank_kp.public, t) for t in tampered]
        assert batch == individual
        assert batch[1] is False and all(batch[:1] + batch[2:])

    def test_empty(self, dec_params, stack, rng):
        bank_kp, _ = stack
        assert batch_verify_spends(dec_params, bank_kp.public, [], rng) == []

    def test_skip_flag_only_skips_certified_equation(self, dec_params, stack):
        """The skip flag must not disable the remaining checks."""
        bank_kp, tokens = stack
        grp = dec_params.tower.group(tokens[0].node.level)
        bad = dataclasses.replace(tokens[0], node_key=grp.exp(tokens[0].node_key, 2))
        assert not verify_spend(
            dec_params, bank_kp.public, bad, skip_cl_pairing_check=True
        )

    def test_batch_is_faster_on_honest_batches(self, dec_params, stack, rng):
        """The screening saves 2 pairings per token on the honest path."""
        bank_kp, tokens = stack
        t0 = time.perf_counter()
        for _ in range(2):
            [verify_spend(dec_params, bank_kp.public, t) for t in tokens]
        individual_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(2):
            batch_verify_spends(dec_params, bank_kp.public, tokens, rng)
        batch_time = time.perf_counter() - t0
        assert batch_time < individual_time * 1.05  # never slower; usually ~20-40% faster

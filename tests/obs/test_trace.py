"""Tracer mechanics: context stack, explicit clock, ring, export."""

from __future__ import annotations

import json

import pytest

from repro.obs import NOOP_SPAN, RedactionPolicy, Tracer


class FakeClock:
    """Deterministic clock advancing one tick per read."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def test_disabled_tracer_returns_the_shared_noop_span():
    tracer = Tracer(enabled=False)
    span = tracer.span("submit", kind="deposit")
    assert span is NOOP_SPAN
    assert tracer.span("other") is span  # same object, no allocation
    with span as s:
        s.set(anything="goes")
    assert tracer.records() == []


def test_span_records_name_times_and_attrs():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("submit", kind="deposit") as span:
        span.set(seq=3)
    (record,) = tracer.records()
    assert record.name == "submit"
    assert record.start == 1.0 and record.end == 2.0
    assert record.duration == 1.0
    assert record.attrs == {"kind": "deposit", "seq": 3}


def test_nested_spans_share_trace_and_parent():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("submit", trace="t1") as outer:
        assert tracer.current_trace() == "t1"
        with tracer.span("admission"):
            pass
    inner, root = tracer.records()
    assert inner.trace == root.trace == "t1"
    assert inner.parent == root.span_id == outer.span_id
    assert root.parent is None


def test_explicit_trace_does_not_parent_across_traces():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("submit", trace="t1"):
        with tracer.span("batch_flush", trace="batcher"):
            pass
    flush, _submit = tracer.records()
    assert flush.trace == "batcher"
    assert flush.parent is None


def test_stackless_span_starts_a_background_trace():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("recover"):
        pass
    with tracer.span("mint"):
        pass
    first, second = tracer.records()
    assert first.trace != second.trace
    assert first.trace.startswith("bg")


def test_exception_inside_span_still_records_it():
    tracer = Tracer(clock=FakeClock())
    with pytest.raises(RuntimeError):
        with tracer.span("apply", trace="t1"):
            with tracer.span("shard_apply"):
                raise RuntimeError("boom")
    names = [r.name for r in tracer.records()]
    assert names == ["shard_apply", "apply"]
    assert tracer._stack == []  # nothing leaked on the context stack


def test_emit_records_an_already_timed_span():
    tracer = Tracer(clock=FakeClock())
    tracer.emit("verify_spend", trace="t9", start=5.0, end=7.5, batch=4)
    (record,) = tracer.records()
    assert record.trace == "t9"
    assert record.start == 5.0 and record.end == 7.5
    assert record.attrs == {"batch": 4}


def test_ring_buffer_keeps_newest_and_counts_drops():
    tracer = Tracer(clock=FakeClock(), capacity=3)
    for i in range(5):
        tracer.emit(f"s{i}", trace="t", start=float(i), end=float(i) + 0.5)
    assert len(tracer) == 3
    assert tracer.dropped == 2
    assert [r.name for r in tracer.records()] == ["s2", "s3", "s4"]


def test_attributes_pass_the_redaction_gate_at_record_time():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("submit", trace="t1", sender="sp0", token=b"raw"):
        pass
    (record,) = tracer.records()
    assert "token" not in record.attrs
    assert record.attrs["sender"].startswith("#")


def test_custom_policy_is_honoured():
    policy = RedactionPolicy(safe_keys={"sender"}, drop_keys=set())
    tracer = Tracer(clock=FakeClock(), policy=policy)
    with tracer.span("submit", trace="t1", sender="sp0"):
        pass
    (record,) = tracer.records()
    assert record.attrs["sender"] == "sp0"


def test_export_is_valid_chrome_trace_json():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("submit", trace="t1", kind="deposit"):
        with tracer.span("admission"):
            pass
    tracer.emit("batch_flush", trace="batcher", start=clock.now,
                end=clock.now + 1.0, batch=2)
    text = tracer.export_jsonl()
    events = json.loads(text)  # the whole string is one JSON array
    assert all(e["ph"] in ("X", "M") for e in events)
    metas = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    # one thread-name lane per trace id
    assert {m["args"]["name"] for m in metas} == {"t1", "batcher"}
    assert len({m["tid"] for m in metas}) == 2
    for event in spans:
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert event["cat"] == "repro"
    # line-oriented: one event per line inside the array brackets
    lines = text.strip().splitlines()
    assert lines[0] == "[" and lines[-1] == "]"
    assert len(lines) == len(events) + 2


def test_export_empty_tracer_is_valid_json():
    assert json.loads(Tracer().export_jsonl()) == []


def test_dump_writes_loadable_file(tmp_path):
    tracer = Tracer(clock=FakeClock())
    with tracer.span("submit", trace="t1"):
        pass
    path = tmp_path / "trace.json"
    tracer.dump(path)
    assert json.loads(path.read_text())


def test_finish_with_explicit_end_overrides_clock():
    tracer = Tracer(clock=FakeClock())
    span = tracer.span("submit", trace="t1")
    span.finish(end=99.0)
    (record,) = tracer.records()
    assert record.end == 99.0


def test_double_finish_records_once():
    tracer = Tracer(clock=FakeClock())
    span = tracer.span("submit", trace="t1")
    span.finish()
    span.finish()
    assert len(tracer.records()) == 1


def test_clear_resets_ring_and_drop_counter():
    tracer = Tracer(clock=FakeClock(), capacity=1)
    tracer.emit("a", trace="t", start=0.0, end=1.0)
    tracer.emit("b", trace="t", start=1.0, end=2.0)
    tracer.clear()
    assert len(tracer) == 0 and tracer.dropped == 0

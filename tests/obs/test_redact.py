"""The redaction policy: allowlist semantics, digests, trace ids."""

from __future__ import annotations

import pytest

from repro.obs import redact
from repro.obs.redact import (
    DROP_KEYS,
    SAFE_KEYS,
    RedactionPolicy,
    hash_value,
    trace_id,
)


@pytest.fixture()
def pinned_salt():
    previous = redact.configure(salt=b"test-salt")
    yield
    redact.configure(salt=previous)


def test_safe_keys_pass_scalars_verbatim():
    policy = RedactionPolicy()
    attrs = {"kind": "deposit", "seq": 7, "batch": 4, "dedup": True}
    assert policy.scrub(attrs) == attrs


def test_drop_keys_vanish_entirely():
    policy = RedactionPolicy()
    out = policy.scrub({"token": object(), "signature": b"\x01\x02", "kind": "x"})
    assert out == {"kind": "x"}


def test_unknown_keys_are_hashed(pinned_salt):
    policy = RedactionPolicy()
    out = policy.scrub({"sender": "sp0"})
    assert out["sender"].startswith("#")
    assert len(out["sender"]) == 13
    assert "sp0" not in out["sender"]
    # stable within a (salted) run: the operator can correlate senders
    assert out["sender"] == hash_value("sp0")


def test_safe_key_with_oversized_value_is_hashed():
    policy = RedactionPolicy()
    blob = "x" * 200
    out = policy.scrub({"status": blob})
    assert out["status"].startswith("#") and blob not in out["status"]


def test_safe_key_with_container_value_is_hashed():
    policy = RedactionPolicy()
    out = policy.scrub({"count": [1, 2, 3]})
    assert out["count"].startswith("#")


def test_salt_changes_digests():
    first = redact.configure(salt=b"salt-one")
    try:
        one = hash_value("sp0")
        redact.configure(salt=b"salt-two")
        two = hash_value("sp0")
        assert one != two
    finally:
        redact.configure(salt=first)


def test_hash_value_distinguishes_types(pinned_salt):
    # b"1", "1" and 1 must not collide via a sloppy canonicalization
    assert len({hash_value(b"1"), hash_value("1"), hash_value(1)}) == 3
    assert hash_value(True) != hash_value(1)


def test_trace_id_deterministic_and_opaque(pinned_salt):
    rid = "sp0:auto:17"
    tid = trace_id(rid)
    assert tid == trace_id(rid)  # every layer derives the same id
    assert tid.startswith("t") and len(tid) == 17
    assert "sp0" not in tid and "auto" not in tid


def test_key_sets_are_disjoint():
    assert not (SAFE_KEYS & DROP_KEYS)


def test_configure_rejects_empty_salt():
    with pytest.raises(ValueError):
        redact.configure(salt=b"")

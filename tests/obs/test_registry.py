"""Metric instruments: typing, toggles, merge, and both exporters."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import LATENCY_BUCKETS, SIZE_BUCKETS, MetricsRegistry


def test_counter_accumulates_and_rejects_negative():
    registry = MetricsRegistry()
    c = registry.counter("repro_requests_total", "requests")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_sets_and_moves():
    registry = MetricsRegistry()
    g = registry.gauge("repro_queue_depth")
    g.set(7)
    g.inc(2)
    g.dec()
    assert g.value == 8


def test_histogram_buckets_and_quantile():
    registry = MetricsRegistry()
    h = registry.histogram("repro_batch_size", buckets=(1.0, 2.0, 4.0, 8.0))
    for v in (1, 2, 3, 5, 100):
        h.observe(v)
    assert h.count == 5
    assert h.sum == 111
    assert h.counts == [1, 1, 1, 1, 1]  # last slot is the +inf overflow
    assert h.quantile(0.5) == 4.0  # bucket upper bound, not exact value
    assert h.quantile(1.0) == math.inf


def test_histogram_rejects_unsorted_ladder():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("repro_bad", buckets=(4.0, 1.0))


def test_get_or_create_is_keyed_on_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("repro_sheds_total", reason="rate")
    b = registry.counter("repro_sheds_total", reason="queue")
    c = registry.counter("repro_sheds_total", reason="rate")
    assert a is c and a is not b


def test_type_clash_raises():
    registry = MetricsRegistry()
    registry.counter("repro_thing")
    with pytest.raises(ValueError):
        registry.gauge("repro_thing")


def test_invalid_metric_name_rejected():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("repro thing")


def test_disabled_registry_records_nothing_but_still_builds():
    registry = MetricsRegistry(enabled=False)
    c = registry.counter("repro_requests_total")
    h = registry.histogram("repro_latency")
    c.inc(10)
    h.observe(0.5)
    assert c.value == 0 and h.count == 0
    registry.enabled = True  # live-flippable, same instruments
    c.inc()
    assert c.value == 1


def test_label_values_pass_the_redaction_gate():
    registry = MetricsRegistry()
    c = registry.counter("repro_by_sender_total", sender="sp0")
    assert c.labels["sender"].startswith("#")
    assert "sp0" not in registry.to_prometheus()


def test_snapshot_merge_adds_counters_and_histograms():
    a = MetricsRegistry()
    a.counter("repro_requests_total").inc(3)
    a.gauge("repro_depth").set(5)
    h = a.histogram("repro_batch_size", buckets=SIZE_BUCKETS)
    h.observe(4)
    h.observe(100)

    b = MetricsRegistry()
    b.counter("repro_requests_total").inc(10)
    b.merge(a.snapshot())
    b.merge(a.snapshot())

    assert b.counter("repro_requests_total").value == 16
    assert b.gauge("repro_depth").value == 5  # gauges overwrite
    merged = b.histogram("repro_batch_size", buckets=SIZE_BUCKETS)
    assert merged.count == 4 and merged.sum == 208


def test_merge_rejects_mismatched_ladders():
    a = MetricsRegistry()
    a.histogram("repro_h", buckets=(1.0, 2.0)).observe(1)
    b = MetricsRegistry()
    b.histogram("repro_h", buckets=(1.0, 2.0, 4.0))
    with pytest.raises(ValueError):
        b.merge(a.snapshot())


def test_merge_works_on_a_disabled_aggregator():
    source = MetricsRegistry()
    source.counter("repro_requests_total").inc(7)
    sink = MetricsRegistry(enabled=False)
    sink.merge(source.snapshot())
    assert sink.counter("repro_requests_total").value == 7
    assert sink.enabled is False  # flag restored after the fold


def test_to_json_round_trips_the_snapshot():
    registry = MetricsRegistry()
    registry.counter("repro_requests_total", "requests", kind="deposit").inc(2)
    data = json.loads(registry.to_json())
    assert data == registry.snapshot()
    (entry,) = data["counters"]
    assert entry["value"] == 2 and entry["labels"] == {"kind": "deposit"}


def test_prometheus_text_format():
    registry = MetricsRegistry()
    registry.counter("repro_requests_total", "requests seen",
                     kind="deposit").inc(2)
    registry.counter("repro_requests_total", "requests seen",
                     kind="withdraw").inc(1)
    registry.gauge("repro_depth", "queue depth").set(4)
    h = registry.histogram("repro_latency_seconds", "latency",
                           buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(30.0)
    text = registry.to_prometheus()
    lines = text.splitlines()
    # HELP/TYPE emitted once per metric name, not once per label set
    assert lines.count("# TYPE repro_requests_total counter") == 1
    assert 'repro_requests_total{kind="deposit"} 2' in lines
    assert 'repro_requests_total{kind="withdraw"} 1' in lines
    assert "repro_depth 4" in lines
    # histogram buckets are cumulative and end at +Inf == count
    assert 'repro_latency_seconds_bucket{le="0.1"} 1' in lines
    assert 'repro_latency_seconds_bucket{le="1"} 2' in lines
    assert 'repro_latency_seconds_bucket{le="+Inf"} 3' in lines
    assert "repro_latency_seconds_count 3" in lines
    assert any(line.startswith("repro_latency_seconds_sum ") for line in lines)


def test_default_ladders_are_fixed_and_ascending():
    assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
    assert list(SIZE_BUCKETS) == sorted(SIZE_BUCKETS)
    assert LATENCY_BUCKETS[0] < 1e-5 and LATENCY_BUCKETS[-1] >= 16.0
    assert SIZE_BUCKETS[0] == 1.0

"""Tests for workload generators (sensing payloads, market populations)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.net.codec import decode
from repro.workloads.population import generate_market
from repro.workloads.sensing import (
    GENERATORS,
    health_telemetry,
    noise_map_reading,
    transit_trace,
)


@pytest.fixture()
def np_rng():
    return np.random.default_rng(42)


class TestSensingPayloads:
    def test_noise_payload_decodes(self, np_rng):
        payload = decode(noise_map_reading(np_rng))
        assert payload["kind"] == "noise-map"
        assert len(payload["fix"]) == 30
        for lat, lon, db in payload["fix"]:
            assert 30 <= lat <= 34 and 116 <= lon <= 121
            assert 35 <= db <= 110

    def test_health_payload_decodes(self, np_rng):
        payload = decode(health_telemetry(np_rng, hours=12))
        assert len(payload["hr"]) == 12
        assert all(45 <= h <= 180 for h in payload["hr"])
        assert all(s >= 0 for s in payload["steps"])

    def test_transit_payload_decodes(self, np_rng):
        payload = decode(transit_trace(np_rng, stops=5))
        assert len(payload["arrivals"]) == 5
        assert payload["arrivals"] == sorted(payload["arrivals"])

    def test_generators_registry(self, np_rng):
        assert set(GENERATORS) == {"noise", "health", "transit"}
        for gen in GENERATORS.values():
            assert isinstance(gen(np_rng), bytes)

    def test_deterministic_per_seed(self):
        a = noise_map_reading(np.random.default_rng(1))
        b = noise_map_reading(np.random.default_rng(1))
        c = noise_map_reading(np.random.default_rng(2))
        assert a == b != c


class TestMarketPopulation:
    def test_uniform_market(self):
        rng = random.Random(3)
        market = generate_market(rng, level=5, n_jobs=10)
        assert len(market.jobs) == 10
        assert all(1 <= j.payment <= 32 for j in market.jobs)
        assert all(1 <= j.n_participants <= 4 for j in market.jobs)

    def test_distinct_payments(self):
        rng = random.Random(4)
        market = generate_market(rng, level=5, n_jobs=20, payment_mode="distinct")
        payments = [j.payment for j in market.jobs]
        assert len(set(payments)) == 20

    def test_distinct_overflow_rejected(self):
        rng = random.Random(5)
        with pytest.raises(ValueError):
            generate_market(rng, level=2, n_jobs=10, payment_mode="distinct")

    def test_unitary_market(self):
        rng = random.Random(6)
        market = generate_market(rng, level=3, n_jobs=5, payment_mode="unitary")
        assert all(j.payment == 1 for j in market.jobs)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            generate_market(random.Random(7), level=3, n_jobs=2, payment_mode="exotic")

    def test_total_payout(self):
        rng = random.Random(8)
        market = generate_market(rng, level=4, n_jobs=6)
        assert market.total_payout == sum(j.payment * j.n_participants for j in market.jobs)

    def test_participants_range_respected(self):
        rng = random.Random(9)
        market = generate_market(rng, level=3, n_jobs=8, participants_per_job=(2, 2))
        assert all(j.n_participants == 2 for j in market.jobs)


class TestArrivalProcesses:
    def test_poisson_sorted_in_horizon(self):
        from repro.workloads.arrivals import poisson_arrivals

        rng = random.Random(1)
        arrivals = poisson_arrivals(rng, rate=2.0, horizon=100.0)
        assert arrivals == sorted(arrivals)
        assert all(0 <= t < 100.0 for t in arrivals)
        # mean count ~ rate * horizon = 200
        assert 120 < len(arrivals) < 280

    def test_poisson_validation(self):
        from repro.workloads.arrivals import poisson_arrivals

        with pytest.raises(ValueError):
            poisson_arrivals(random.Random(1), rate=0, horizon=1)

    def test_bursty_denser_in_bursts(self):
        from repro.workloads.arrivals import bursty_arrivals

        rng = random.Random(2)
        arrivals = bursty_arrivals(
            rng, rate_on=10.0, rate_off=0.1, mean_on=5.0, mean_off=5.0, horizon=200.0
        )
        assert arrivals == sorted(arrivals)
        # gaps are bimodal: many tiny (in-burst), some huge (off phases)
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert min(gaps) < 0.5 and max(gaps) > 2.0

    def test_bursty_validation(self):
        from repro.workloads.arrivals import bursty_arrivals

        with pytest.raises(ValueError):
            bursty_arrivals(random.Random(1), rate_on=1, rate_off=-1,
                            mean_on=1, mean_off=1, horizon=1)

    def test_diurnal_peaks_midday(self):
        from repro.workloads.arrivals import diurnal_arrivals

        rng = random.Random(3)
        day = 24.0
        arrivals = diurnal_arrivals(rng, base_rate=5.0, peak_factor=4.0,
                                    day_length=day, horizon=day)
        assert arrivals == sorted(arrivals)
        midday = sum(1 for t in arrivals if day / 4 <= t <= 3 * day / 4)
        edges = len(arrivals) - midday
        assert midday > edges  # sin² peaks in the middle of the day

    def test_diurnal_validation(self):
        from repro.workloads.arrivals import diurnal_arrivals

        with pytest.raises(ValueError):
            diurnal_arrivals(random.Random(1), base_rate=1, peak_factor=-1,
                             day_length=1, horizon=1)

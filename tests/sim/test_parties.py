"""Property tests for the campaign party state machines.

The machines must be total: ANY interleaving of deliveries, timeouts,
crashes, and garbage payloads leaves a party in a declared-legal state
without raising — Byzantine peers get to send anything.  The
:class:`~repro.sim.party.RecordingContext` stubs conserve integer
value, so a completed honest lifecycle is also checkable for exact
wallet conservation without touching any cryptography.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sim.party import (
    JobOwnerParty,
    MaliciousMAParty,
    MAParty,
    OmissionSP,
    PartyEvent,
    PbsJobOwnerParty,
    PbsSensingParty,
    RecordingContext,
    ReplaySP,
    RingLeader,
    RingMember,
    SensingParty,
    TERMINAL_STATES,
)


# ---------------------------------------------------------------------------
# roster factories: every party shape the campaign can build
# ---------------------------------------------------------------------------

def _factories():
    return [
        ("jo", lambda ctx: JobOwnerParty(
            "jo", ctx, job_id="job-0", payment=3,
            sp_names=("sp0", "sp1"), funds=3 * ctx.coin_value)),
        ("sp", lambda ctx: SensingParty("sp", ctx)),
        ("sp-omission", lambda ctx: OmissionSP("sp", ctx)),
        ("sp-replay", lambda ctx: ReplaySP("sp", ctx)),
        ("ring-leader", lambda ctx: RingLeader(
            "leader", ctx, members=("m0", "m1"))),
        ("ring-member", lambda ctx: RingMember("m0", ctx)),
        ("ma", lambda ctx: MAParty("ma", ctx)),
        ("ma-malicious", lambda ctx: MaliciousMAParty("ma", ctx)),
        ("pbs-jo", lambda ctx: PbsJobOwnerParty(
            "pjo", ctx, job_id="pjob-0", sp_names=("psp0",), funds=2)),
        ("pbs-sp", lambda ctx: PbsSensingParty("psp", ctx)),
    ]


FACTORIES = _factories()

#: every event kind any machine handles, plus protocol noise
ALL_KINDS = sorted(
    {k for _, f in FACTORIES for k in f(RecordingContext()).HANDLERS}
    | {"timeout", "crash", "no-such-kind"}
)

#: payloads from well-formed through subtly wrong to pure garbage
PAYLOADS = st.one_of(
    st.none(),
    st.integers(),
    st.just({}),
    st.just({"sp": "x", "sp_pubkey": "k"}),
    st.just({"jo": "jo", "job": "j", "payment": 2, "jo_pubkey": "k"}),
    st.just({"jo": "jo", "job": "j", "payment": "lots", "jo_pubkey": "k"}),
    st.just({"ciphertext": "junk", "jo_pubkey": "k"}),
    st.just({"rid": "r", "token_index": 0}),
    st.just({"rid": "r", "token_index": 99}),
    st.just({"rid": "r", "token_index": "zero"}),
    st.just({"token": 1}),
    st.just({"job": "j", "payment": 2}),
    st.just({"job": "j", "payment": -5}),
    st.just({"aid": "a", "amount": 3}),
    st.just({"aid": "a", "amount": "three"}),
    st.just({"truth": {}}),
    st.just({"truth": 41}),
    st.just({"sp": "x", "ciphertext": "c"}),
    st.just({"sp": "x", "blinded": 1, "serial": b"s"}),
    st.just({"pbs": "sig", "ctr": 0}),
    st.just({"rid": "r"}),
    st.dictionaries(st.text(max_size=4), st.integers(), max_size=3),
)

EVENTS = st.lists(
    st.tuples(st.sampled_from(ALL_KINDS), PAYLOADS), min_size=0, max_size=14
)


@settings(max_examples=60)
@given(idx=st.integers(0, len(FACTORIES) - 1), events=EVENTS,
       seed=st.integers(0, 2**16))
def test_any_interleaving_leaves_a_legal_state(idx, events, seed):
    """Deliver anything in any order: no exception, state stays declared."""
    role, factory = FACTORIES[idx]
    ctx = RecordingContext(seed)
    party = factory(ctx)
    legal = party.legal_states()
    crashed = False
    for kind, payload in events:
        was_terminal = party.terminal
        state_before = party.state
        party.handle(PartyEvent(kind, payload))
        assert party.state in legal, (role, kind, party.state)
        if kind == "crash":
            crashed = True
        if crashed:
            assert party.state == "crashed"
        if was_terminal and kind != "crash":
            assert party.state == state_before  # terminal states absorb
    assert party.handled == len(events)


@settings(max_examples=25)
@given(idx=st.integers(0, len(FACTORIES) - 1), events=EVENTS)
def test_crash_dominates_from_any_state(idx, events):
    _, factory = FACTORIES[idx]
    party = factory(RecordingContext())
    for kind, payload in events:
        party.handle(PartyEvent(kind, payload))
    party.handle(PartyEvent("crash"))
    assert party.state == "crashed"
    party.handle(PartyEvent("start"))
    assert party.state == "crashed"


def test_timeout_is_ignored_before_start_and_aborts_mid_protocol():
    ctx = RecordingContext()
    sp = SensingParty("sp", ctx)
    sp.handle(PartyEvent("timeout"))
    assert sp.state == "idle"  # nothing owed yet: silence is fine
    sp.handle(PartyEvent("recruit", {
        "jo": "jo", "job": "j", "payment": 2, "jo_pubkey": "k"}))
    assert sp.state == "registered"
    sp.handle(PartyEvent("timeout"))
    assert sp.state == "aborted"


# ---------------------------------------------------------------------------
# honest lifecycle over the value-conserving stubs
# ---------------------------------------------------------------------------

def _pump(ctx: RecordingContext, parties: dict) -> int:
    """Deliver every recorded send, FIFO, until the roster quiesces."""
    cursor = 0
    while cursor < len(ctx.sent):
        to, kind, payload, _delay = ctx.sent[cursor]
        cursor += 1
        assert cursor < 10_000, "roster never quiesced"
        party = parties.get(to)
        if party is not None:
            party.handle(PartyEvent(kind, payload))
    return cursor


@settings(max_examples=30)
@given(n_sps=st.integers(1, 4), payment=st.integers(1, 8),
       seed=st.integers(0, 2**16))
def test_honest_dec_lifecycle_conserves_wallet_value(n_sps, payment, seed):
    """Complete JO+SPs run: every unit funded is on some account after."""
    ctx = RecordingContext(seed)
    sp_names = tuple(f"sp{j}" for j in range(n_sps))
    funds = (n_sps + 1) * ctx.coin_value
    jo = JobOwnerParty("jo", ctx, job_id="job-0", payment=payment,
                       sp_names=sp_names, funds=funds)
    parties = {"jo": jo}
    for name in sp_names:
        parties[name] = SensingParty(name, ctx)
    jo.handle(PartyEvent("start"))
    _pump(ctx, parties)

    assert jo.state == "done"
    assert all(parties[n].state == "done" for n in sp_names)
    assert jo.paid_sps == n_sps
    assert jo.paid_value == payment * n_sps
    # the withdrawn coins split exactly into payments plus change
    assert jo.paid_value + jo.change_value == jo.withdrawn * ctx.coin_value
    # economy-wide: nothing minted, nothing burned
    assert sum(ctx.accounts.values()) == funds
    for name in sp_names:
        assert ctx.accounts[name] == payment


@settings(max_examples=15)
@given(seed=st.integers(0, 2**16))
def test_omission_sp_leaves_value_outstanding(seed):
    ctx = RecordingContext(seed)
    jo = JobOwnerParty("jo", ctx, job_id="job-0", payment=4,
                       sp_names=("sp0",), funds=2 * ctx.coin_value)
    sp = OmissionSP("sp0", ctx)
    jo.handle(PartyEvent("start"))
    _pump(ctx, {"jo": jo, "sp0": sp})
    assert sp.state == "silent"
    assert not ctx.deposits  # the payment value never reached the bank
    assert sum(ctx.accounts.values()) == 2 * ctx.coin_value - 4


def test_replay_sp_deposits_every_token_twice():
    ctx = RecordingContext(3)
    jo = JobOwnerParty("jo", ctx, job_id="job-0", payment=3,
                       sp_names=("sp0",), funds=2 * ctx.coin_value)
    sp = ReplaySP("sp0", ctx)
    jo.handle(PartyEvent("start"))
    _pump(ctx, {"jo": jo, "sp0": sp})
    assert sp.state == "done"
    honest = [rid for _, rid, _ in ctx.deposits if ":dep:" in rid]
    replays = [rid for _, rid, _ in ctx.deposits if ":replay:" in rid]
    assert len(honest) == len(replays) == 3
    assert sp.replay_rids == replays


def test_ring_fences_conflicting_tokens_to_every_member():
    ctx = RecordingContext(5)
    members = ("m0", "m1")
    leader = RingLeader("leader", ctx, members=members, denomination=1)
    parties = {"leader": leader}
    for name in members:
        parties[name] = RingMember(name, ctx)
        parties[name].handle(PartyEvent("start"))
    leader.handle(PartyEvent("start"))
    _pump(ctx, parties)
    assert leader.state == "done"
    assert all(parties[m].state == "done" for m in members)
    deposited = [token for _, _, token in ctx.deposits]
    assert len(deposited) == 3  # one per ring account, all the same node
    assert len({t[2] for t in deposited}) == 1  # identical denomination


def test_pbs_lifecycle_reaches_deposit():
    ctx = RecordingContext(9)
    jo = PbsJobOwnerParty("pjo", ctx, job_id="pjob", sp_names=("psp",), funds=2)
    sp = PbsSensingParty("psp", ctx)
    jo.handle(PartyEvent("start"))
    _pump(ctx, {"pjo": jo, "psp": sp})
    assert jo.state == "done" and jo.signed == 1
    assert sp.state == "done" and sp.deposit_status == "OK"
    assert [rid for _, rid, _ in ctx.pbs_deposits] == ["psp:pbs"]


def test_malicious_ma_scores_only_accounts_with_ground_truth():
    ctx = RecordingContext(1)
    ma = MaliciousMAParty("ma", ctx)
    ma.handle(PartyEvent("start"))
    ma.handle(PartyEvent("observe-job", {"job": "j0", "payment": 3}))
    ma.handle(PartyEvent("observe-job", {"job": "j1", "payment": 5}))
    for aid, amounts in (("sp0", [2, 1]), ("ring0", [1]), ("sp1", [4, 1])):
        for amount in amounts:
            ma.handle(PartyEvent("observe-deposit", {"aid": aid, "amount": amount}))
    ma.handle(PartyEvent("conclude", {"truth": {"sp0": "j0", "sp1": "j1"}}))
    assert ma.state == "done"
    assert set(ma.results) == {"sp0", "sp1"}  # ring0 has no job to link
    assert all(r.true_job_covered for r in ma.results.values())

"""Tests for the discrete-event engine and the market simulation."""

from __future__ import annotations

import random

import pytest

from repro.sim.events import EventQueue, SimulationError
from repro.sim.market_sim import DepositPolicy, MarketSimulation, run_timing_attack


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        order = []
        q.schedule(3.0, lambda: order.append("c"))
        q.schedule(1.0, lambda: order.append("a"))
        q.schedule(2.0, lambda: order.append("b"))
        q.run()
        assert order == ["a", "b", "c"]
        assert q.now == 3.0

    def test_tie_break_by_insertion(self):
        q = EventQueue()
        order = []
        q.schedule(1.0, lambda: order.append("first"))
        q.schedule(1.0, lambda: order.append("second"))
        q.run()
        assert order == ["first", "second"]

    def test_actions_can_schedule(self):
        q = EventQueue()
        hits = []

        def recurse(n):
            hits.append(n)
            if n < 3:
                q.schedule_in(1.0, lambda: recurse(n + 1))

        q.schedule(0.0, lambda: recurse(0))
        q.run()
        assert hits == [0, 1, 2, 3]
        assert q.now == 3.0

    def test_no_time_travel(self):
        q = EventQueue()
        q.schedule(5.0, lambda: q.schedule(1.0, lambda: None))
        with pytest.raises(SimulationError):
            q.run()

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule_in(-1.0, lambda: None)

    def test_run_until(self):
        q = EventQueue()
        hits = []
        for t in (1.0, 2.0, 3.0):
            q.schedule(t, lambda t=t: hits.append(t))
        q.run(until=2.0)
        assert hits == [1.0, 2.0]
        q.run()
        assert hits == [1.0, 2.0, 3.0]

    def test_event_budget(self):
        q = EventQueue()

        def forever():
            q.schedule_in(1.0, forever)

        q.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="budget"):
            q.run(max_events=100)

    def test_step_and_pending(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        assert q.pending == 1
        assert q.step() is True
        assert q.step() is False


class TestDepositPolicy:
    def test_immediate_is_near_zero(self, rng):
        policy = DepositPolicy.immediate()
        assert policy.initial_wait(rng) < 1e-3
        assert policy.between_wait(rng) < 1e-3

    def test_randomized_positive(self, rng):
        policy = DepositPolicy.randomized(5.0)
        waits = [policy.initial_wait(rng) for _ in range(50)]
        assert all(w >= 0 for w in waits)
        assert sum(waits) / len(waits) > 1.0  # mean ~5

    def test_immediate_is_exactly_zero_and_leaves_rng_untouched(self, rng):
        """Regression: ``immediate()`` used to return ``rng.uniform(0, 1e-6)``,
        which both perturbed event times and silently consumed RNG state
        (shifting every later draw).  The EventQueue FIFO tiebreaker makes
        the jitter unnecessary, so the waits must be exact zeros."""
        policy = DepositPolicy.immediate()
        before = rng.getstate()
        assert policy.initial_wait(rng) == 0.0
        assert policy.between_wait(rng) == 0.0
        assert rng.getstate() == before

    def test_immediate_deposits_resolve_in_fifo_order(self):
        """Two same-time immediate deposits fire in scheduling order."""
        policy = DepositPolicy.immediate()
        rng = random.Random(0)
        queue = EventQueue()
        fired: list[str] = []
        for name in ("first", "second", "third"):
            queue.schedule_in(
                policy.between_wait(rng), lambda name=name: fired.append(name)
            )
        queue.run()
        assert fired == ["first", "second", "third"]


class TestMarketSimulation:
    def test_jobs_complete_and_books_balance(self, dec_params_toy, rng):
        from repro.core.ppms_dec import PPMSdecSession

        session = PPMSdecSession(dec_params_toy, rng, rsa_bits=512)
        sim = MarketSimulation(session, rng, deposit_policy=DepositPolicy.immediate())
        for i in range(3):
            sim.schedule_job(float(i), payment=2 + i)
        trace = sim.run()
        assert len(trace.deliveries) == 3
        assert trace.deposits, "deposits must have been executed"
        for i in range(3):
            assert session.ma.bank.balance(f"sim-sp-{i}") == 2 + i

    def test_deposit_times_follow_deliveries(self, dec_params_toy, rng):
        from repro.core.ppms_dec import PPMSdecSession

        session = PPMSdecSession(dec_params_toy, rng, rsa_bits=512)
        sim = MarketSimulation(session, rng, deposit_policy=DepositPolicy.randomized(2.0))
        sim.schedule_job(0.0, payment=3)
        trace = sim.run()
        delivery_time = trace.deliveries[0].time
        assert all(dep.time >= delivery_time for dep in trace.deposits)


class TestEndToEndTimingAttack:
    def test_policy_gap_on_real_protocol(self, dec_params_toy):
        """The paper's random-wait prescription, measured end to end."""
        naive = run_timing_attack(
            dec_params_toy, n_jobs=8, policy=DepositPolicy.immediate(), seed=5
        )
        careful = run_timing_attack(
            dec_params_toy, n_jobs=8, policy=DepositPolicy.randomized(10.0), seed=5
        )
        assert naive >= 0.75
        assert careful <= naive

    def test_empty_market(self, dec_params_toy):
        assert run_timing_attack(
            dec_params_toy, n_jobs=0, policy=DepositPolicy.immediate(), seed=1
        ) == 0.0

"""End-to-end campaign tests: the adversarial economy vs the live service.

Default scale is ~100 parties per campaign (seconds).  Setting
``REPRO_CAMPAIGN_SMOKE=1`` additionally runs the thousand-party mixed
campaign and the socket/cluster backends (the CI smoke job and the
nightly cron do; ``make campaign-smoke`` locally).
"""

from __future__ import annotations

import os

import pytest

from repro.sim.campaign import (
    CampaignConfig,
    denomination_campaign,
    double_spend_campaign,
    honest_campaign,
    mixed_campaign,
    run_campaign,
)

SMOKE = bool(os.environ.get("REPRO_CAMPAIGN_SMOKE", "").strip())
smoke_only = pytest.mark.skipif(
    not SMOKE, reason="set REPRO_CAMPAIGN_SMOKE=1 to run the big campaigns"
)


def _run(config, campaign_substrate):
    params, keypair = campaign_substrate
    return run_campaign(config, params=params, keypair=keypair)


# ---------------------------------------------------------------------------
# honest economy
# ---------------------------------------------------------------------------

def test_honest_campaign_is_clean_with_zero_detections(campaign_substrate):
    report = _run(honest_campaign(1, scale=2), campaign_substrate)
    assert report.clean, report.summary()
    assert report.detections == {}
    assert set(report.verdicts) == {"OK"}  # nothing rejected, nothing shed
    assert report.conservation["outstanding"] == 0
    # every honest party must have completed its lifecycle
    assert all(
        ledger["state"] == "done" for ledger in report.parties.values()
    ), report.summary()


def test_report_embeds_seed_and_replay_command(campaign_substrate):
    report = _run(honest_campaign(4), campaign_substrate)
    assert f"--seed {report.seed}" in report.replay_command()
    broken = _run(honest_campaign(4), campaign_substrate)
    broken.invariants = ("synthetic finding",)
    text = broken.summary()
    assert "synthetic finding" in text
    assert broken.replay_command() in text  # failure output is replayable


# ---------------------------------------------------------------------------
# denomination attack (paper Section VI): PCBA/EPCBA sweep
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", ["unitary", "pcba", "epcba"])
def test_denomination_attack_runs_at_paper_points(algorithm, campaign_substrate):
    report = _run(
        denomination_campaign(2, break_algorithm=algorithm), campaign_substrate
    )
    assert report.clean, report.summary()
    metrics = report.detections["denomination"]
    assert metrics["algorithm"] == algorithm
    assert metrics["scored"] > 0
    # the attack enumerates every consistent explanation, so the true
    # job is always in the anonymity set (the paper's completeness)
    assert metrics["truth_covered"]
    assert metrics["min_anonymity"] >= 1


def test_structured_breaks_leak_more_than_unitary(campaign_substrate):
    """Table-III direction: PCBA/EPCBA shrink the anonymity set that
    unitary coin breaking keeps maximal."""
    by_alg = {
        alg: _run(
            denomination_campaign(2, break_algorithm=alg), campaign_substrate
        ).detections["denomination"]
        for alg in ("unitary", "pcba", "epcba")
    }
    assert by_alg["unitary"]["mean_anonymity"] >= by_alg["pcba"]["mean_anonymity"]
    assert by_alg["unitary"]["mean_anonymity"] >= by_alg["epcba"]["mean_anonymity"]
    assert by_alg["unitary"]["unique_rate"] <= max(
        by_alg["pcba"]["unique_rate"], by_alg["epcba"]["unique_rate"]
    )


# ---------------------------------------------------------------------------
# double-spend rings and replayers
# ---------------------------------------------------------------------------

def test_double_spend_ring_always_caught_with_identity_revealed(
        campaign_substrate):
    report = _run(double_spend_campaign(3, scale=2), campaign_substrate)
    assert report.clean, report.summary()
    ds = report.detections["double_spend"]
    assert ds["caught"]  # at most one admission per ring
    assert ds["admitted"] == ds["rings"]
    assert ds["rejected"] == ds["deposits"] - ds["rings"]
    assert ds["identity_revealed"]  # evidence names a ring account
    replay = report.detections["replay"]
    assert replay["attempts"] > 0
    assert replay["detection_rate"] == 1.0


def test_mixed_campaign_detects_everything_and_stays_conserved(
        campaign_substrate):
    report = _run(mixed_campaign(5), campaign_substrate)
    assert report.clean, report.summary()
    assert {"denomination", "double_spend", "replay"} <= set(report.detections)
    assert report.detections["double_spend"]["caught"]
    assert report.detections["replay"]["detection_rate"] == 1.0
    # omission SPs leave value outstanding; conservation absorbs it
    assert report.conservation["outstanding"] > 0
    assert report.conservation["conserved"]


# ---------------------------------------------------------------------------
# seed replay: the regression the report format exists for
# ---------------------------------------------------------------------------

def test_same_seed_reproduces_report_byte_for_byte(campaign_substrate):
    first = _run(mixed_campaign(8), campaign_substrate)
    second = _run(mixed_campaign(8), campaign_substrate)
    assert first.trace_digest == second.trace_digest
    assert first.to_json() == second.to_json()
    assert first.digest() == second.digest()


def test_different_seeds_diverge(campaign_substrate):
    a = _run(honest_campaign(10), campaign_substrate)
    b = _run(honest_campaign(11), campaign_substrate)
    assert a.trace_digest != b.trace_digest


def test_config_roundtrips_through_report(campaign_substrate):
    config = mixed_campaign(6)
    report = _run(config, campaign_substrate)
    assert CampaignConfig.from_dict(report.config) == config


# ---------------------------------------------------------------------------
# scale + alternate backends (smoke / nightly)
# ---------------------------------------------------------------------------

@smoke_only
def test_thousand_party_mixed_campaign(campaign_substrate):
    report = _run(mixed_campaign(42, scale=45), campaign_substrate)
    assert report.n_parties >= 1000, report.n_parties
    assert report.clean, report.summary()
    assert report.detections["double_spend"]["caught"]
    assert report.detections["replay"]["detection_rate"] == 1.0
    denom = report.detections["denomination"]
    assert denom["scored_complete"] > 0  # some SPs escaped the fault plan
    assert denom["truth_covered"]  # completeness over fully-observed accounts


@smoke_only
def test_campaign_over_socket_frontend(campaign_substrate):
    report = _run(honest_campaign(7, backend="socket"), campaign_substrate)
    assert report.clean, report.summary()
    assert set(report.verdicts) == {"OK"}


@smoke_only
def test_campaign_over_local_cluster(campaign_substrate):
    report = _run(double_spend_campaign(9, backend="cluster"),
                  campaign_substrate)
    assert report.clean, report.summary()
    assert report.detections["double_spend"]["caught"]

"""Batcher flushes with warmed vs cold fixed-base table caches.

Correctness must be cache-independent: the same job set flushed through
a warmed batcher and a cold one (and with fast-exp disabled entirely)
must produce identical outcomes.  With tables forced on, the opcount
metrics surface must show the warm-up builds and the flush-time hits.
"""

from __future__ import annotations

import pytest

from repro.crypto import fastexp
from repro.metrics.opcount import fastexp_stats, format_fastexp_stats
from repro.service import DepositJob, VerificationBatcher

from tests.service.conftest import mint_tokens


@pytest.fixture()
def forced_tables():
    """Force the table path for the small test groups; restore after."""
    previous = fastexp.configure(enabled=True, promote_after=0, min_modulus_bits=1)
    fastexp.reset()
    yield
    fastexp.configure(**previous)
    fastexp.reset()


def _jobs(service, rng, n=6):
    requests = mint_tokens(service, rng, n, node_level=1)
    return [
        DepositJob(seq=i, aid=r.sender, token=r.payload["token"])
        for i, r in enumerate(requests)
    ]


def _flush(service, jobs, *, warm_tables):
    batcher = VerificationBatcher(
        service.bank.params, service.bank.keypair,
        max_batch=len(jobs), seed=7, warm_tables=warm_tables,
    )
    for job in jobs:
        batcher.submit(job)
    return batcher.flush()


def test_warm_and_cold_flush_identical(forced_tables, service, rng):
    jobs = _jobs(service, rng)
    warm = _flush(service, jobs, warm_tables=True)
    fastexp.reset()
    cold = _flush(service, jobs, warm_tables=False)
    assert warm == cold
    assert all(o.valid for o in warm)


def test_disabled_tables_flush_identical(forced_tables, service, rng):
    jobs = _jobs(service, rng)
    with_tables = _flush(service, jobs, warm_tables=True)
    fastexp.configure(enabled=False)
    fastexp.reset()
    without_tables = _flush(service, jobs, warm_tables=False)
    assert with_tables == without_tables


def test_warm_builds_and_flush_hits_visible_in_opcount(forced_tables, service, rng):
    jobs = _jobs(service, rng)
    batcher = VerificationBatcher(
        service.bank.params, service.bank.keypair,
        max_batch=len(jobs), seed=7, warm_tables=True,
    )
    after_warm = fastexp_stats()
    builds = sum(row["builds"] for row in after_warm.values())
    assert builds > 0, "warm-up must build tables"

    for job in jobs:
        batcher.submit(job)
    outcomes = batcher.flush()
    assert all(o.valid for o in outcomes)

    after_flush = fastexp_stats()
    assert sum(row["hits"] for row in after_flush.values()) > 0, (
        "flush must hit the warmed tables"
    )
    # a warmed steady-state flush should not rebuild what was warmed
    assert after_flush["fastexp.int"]["hits"] > 0

    table = format_fastexp_stats(after_flush)
    assert "fastexp.int" in table and "hits" in table


def test_warm_tables_flag_off_builds_nothing(forced_tables, service):
    fastexp.reset()  # discard tables built while constructing the fixture
    VerificationBatcher(
        service.bank.params, service.bank.keypair, warm_tables=False
    )
    assert sum(row["builds"] for row in fastexp_stats().values()) == 0

"""Verification batcher: coalescing, ordering, determinism."""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.crypto.cl_sig import cl_keygen
from repro.ecash.dec import begin_withdrawal, finish_withdrawal
from repro.ecash.spend import create_spend, verify_spend
from repro.service import (
    DepositJob,
    DepositOutcome,
    VerificationBatcher,
    WithdrawJob,
    WithdrawOutcome,
)

from tests.service.conftest import mint_tokens


@pytest.fixture()
def batcher(dec_params_toy, service):
    return VerificationBatcher(
        dec_params_toy, service.bank.keypair, max_batch=8, seed=7
    )


def _deposit_jobs(service, rng, n, start_seq=0):
    requests = mint_tokens(service, rng, n, node_level=1)
    return [
        DepositJob(seq=start_seq + i, aid=r.sender, token=r.payload["token"])
        for i, r in enumerate(requests)
    ]


class TestFlush:
    def test_outcomes_in_job_order(self, batcher, service, rng):
        jobs = _deposit_jobs(service, rng, 5)
        for job in reversed(jobs):
            batcher.submit(job)
        outcomes = batcher.flush()
        assert [o.seq for o in outcomes] == [j.seq for j in reversed(jobs)]
        assert all(isinstance(o, DepositOutcome) and o.valid for o in outcomes)

    def test_valid_deposit_carries_expanded_serials(self, batcher, service, rng):
        job = _deposit_jobs(service, rng, 1)[0]
        batcher.submit(job)
        (outcome,) = batcher.flush()
        assert outcome.serials == tuple(service.bank.expand_serials(job.token))

    def test_invalid_token_flagged_without_serials(self, batcher, service, rng):
        job = _deposit_jobs(service, rng, 1)[0]
        backend = service.bank.params.backend
        forged = dataclasses.replace(
            job.token, sig_b=backend.exp(job.token.sig_b, 2)
        )
        batcher.submit(DepositJob(seq=0, aid=job.aid, token=forged))
        (outcome,) = batcher.flush()
        assert not outcome.valid and outcome.serials is None

    def test_max_batch_respected(self, batcher, service, rng):
        for job in _deposit_jobs(service, rng, 10):
            batcher.submit(job)
        assert batcher.batch_ready
        first = batcher.flush()
        assert len(first) == 8 and len(batcher) == 2
        assert not batcher.batch_ready
        assert len(batcher.flush()) == 2

    def test_empty_flush(self, batcher):
        assert batcher.flush() == []

    def test_mixed_batch_deposit_and_withdraw(self, batcher, service, rng, dec_params_toy):
        deposit = _deposit_jobs(service, rng, 1)[0]
        secret, request = begin_withdrawal(dec_params_toy, rng)
        batcher.submit(deposit)
        batcher.submit(WithdrawJob(seq=deposit.seq + 1, aid="alice", request=request))
        outcomes = batcher.flush()
        assert isinstance(outcomes[0], DepositOutcome)
        assert isinstance(outcomes[1], WithdrawOutcome)
        # the issued signature certifies a working coin
        coin = finish_withdrawal(
            dec_params_toy, service.bank.public_key, secret, outcomes[1].signature
        )
        node = coin.wallet().allocate(1)
        token = create_spend(
            dec_params_toy, service.bank.public_key, coin.secret, coin.signature,
            node, rng,
        )
        assert verify_spend(dec_params_toy, service.bank.public_key, token)

    def test_context_partitions_deposit_groups(self, batcher, service, rng):
        requests = mint_tokens(service, rng, 2, node_level=1)
        # differing contexts must not share a batched-pairing group; the
        # verdicts must still come back valid and in order
        batcher.submit(DepositJob(seq=0, aid=requests[0].sender,
                                  token=requests[0].payload["token"], context=b"a"))
        batcher.submit(DepositJob(seq=1, aid=requests[1].sender,
                                  token=requests[1].payload["token"], context=b"b"))
        outcomes = batcher.flush()
        assert [o.seq for o in outcomes] == [0, 1]
        # context is bound into the Fiat–Shamir transcript: tokens were
        # minted under the empty context, so both must fail under a/b
        assert not outcomes[0].valid and not outcomes[1].valid


class TestDeterminism:
    def test_same_seed_same_outcomes(self, dec_params_toy, service, rng):
        jobs = _deposit_jobs(service, rng, 4)
        results = []
        for _ in range(2):
            batcher = VerificationBatcher(
                dec_params_toy, service.bank.keypair, max_batch=8, seed=3
            )
            for job in jobs:
                batcher.submit(job)
            results.append(batcher.flush())
        assert results[0] == results[1]

    def test_parameter_validation(self, dec_params_toy, rng):
        keypair = cl_keygen(dec_params_toy.backend, rng)
        with pytest.raises(ValueError):
            VerificationBatcher(dec_params_toy, keypair, max_batch=0)
        with pytest.raises(ValueError):
            VerificationBatcher(dec_params_toy, keypair, processes=0)

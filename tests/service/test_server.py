"""The serving loop: accept → admit → batch → apply."""

from __future__ import annotations

import random

import pytest

from repro.ecash.dec import begin_withdrawal, finish_withdrawal
from repro.metrics.latency import SLOTarget
from repro.service import (
    AdmissionController,
    MarketService,
    VerificationBatcher,
    run_trace,
)

from tests.service.conftest import mint_tokens


def _completions(service):
    seen = []
    service.add_completion_observer(seen.append)
    return seen


class TestCheapRequests:
    def test_open_account_and_balance(self, service):
        seen = _completions(service)
        service.submit("alice", "open-account", {"aid": "alice", "balance": 9})
        service.submit("alice", "balance", {"aid": "alice"})
        service.step(force=True)
        assert [c.status for c in seen] == ["OK", "OK"]
        assert service.bank.balance("alice") == 9

    def test_duplicate_open_fails_only_itself(self, service):
        seen = _completions(service)
        service.submit("alice", "open-account", {"aid": "alice", "balance": 1})
        service.submit("alice", "open-account", {"aid": "alice", "balance": 1})
        service.submit("alice", "balance", {"aid": "alice"})
        service.step(force=True)
        assert [c.status for c in seen] == ["OK", "ERROR", "OK"]
        assert len(service.failures) == 1

    def test_audit_request(self, service):
        seen = _completions(service)
        service.submit("auditor", "audit", {})
        service.step(force=True)
        assert seen[0].status == "OK"

    def test_unknown_kind_is_error(self, service):
        seen = _completions(service)
        service.submit("alice", "transmogrify", {})
        service.step(force=True)
        assert seen[0].status == "ERROR"


class TestDepositPath:
    def test_deposit_round_trip(self, service, rng):
        requests = mint_tokens(service, rng, 2, node_level=1)
        seen = _completions(service)
        before = {r.sender: service.bank.balance(r.sender) for r in requests}
        for request in requests:
            service.submit(request.sender, request.kind, request.payload)
        service.drain()
        assert [c.status for c in seen] == ["OK", "OK"]
        for request in requests:
            token = request.payload["token"]
            denom = token.denomination(service.bank.params.tree_level)
            assert service.bank.balance(request.sender) >= before[request.sender]

    def test_double_spend_rejected_with_evidence(self, service, rng):
        requests = mint_tokens(service, rng, 1)
        seen = _completions(service)
        request = requests[0]
        service.submit(request.sender, "deposit", request.payload)
        service.drain()
        service.submit(request.sender, "deposit", request.payload)
        service.drain()
        assert [c.status for c in seen] == ["OK", "REJECTED"]
        assert service.failures and "deposited" in service.failures[0].error

    def test_unknown_account_immediate_error(self, service, rng):
        requests = mint_tokens(service, rng, 1)
        seen = _completions(service)
        payload = dict(requests[0].payload, aid="ghost")
        service.submit("ghost", "deposit", payload)
        service.drain()
        assert seen[0].status == "ERROR"
        assert service.queue_depth == 0

    def test_tampered_token_fails_only_itself(self, service, rng):
        """Raw bytes where a SpendToken belongs must not poison the batch."""
        requests = mint_tokens(service, rng, 1, node_level=1)
        seen = _completions(service)
        service.submit("sp0", "deposit", {"aid": "sp0", "token": b"\x00" * 16})
        service.submit("sp0", "withdraw", {"aid": "sp0", "request": "bogus"})
        service.submit(requests[0].sender, "deposit", requests[0].payload)
        service.drain()
        assert [c.status for c in seen] == ["ERROR", "ERROR", "OK"]
        assert service.bank.audit().clean

    def test_fifo_per_sender(self, service, rng):
        requests = mint_tokens(service, rng, 6, node_level=1)
        seen = _completions(service)
        submitted = []
        for request in requests:
            submitted.append(
                service.submit(request.sender, request.kind, request.payload)
            )
        service.drain()
        by_sender: dict[str, list[int]] = {}
        for completion in seen:
            by_sender.setdefault(completion.sender, []).append(completion.seq)
        for sender, seqs in by_sender.items():
            assert seqs == sorted(seqs), f"{sender} replies out of order"


class TestWithdrawPath:
    def test_withdraw_issues_and_debits(self, service, rng, dec_params_toy):
        value = 1 << service.bank.params.tree_level
        service.bank.open_account("alice", value)
        secret, request = begin_withdrawal(dec_params_toy, rng)
        seen = _completions(service)
        service.submit("alice", "withdraw", {"aid": "alice", "request": request})
        service.drain()
        assert seen[0].status == "OK"
        assert service.bank.balance("alice") == 0
        assert service.bank.account_home("alice").withdrawals == ["alice"]

    def test_underfunded_withdraw_is_error(self, service, rng, dec_params_toy):
        service.bank.open_account("alice", 1)
        _, request = begin_withdrawal(dec_params_toy, rng)
        seen = _completions(service)
        service.submit("alice", "withdraw", {"aid": "alice", "request": request})
        service.drain()
        assert seen[0].status == "ERROR"
        assert service.bank.balance("alice") == 1


class TestAdmissionIntegration:
    def test_queue_backpressure_sheds_busy(self, sharded_bank, rng):
        batcher = VerificationBatcher(
            sharded_bank.params, sharded_bank.keypair, max_batch=8, seed=1
        )
        service = MarketService(
            sharded_bank,
            batcher=batcher,
            admission=AdmissionController(max_queue_depth=2),
        )
        requests = mint_tokens(service, rng, 4, node_level=1)
        seen = _completions(service)
        for request in requests:  # no step() in between: queue builds up
            service.submit(request.sender, request.kind, request.payload)
        assert service.shed == 2
        busy = [c for c in seen if c.status == "BUSY"]
        assert len(busy) == 2
        service.drain()
        assert sum(1 for c in seen if c.status == "OK") == 2

    def test_rate_limit_sheds_busy(self, sharded_bank, rng):
        batcher = VerificationBatcher(
            sharded_bank.params, sharded_bank.keypair, max_batch=8, seed=1
        )
        service = MarketService(
            sharded_bank,
            batcher=batcher,
            admission=AdmissionController(rate=1.0, burst=1),
        )
        requests = mint_tokens(service, rng, 3, node_level=1)
        seen = _completions(service)
        for request in requests:  # all at t=0: bucket holds one token
            service.submit(request.sender, request.kind, request.payload, now=0.0)
        service.drain()
        statuses = sorted(c.status for c in seen)
        assert statuses == ["BUSY", "BUSY", "OK"]

    def test_cheap_requests_bypass_admission(self, sharded_bank):
        service = MarketService(
            sharded_bank, admission=AdmissionController(max_queue_depth=1)
        )
        seen = _completions(service)
        service.submit("alice", "open-account", {"aid": "alice", "balance": 1})
        service.submit("alice", "balance", {"aid": "alice"})
        service.step(force=True)
        assert all(c.status == "OK" for c in seen)


class TestConstruction:
    def test_configured_batcher_not_replaced_when_empty(self, sharded_bank):
        """Regression: an idle batcher is falsy (has __len__); the
        constructor must not swap it for a default."""
        batcher = VerificationBatcher(
            sharded_bank.params, sharded_bank.keypair, max_batch=1,
            pairing_batch=False, seed=2,
        )
        service = MarketService(sharded_bank, batcher=batcher)
        assert service.batcher is batcher


class TestRunTrace:
    def test_trace_with_replays_and_slo(self, service, rng):
        from repro.service.loadgen import mint_deposit_traffic

        requests = mint_deposit_traffic(
            service, rng, n_accounts=3, n_deposits=8, node_level=1,
            replay_fraction=0.25,
        )
        arrivals = [0.01 * i for i in range(len(requests))]
        report = run_trace(
            service, requests, arrivals,
            slo=SLOTarget(p99=60.0, min_throughput=0.001),
        )
        assert report.submitted == len(requests)
        assert report.ok == 6 and report.rejected == 2
        assert report.shed == 0 and report.errors == 0
        assert report.latency is not None and report.latency.count == 8
        assert report.slo_met
        # zero double-deposits admitted: the books still audit clean
        assert service.bank.audit().clean

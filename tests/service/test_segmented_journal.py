"""Segment/epoch journal store: geometry, durability, compaction.

The on-disk contract under test is the one ``docs/storage.md``
specifies byte-for-byte:

* LSNs are global and dense; segment ``k`` holds ``[k*N, (k+1)*N)``
  and compaction only ever advances ``first_lsn`` — nothing is
  renumbered, so every cursor and checkpoint cut stays valid;
* only the *newest* segment may end in a torn frame (truncated on
  load); any damage before the tail is corruption and refuses to load;
* checkpoints are copy-on-write — unchanged shard blobs cost zero new
  bytes — and the manifest is published last by atomic rename, so the
  newest manifest on disk always validates;
* compaction deletes covered segment files, superseded manifests and
  unreferenced blobs, in that order, and a reload after any prefix of
  that deletion sequence still recovers (the crash sweeps live in
  ``tests/testing/test_storage_faults.py``).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.service import (
    Checkpoint,
    Journal,
    JournalError,
    JournalMaintenance,
    SegmentedFileJournal,
    ShardedBank,
)


def _fill(journal: Journal, n: int, *, start: int = 0) -> None:
    for i in range(start, start + n):
        journal.append("apply", f"rid{i}", "open-account",
                       {"aid": f"a{i}", "balance": i})


# -- in-memory segment math ------------------------------------------------

class TestSegmentMath:
    def test_appends_assign_global_lsns_across_segments(self):
        journal = Journal(segment_records=4)
        _fill(journal, 10)
        assert journal.first_lsn == 0 and journal.last_lsn == 9
        assert journal.segments_retained == 3  # [0,4) [4,8) [8,10)
        assert journal.segment_of(0) == 0
        assert journal.segment_of(7) == 1
        assert journal.segment_of(8) == 2

    def test_compact_drops_only_fully_covered_sealed_segments(self):
        journal = Journal(segment_records=4)
        _fill(journal, 10)
        # durable through lsn 5: only segment 0 ([0,4)) is fully covered,
        # and retain_segments=1 keeps it anyway
        assert journal.compact(5) == []
        # durable through lsn 7 covers segments 0 and 1; retention keeps 1
        assert journal.compact(7) == [0]
        assert journal.first_lsn == 4 and journal.last_lsn == 9
        assert [r.lsn for r in journal.records()] == list(range(4, 10))
        # recompacting at the same cut is a no-op
        assert journal.compact(7) == []

    def test_retain_segments_keeps_a_coverable_tail(self):
        journal = Journal(segment_records=4)
        _fill(journal, 16)
        # all four segments are covered; retention keeps the newest two
        assert journal.compact(15, retain_segments=2) == [0, 1]
        assert journal.first_lsn == 8
        assert journal.compact(15, retain_segments=0) == [2, 3]
        assert journal.first_lsn == 16 and len(journal) == 0
        # LSNs never restart after a full drop
        _fill(journal, 1, start=16)
        assert journal.last_lsn == 16

    def test_durable_lsn_beyond_the_log_is_clamped(self):
        journal = Journal(segment_records=4)
        _fill(journal, 6)
        journal.compact(10_000, retain_segments=0)
        assert journal.first_lsn == 4  # segment 1 is unsealed, kept

    def test_cursor_inside_the_compacted_prefix_starts_at_first_retained(self):
        journal = Journal(segment_records=4)
        _fill(journal, 12)
        journal.compact(11, retain_segments=1)
        assert journal.first_lsn == 8
        assert [r.lsn for r in journal.records(after=-1)] == list(range(8, 12))
        assert [r.lsn for r in journal.records(after=9)] == list(range(10, 12))

    def test_compaction_telemetry_counters(self):
        journal = Journal(segment_records=2)
        _fill(journal, 8)
        journal.compact(7, retain_segments=1)
        assert journal.compactions == 1
        assert journal.segments_dropped == 3  # segments 0-2; 3 is retained

    def test_bad_geometry_and_retention_are_rejected(self):
        with pytest.raises(JournalError):
            Journal(segment_records=0)
        journal = Journal(segment_records=4)
        with pytest.raises(JournalError):
            journal.compact(0, retain_segments=-1)


# -- segment files on disk -------------------------------------------------

class TestSegmentedFileJournal:
    def test_roundtrip_reload(self, tmp_path):
        store = tmp_path / "wal"
        journal = SegmentedFileJournal(store, segment_records=4)
        _fill(journal, 10)
        journal.close()
        names = sorted(os.listdir(store))
        assert names == ["seg-00000000.wal", "seg-00000001.wal",
                         "seg-00000002.wal"]
        reloaded = SegmentedFileJournal(store, segment_records=4)
        assert not reloaded.torn_tail
        assert [r.to_state() for r in reloaded.records()] == [
            r.to_state() for r in journal.records()
        ]
        # appends continue with the next global lsn, into the tail segment
        _fill(reloaded, 1, start=10)
        assert reloaded.last_lsn == 10
        reloaded.close()

    def test_torn_tail_in_newest_segment_is_truncated(self, tmp_path):
        store = tmp_path / "wal"
        journal = SegmentedFileJournal(store, segment_records=4)
        _fill(journal, 6)
        journal.close()
        tail = store / "seg-00000001.wal"
        with open(tail, "ab") as fh:
            fh.write(b"\x00\x00\x00\x40partial-frame")
        reloaded = SegmentedFileJournal(store, segment_records=4)
        assert reloaded.torn_tail
        assert reloaded.last_lsn == 5  # the torn frame cost nothing durable
        _fill(reloaded, 1, start=6)   # and appends continue on a clean frame
        reloaded.close()
        again = SegmentedFileJournal(store, segment_records=4)
        assert not again.torn_tail and again.last_lsn == 6
        again.close()

    def test_damage_before_the_tail_is_corruption(self, tmp_path):
        store = tmp_path / "wal"
        journal = SegmentedFileJournal(store, segment_records=4)
        _fill(journal, 10)
        journal.close()
        sealed = store / "seg-00000001.wal"
        data = sealed.read_bytes()
        sealed.write_bytes(data[:-3])  # torn frame in a *sealed* segment
        with pytest.raises(JournalError, match="sealed segment"):
            SegmentedFileJournal(store, segment_records=4)

    def test_segment_gap_refuses_to_load(self, tmp_path):
        store = tmp_path / "wal"
        journal = SegmentedFileJournal(store, segment_records=4)
        _fill(journal, 12)
        journal.close()
        os.unlink(store / "seg-00000001.wal")
        with pytest.raises(JournalError, match="segment gap"):
            SegmentedFileJournal(store, segment_records=4)

    def test_geometry_mismatch_refuses_to_load(self, tmp_path):
        store = tmp_path / "wal"
        journal = SegmentedFileJournal(store, segment_records=4)
        _fill(journal, 2)
        journal.close()
        with pytest.raises(JournalError, match="capacity"):
            SegmentedFileJournal(store, segment_records=8)

    def test_compacted_store_reloads_with_advanced_first_lsn(self, tmp_path):
        store = tmp_path / "wal"
        journal = SegmentedFileJournal(store, segment_records=4)
        _fill(journal, 12)
        journal.write_checkpoint(Checkpoint(lsn=11, blobs=(b"snap",)))
        dropped = journal.compact(retain_segments=1)
        assert dropped == [0, 1]
        journal.close()
        names = os.listdir(store)
        assert "seg-00000000.wal" not in names
        assert "seg-00000001.wal" not in names
        reloaded = SegmentedFileJournal(store, segment_records=4)
        assert reloaded.first_lsn == 8 and reloaded.last_lsn == 11
        reloaded.close()


# -- copy-on-write checkpoints --------------------------------------------

class TestCheckpoints:
    def test_roundtrip_including_lifecycle_state(self, tmp_path):
        journal = SegmentedFileJournal(tmp_path / "wal", segment_records=4)
        _fill(journal, 5)
        checkpoint = Checkpoint(
            lsn=4, blobs=(b"shard0", b"shard1"),
            replies=(("r1", "OK", {"balance": 3}),),
            pending=({"rid": "r2", "sender": "s", "kind": "deposit",
                      "seq": 9, "payload": {"aid": "a"}},),
            evicted=("aa" * 8,),
            next_seq=10,
        )
        journal.write_checkpoint(checkpoint)
        assert journal.load_checkpoint() == checkpoint
        journal.close()

    def test_unchanged_blobs_are_shared_between_checkpoints(self, tmp_path):
        store = tmp_path / "wal"
        journal = SegmentedFileJournal(store, segment_records=4)
        _fill(journal, 8)
        journal.write_checkpoint(Checkpoint(lsn=3, blobs=(b"cold", b"hot-v1")))
        blobs_after_first = {n for n in os.listdir(store)
                             if n.startswith("blob-")}
        assert len(blobs_after_first) == 2
        # one shard unchanged, one rewritten: exactly one new blob file
        journal.write_checkpoint(Checkpoint(lsn=7, blobs=(b"cold", b"hot-v2")))
        blobs_after_second = {n for n in os.listdir(store)
                              if n.startswith("blob-")}
        assert len(blobs_after_second) == 3
        assert blobs_after_first < blobs_after_second
        journal.close()

    def test_corrupt_newest_manifest_falls_back_to_older(self, tmp_path):
        store = tmp_path / "wal"
        journal = SegmentedFileJournal(store, segment_records=4)
        _fill(journal, 8)
        journal.write_checkpoint(Checkpoint(lsn=3, blobs=(b"old",)))
        journal.write_checkpoint(Checkpoint(lsn=7, blobs=(b"new",)))
        newest = store / "ckpt-0000000000000007.mf"
        data = bytearray(newest.read_bytes())
        data[-1] ^= 0xFF
        newest.write_bytes(bytes(data))
        loaded = journal.load_checkpoint()
        assert loaded is not None and loaded.lsn == 3
        assert journal.checkpoint_fallbacks == 1
        journal.close()

    def test_missing_blob_invalidates_its_manifest(self, tmp_path):
        store = tmp_path / "wal"
        journal = SegmentedFileJournal(store, segment_records=4)
        _fill(journal, 8)
        journal.write_checkpoint(Checkpoint(lsn=3, blobs=(b"kept",)))
        journal.write_checkpoint(Checkpoint(lsn=7, blobs=(b"doomed",)))
        from repro.crypto.hashing import sha256
        os.unlink(store / f"blob-{sha256(b'doomed').hex()[:16]}.bin")
        loaded = journal.load_checkpoint()
        assert loaded is not None and loaded.lsn == 3
        journal.close()

    def test_compact_gcs_superseded_manifests_and_blobs(self, tmp_path):
        store = tmp_path / "wal"
        journal = SegmentedFileJournal(store, segment_records=4)
        _fill(journal, 12)
        journal.write_checkpoint(Checkpoint(lsn=3, blobs=(b"v1",)))
        journal.write_checkpoint(Checkpoint(lsn=11, blobs=(b"v2",)))
        before = journal.disk_usage()
        journal.compact(retain_segments=0, retain_checkpoints=1)
        from repro.crypto.hashing import sha256
        names = sorted(os.listdir(store))
        assert names == [f"blob-{sha256(b'v2').hex()[:16]}.bin",
                         "ckpt-0000000000000011.mf"]
        assert journal.disk_usage() < before
        journal.close()


# -- maintenance cadence + recovery guard ---------------------------------

class TestMaintenanceAndRecovery:
    def _bank(self, dec_params_toy, journal):
        return ShardedBank.create(dec_params_toy, random.Random(7),
                                  n_shards=3, journal=journal)

    def test_maintenance_cuts_and_compacts_on_cadence(self, tmp_path,
                                                      dec_params_toy):
        journal = SegmentedFileJournal(tmp_path / "wal", segment_records=4)
        bank = self._bank(dec_params_toy, journal)
        maintenance = JournalMaintenance(
            journal,
            lambda: Checkpoint(lsn=journal.last_lsn,
                               blobs=tuple(bank.snapshot())),
            checkpoint_every=8, retain_segments=1,
        )
        for i in range(6):
            bank.open_account(f"acct{i}", i)
        assert maintenance.run() is False  # 6 records < cadence of 8
        for i in range(6, 12):
            bank.open_account(f"acct{i}", i)
        assert maintenance.run() is True
        assert maintenance.checkpoints_cut == 1
        assert maintenance.last_checkpoint_lsn == 11
        assert journal.first_lsn == 8  # segs 0-1 deleted, seg 2 retained
        assert maintenance.segments_deleted == 2
        journal.close()

    def test_maintenance_resumes_from_an_existing_checkpoint(self, tmp_path,
                                                             dec_params_toy):
        store = tmp_path / "wal"
        journal = SegmentedFileJournal(store, segment_records=4)
        _fill(journal, 9)
        journal.write_checkpoint(Checkpoint(lsn=8, blobs=(b"s",)))
        journal.close()
        reopened = SegmentedFileJournal(store, segment_records=4)
        maintenance = JournalMaintenance(reopened, lambda: None,
                                         checkpoint_every=8)
        assert maintenance.last_checkpoint_lsn == 8
        assert maintenance.run() is False  # nothing appended since the cut
        reopened.close()

    def test_recover_needs_the_checkpoint_a_compaction_was_cut_against(
            self, tmp_path, dec_params_toy):
        journal = SegmentedFileJournal(tmp_path / "wal", segment_records=4)
        bank = self._bank(dec_params_toy, journal)
        for i in range(10):
            bank.open_account(f"acct{i}", 100 + i)
        journal.write_checkpoint(
            Checkpoint(lsn=journal.last_lsn, blobs=tuple(bank.snapshot())))
        journal.compact(retain_segments=0)
        assert journal.first_lsn == 8
        with pytest.raises(JournalError, match="compacted"):
            ShardedBank.recover(bank.params, bank.keypair, random.Random(0),
                                journal, n_shards=3)
        checkpoint = journal.load_checkpoint()
        recovered = ShardedBank.recover(
            bank.params, bank.keypair, random.Random(0), journal,
            checkpoint=checkpoint, n_shards=3,
        )
        assert [dict(s.accounts) for s in recovered.shards] == [
            dict(s.accounts) for s in bank.shards
        ]
        journal.close()

    def test_incremental_snapshot_only_reserializes_dirty_shards(
            self, dec_params_toy):
        bank = ShardedBank.create(dec_params_toy, random.Random(7), n_shards=4)
        first = bank.snapshot()
        second = bank.snapshot()  # nothing touched in between
        assert first == second
        bank.open_account("fresh", 5)
        third = bank.snapshot()
        changed = sum(1 for a, b in zip(second, third) if a != b)
        # one account landed on one shard; serial homes are untouched
        assert changed == 1
        # and restore of an incremental snapshot is still complete
        clone = ShardedBank.create(dec_params_toy, random.Random(7), n_shards=4)
        clone.restore(third)
        assert [dict(s.accounts) for s in clone.shards] == [
            dict(s.accounts) for s in bank.shards
        ]

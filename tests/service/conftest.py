"""Service-layer fixtures.

Protocol-level service tests run on the toy pairing backend (the
crypto inside the batcher is exercised against the real Tate backend
by ``tests/ecash``); everything here is about sharding, batching,
admission and the serving loop.
"""

from __future__ import annotations

import random

import pytest

from repro.service import MarketService, ShardedBank, VerificationBatcher


@pytest.fixture()
def sharded_bank(dec_params_toy, rng) -> ShardedBank:
    return ShardedBank.create(dec_params_toy, rng, n_shards=4)


@pytest.fixture()
def service(sharded_bank) -> MarketService:
    batcher = VerificationBatcher(
        sharded_bank.params, sharded_bank.keypair, max_batch=8, seed=1
    )
    return MarketService(sharded_bank, batcher=batcher, rng=random.Random(5))


def mint_tokens(service: MarketService, rng, n: int, *, node_level: int | None = None):
    """Deposit-request list against *service* (accounts funded en route)."""
    from repro.service.loadgen import mint_deposit_traffic

    return mint_deposit_traffic(
        service, rng, n_accounts=min(3, n), n_deposits=n, node_level=node_level
    )

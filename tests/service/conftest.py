"""Service-layer fixtures.

Protocol-level service tests run on the toy pairing backend (the
crypto inside the batcher is exercised against the real Tate backend
by ``tests/ecash``); everything here is about sharding, batching,
admission and the serving loop.
"""

from __future__ import annotations

import random

import pytest

from repro.metrics.parallel import env_processes
from repro.service import MarketService, ShardedBank, VerificationBatcher, make_backend


@pytest.fixture(scope="session")
def service_backend(dec_params_toy):
    """Verification backend honoring ``REPRO_PROCESSES``.

    The CI worker matrix runs the service suite twice —
    ``REPRO_PROCESSES=1`` (inline) and ``=4`` (pooled) — and this is
    the hook that makes the second leg real: one warm pool shared
    across the whole session (spawning per test would swamp the suite
    in fork cost).  ``None`` means "use the batcher's inline default".
    The parity suite guarantees both legs see identical bytes.
    """
    n = env_processes(1)
    if n <= 1:
        yield None
        return
    backend = make_backend(dec_params_toy, None, processes=n)
    yield backend
    backend.close()


@pytest.fixture()
def sharded_bank(dec_params_toy, rng) -> ShardedBank:
    return ShardedBank.create(dec_params_toy, rng, n_shards=4)


@pytest.fixture()
def service(sharded_bank, service_backend) -> MarketService:
    batcher = VerificationBatcher(
        sharded_bank.params, sharded_bank.keypair, max_batch=8, seed=1,
        backend=service_backend,
    )
    return MarketService(sharded_bank, batcher=batcher, rng=random.Random(5))


def mint_tokens(service: MarketService, rng, n: int, *, node_level: int | None = None):
    """Deposit-request list against *service* (accounts funded en route)."""
    from repro.service.loadgen import mint_deposit_traffic

    return mint_deposit_traffic(
        service, rng, n_accounts=min(3, n), n_deposits=n, node_level=node_level
    )

"""Opt-in storage soak: journal disk stays bounded under retention.

Run with ``REPRO_SOAK=1`` (CI runs it on the nightly cron).  Thousands
of journaled mutations flow through a :class:`SegmentedFileJournal`
with a deliberately small segment size while
:class:`JournalMaintenance` cuts incremental checkpoints and compacts
on cadence.  The claims under load:

* **disk is bounded by the retention policy**, not by traffic volume:
  peak bytes on disk never exceed the retention window's worth of
  segments (plus checkpoints), however long the run;
* **old segments are actually deleted** — the oldest segment file on
  disk advances far past segment 0;
* the final store still **recovers exactly** (checkpoint + tail equals
  the live books).

The run prints its measured numbers (peak/final disk, segments
written vs. retained, checkpoint count) — the CHANGELOG's soak figures
come from here.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.service import (
    JournalMaintenance,
    MarketService,
    SegmentedFileJournal,
    ShardedBank,
)

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SOAK") != "1",
    reason="soak test: set REPRO_SOAK=1 to run (CI nightly cron does)",
)

N_REQUESTS = 4_000
SEGMENT_RECORDS = 64
CHECKPOINT_EVERY = 128
RETAIN_SEGMENTS = 1
MAINTENANCE_EVERY = 50  # requests between maintenance opportunities


def test_journal_disk_is_bounded_by_retention(tmp_path, dec_params_toy):
    store = tmp_path / "wal"
    journal = SegmentedFileJournal(store, segment_records=SEGMENT_RECORDS)
    bank = ShardedBank.create(dec_params_toy, random.Random(0xD15C),
                              n_shards=4, journal=journal)
    service = MarketService(bank, journal=journal, rng=random.Random(1))
    maintenance = JournalMaintenance(
        journal, service.checkpoint,
        checkpoint_every=CHECKPOINT_EVERY,
        retain_segments=RETAIN_SEGMENTS,
    )
    peak_disk = 0
    peak_segments = 0
    for i in range(N_REQUESTS):
        service.submit("soak", "open-account",
                       {"aid": f"soak{i}", "balance": i % 97},
                       rid=f"soak:{i}")
        service.drain()
        if i % MAINTENANCE_EVERY == 0:
            maintenance.run()
            peak_disk = max(peak_disk, journal.disk_usage())
            peak_segments = max(peak_segments, journal.segments_retained)
    maintenance.run(force=True)
    final_disk = journal.disk_usage()
    peak_disk = max(peak_disk, final_disk)
    peak_segments = max(peak_segments, journal.segments_retained)
    segments_written = journal.segment_of(journal.last_lsn) + 1
    oldest_on_disk = min(
        int(n[4:-4]) for n in os.listdir(store)
        if n.startswith("seg-") and n.endswith(".wal")
    )

    # every record is ~3 journal entries; far more segments were written
    # than are ever on disk at once
    assert segments_written > 100
    # bound: a full checkpoint window of unsealed coverage, the retained
    # tail, and the active segment
    segment_bound = -(-CHECKPOINT_EVERY // SEGMENT_RECORDS) \
        + RETAIN_SEGMENTS + 1
    assert peak_segments <= segment_bound + 1  # +1 for cadence slack
    assert journal.segments_retained <= segment_bound
    # old segments really are deleted, not merely forgotten
    assert oldest_on_disk >= segments_written - segment_bound - 1
    assert oldest_on_disk > 100
    # disk is bounded: the whole uncompacted log would dwarf this
    assert peak_disk < 64 * SEGMENT_RECORDS * (segment_bound + 2) * 8

    # the bounded store still recovers exactly
    checkpoint = journal.load_checkpoint()
    assert checkpoint is not None
    recovered = MarketService.recover(
        bank.params, bank.keypair, journal, checkpoint=checkpoint,
        n_shards=4,
    )
    assert [dict(s.accounts) for s in recovered.bank.shards] == [
        dict(s.accounts) for s in bank.shards
    ]

    print(
        "\nstorage soak:"
        f" requests={N_REQUESTS}"
        f" records={journal.last_lsn + 1}"
        f" segments_written={segments_written}"
        f" segments_retained={journal.segments_retained}"
        f" oldest_segment_on_disk={oldest_on_disk}"
        f" checkpoints={maintenance.checkpoints_cut}"
        f" compactions={journal.compactions}"
        f" peak_disk_bytes={peak_disk}"
        f" final_disk_bytes={final_disk}"
    )

"""Threaded-vs-async frontend conformance: same bytes, same books.

The asyncio front door (:class:`~repro.service.aio.AsyncServiceFrontend`)
claims to be a drop-in ingestion tier: both frontends feed the *same*
:class:`~repro.service.frontend.DispatchCore` loop, so a given request
stream must produce byte-identical replies, identical journal records,
identical counters, and identical invariant-sweep verdicts regardless
of which frontend carried the frames.

This suite proves it the hard way: twin stacks (same seeds, same
funding, same batcher) are driven in lockstep over real loopback
sockets with the *same* fault-perturbed delivery schedule (drops,
duplicates, reorders from :class:`~repro.testing.faults.FaultPlan` —
crash machinery excluded: the process stays up, the sockets are the
subject), and every observable artifact of the two runs is compared
with canonical encoding.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

import pytest

from repro.crypto.cl_sig import cl_keygen
from repro.net.codec import encode
from repro.service import (
    AsyncServiceFrontend,
    MarketService,
    ServiceClient,
    ServiceFrontend,
    ShardedBank,
    VerificationBatcher,
)
from repro.service.journal import Journal
from repro.testing.faults import FaultPlan
from repro.testing.invariants import check_recovery_invariants
from repro.testing.scenario import build_deposit_kit

FAULT_SEEDS = [3, 11, 29]

# one kit per module: minting spend tokens is the expensive part and
# both stacks of every seed replay the same pristine request sequence
_KIT_CACHE: dict[int, object] = {}


def _kit(dec_params_toy):
    if "kit" not in _KIT_CACHE:
        rng = random.Random(0xC0F0)
        keypair = cl_keygen(dec_params_toy.backend, rng)
        _KIT_CACHE["kit"] = build_deposit_kit(
            rng, params=dec_params_toy, keypair=keypair,
            n_accounts=3, n_deposits=6, double_spends=2,
        )
    return _KIT_CACHE["kit"]


@dataclass
class RunArtifacts:
    """Everything one frontend run left behind, ready to diff."""

    replies: list = field(default_factory=list)
    journal_states: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    telemetry: dict = field(default_factory=dict)
    findings: tuple = ()


def _run_stack(frontend_cls, kit, service_backend, schedule, dropped) -> RunArtifacts:
    """Build one fresh stack, replay *schedule* through *frontend_cls*
    over a real socket, tear down, and return the observables.

    Seeds mirror :func:`repro.testing.scenario.run_deposit_scenario`
    exactly, so the two stacks differ in nothing but the frontend.
    """
    import repro.obs as obs

    telemetry = obs.Telemetry.enabled()
    journal = Journal()
    bank = ShardedBank(kit.params, kit.keypair, random.Random(1),
                       n_shards=3, journal=journal)
    for aid, balance, coins in kit.funding:
        bank.open_account(aid, balance)
        for _ in range(coins):
            bank.apply_withdrawal(aid)
    batcher = VerificationBatcher(kit.params, kit.keypair, max_batch=4,
                                  seed=7, warm_tables=False,
                                  backend=service_backend)
    service = MarketService(bank, batcher=batcher, rng=random.Random(2))
    artifacts = RunArtifacts()
    front = frontend_cls(service, telemetry=telemetry).start()
    try:
        with ServiceClient(front.address, timeout=60.0) as client:
            # lockstep: one outstanding request at a time, so the
            # dispatcher sees the identical arrival order in both runs
            for delivery in schedule:
                request = kit.requests[delivery.original]
                reply = client.request(
                    "deposit",
                    {"aid": request.aid,
                     "token": kit.tokens[request.token_index]},
                    sender=request.aid, rid=request.rid,
                )
                artifacts.replies.append(reply)
            # a deterministic tail: the audit and every balance are part
            # of the conformance surface too
            artifacts.replies.append(client.request("audit", {}))
            for aid, _balance, _coins in kit.funding:
                artifacts.replies.append(
                    client.request("balance", {"aid": aid}))
    finally:
        front.close()  # joins the dispatcher: counters are final below
    artifacts.journal_states = [r.to_state() for r in journal.records()]
    artifacts.counters = {
        "served": front.served,
        "conn_errors": front.conn_errors,
        "completions": service.completions,
        "dedup_hits": service.dedup_hits,
        "shed": service.shed,
        "queue_depth": service.queue_depth,
        "dropped": len(dropped),
    }
    snapshot = telemetry.registry.snapshot()
    artifacts.telemetry = {
        m["name"]: m["value"] for m in snapshot["counters"]
        if not m["labels"] and m["name"].startswith("repro_frontend_")
    }
    artifacts.findings = check_recovery_invariants(bank, journal).findings
    return artifacts


def _stray_frontend_threads() -> list[threading.Thread]:
    """Frontend threads still alive, after a short settle: close()
    joins with bounded timeouts, so a thread may be observably alive
    for an instant after close returns without being leaked."""
    import time

    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        stray = [t for t in threading.enumerate()
                 if t.name.startswith("frontend-") and t.is_alive()]
        if not stray:
            return []
        time.sleep(0.01)
    return stray


@pytest.mark.parametrize("seed", FAULT_SEEDS)
class TestConformance:
    """One fault seed, two frontends, byte-identical everything."""

    # twin runs are expensive (real sockets, real verification); each
    # seed's pair is built once and diffed by all three tests
    _RUNS: dict[int, tuple] = {}

    def _artifacts(self, seed, dec_params_toy, service_backend):
        if seed not in self._RUNS:
            kit = _kit(dec_params_toy)
            schedule, dropped = FaultPlan.from_seed(seed).perturb(
                len(kit.requests))
            threaded = _run_stack(ServiceFrontend, kit, service_backend,
                                  schedule, dropped)
            aio = _run_stack(AsyncServiceFrontend, kit, service_backend,
                             schedule, dropped)
            assert not _stray_frontend_threads()
            self._RUNS[seed] = (schedule, threaded, aio)
        return self._RUNS[seed]

    def test_reply_streams_byte_identical(self, seed, dec_params_toy,
                                          service_backend):
        schedule, threaded, aio = self._artifacts(
            seed, dec_params_toy, service_backend)
        assert len(threaded.replies) == len(aio.replies)
        for i, (a, b) in enumerate(zip(threaded.replies, aio.replies)):
            assert encode(a) == encode(b), (
                f"seed {seed}: reply {i} diverges:\n  threaded={a}\n  async={b}"
            )
        # the schedule itself was exercised: duplicates answered via the
        # rid cache, the rest by real verification
        duplicates = sum(1 for d in schedule if d.duplicate)
        assert threaded.counters["dedup_hits"] >= duplicates

    def test_journals_and_invariants_identical(self, seed, dec_params_toy,
                                               service_backend):
        _schedule, threaded, aio = self._artifacts(
            seed, dec_params_toy, service_backend)
        assert encode(threaded.journal_states) == encode(aio.journal_states), (
            f"seed {seed}: journals diverge "
            f"({len(threaded.journal_states)} vs {len(aio.journal_states)} records)"
        )
        assert threaded.findings == aio.findings == ()

    def test_counters_identical(self, seed, dec_params_toy, service_backend):
        _schedule, threaded, aio = self._artifacts(
            seed, dec_params_toy, service_backend)
        assert threaded.counters == aio.counters
        # frontend telemetry: same frames in, same conns-now-closed, no
        # errors, nothing shed pre-parse on either side
        for name in ("repro_frontend_frames_total",
                     "repro_frontend_conn_errors_total"):
            assert threaded.telemetry.get(name, 0) == aio.telemetry.get(name, 0), name
        assert aio.telemetry.get("repro_frontend_preparse_busy_total", 0) == 0

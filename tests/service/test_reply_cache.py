"""Bounded reply-cache eviction: idempotence survives the bound.

The exactly-once layer caches terminal verdicts by rid so an
at-least-once network can retry safely.  An unbounded cache is a slow
memory leak, so :class:`MarketService` bounds it FIFO — and the
regression these tests pin down is the window that opens at the bound:
a retry of an *evicted* rid must be answered deterministically
(explicit ``ERROR``) or rejected, but **never re-executed**.  A
re-executed ``open-account`` would collide, a re-executed withdraw
would double-debit — the journal's apply-record count per rid is the
arbiter.  Tombstones ride checkpoints, so the guarantee holds across
recovery (and across compaction of the evicted reply's records).
"""

from __future__ import annotations

import random

import pytest

from repro.service import Journal, MarketService, ShardedBank


def _service(dec_params_toy, *, reply_cache, journal=None):
    journal = journal if journal is not None else Journal()
    bank = ShardedBank.create(dec_params_toy, random.Random(3), n_shards=3,
                              journal=journal)
    return MarketService(bank, journal=journal, reply_cache=reply_cache,
                         rng=random.Random(4))


def _last_reply(service, sender):
    envelope = [e for e in service.transport.log
                if e.receiver == sender and e.kind == "reply"][-1]
    return envelope.payload


def _apply_count(journal, rid):
    return sum(1 for r in journal.records()
               if r.kind == "apply" and r.rid == rid)


def _flood(service, n, *, start=0):
    """Complete *n* mutating requests under distinct rids."""
    for i in range(start, start + n):
        service.submit("ops", "open-account",
                       {"aid": f"flood{i}", "balance": i}, rid=f"flood:{i}")
        service.drain()


class TestBound:
    def test_cache_never_exceeds_the_bound(self, dec_params_toy):
        service = _service(dec_params_toy, reply_cache=4)
        _flood(service, 10)
        assert len(service._replies) == 4
        assert service.reply_evictions == 6
        # tombstone set is itself bounded
        assert len(service._evicted) <= 4 * 4

    def test_unbounded_mode_keeps_everything(self, dec_params_toy):
        service = _service(dec_params_toy, reply_cache=None)
        _flood(service, 10)
        assert len(service._replies) == 10
        assert service.reply_evictions == 0

    def test_bound_must_be_positive(self, dec_params_toy):
        with pytest.raises(ValueError):
            _service(dec_params_toy, reply_cache=0)

    def test_retry_within_the_cache_replays_the_verdict(self, dec_params_toy):
        service = _service(dec_params_toy, reply_cache=4)
        service.submit("alice", "open-account", {"aid": "a", "balance": 9},
                       rid="keep")
        service.drain()
        service.submit("alice", "open-account", {"aid": "a", "balance": 9},
                       rid="keep")
        reply = _last_reply(service, "alice")
        assert reply["status"] == "OK" and reply["balance"] == 9
        assert service.dedup_hits == 1 and service.tombstone_hits == 0
        assert _apply_count(service.journal, "keep") == 1


class TestEvictedRetry:
    def test_evicted_rid_is_answered_explicitly_never_reexecuted(
            self, dec_params_toy):
        journal = Journal()
        service = _service(dec_params_toy, reply_cache=2, journal=journal)
        service.submit("alice", "open-account", {"aid": "a", "balance": 9},
                       rid="victim")
        service.drain()
        _flood(service, 5)  # rotates "victim" out of the bounded cache
        assert "victim" not in service._replies
        service.submit("alice", "open-account", {"aid": "a", "balance": 9},
                       rid="victim")
        service.drain()
        reply = _last_reply(service, "alice")
        assert reply["status"] == "ERROR"
        assert "reply evicted" in reply["error"]
        assert service.tombstone_hits == 1
        # the arbiter: exactly one apply record, the account untouched —
        # a re-execution would have been REJECTED ("already exists"),
        # which is a different, non-deterministic answer
        assert _apply_count(journal, "victim") == 1
        assert service.bank.balance("a") == 9

    def test_evicted_retry_of_an_in_flight_style_duplicate(self,
                                                           dec_params_toy):
        """The ISSUE's exact scenario: evict, then the stale retry lands."""
        journal = Journal()
        service = _service(dec_params_toy, reply_cache=1, journal=journal)
        service.submit("bob", "open-account", {"aid": "b", "balance": 5},
                       rid="slow-retry")
        service.drain()
        _flood(service, 3)  # the client's first answer is long evicted
        before = _apply_count(journal, "slow-retry")
        seq = service.submit("bob", "open-account",
                             {"aid": "b", "balance": 5}, rid="slow-retry")
        service.drain()
        reply = _last_reply(service, "bob")
        assert reply["req"] == seq and reply["status"] == "ERROR"
        assert _apply_count(journal, "slow-retry") == before
        assert service.queue_depth == 0  # rejected at submit, never queued

    def test_tombstones_are_not_journaled(self, dec_params_toy):
        journal = Journal()
        service = _service(dec_params_toy, reply_cache=1, journal=journal)
        _flood(service, 3)
        lsn = journal.last_lsn
        service.submit("ops", "open-account", {"aid": "flood0", "balance": 0},
                       rid="flood:0")  # tombstoned rid
        assert journal.last_lsn == lsn  # answered without touching the log


class TestRecovery:
    def test_tombstones_survive_checkpoint_recovery(self, dec_params_toy):
        journal = Journal()
        service = _service(dec_params_toy, reply_cache=2, journal=journal)
        service.submit("alice", "open-account", {"aid": "a", "balance": 9},
                       rid="victim")
        service.drain()
        _flood(service, 5)
        checkpoint = service.checkpoint()
        recovered = MarketService.recover(
            service.bank.params, service.bank.keypair, journal,
            checkpoint=checkpoint, n_shards=3, reply_cache=2,
        )
        recovered.submit("alice", "open-account", {"aid": "a", "balance": 9},
                         rid="victim")
        recovered.drain()
        reply = _last_reply(recovered, "alice")
        assert reply["status"] == "ERROR" and "reply evicted" in reply["error"]
        assert recovered.tombstone_hits == 1
        assert _apply_count(journal, "victim") == 1
        assert recovered.bank.balance("a") == 9

    def test_tombstones_survive_compaction_of_their_records(self,
                                                            dec_params_toy):
        """Eviction + compaction together: the reply records are *gone*."""
        journal = Journal(segment_records=4)
        service = _service(dec_params_toy, reply_cache=2, journal=journal)
        service.submit("alice", "open-account", {"aid": "a", "balance": 9},
                       rid="victim")
        service.drain()
        _flood(service, 6)
        checkpoint = service.checkpoint()
        journal.compact(checkpoint.lsn, retain_segments=0)
        assert journal.first_lsn > 0  # victim's records really deleted
        recovered = MarketService.recover(
            service.bank.params, service.bank.keypair, journal,
            checkpoint=checkpoint, n_shards=3, reply_cache=2,
        )
        recovered.submit("alice", "open-account", {"aid": "a", "balance": 9},
                         rid="victim")
        recovered.drain()
        reply = _last_reply(recovered, "alice")
        assert reply["status"] == "ERROR" and "reply evicted" in reply["error"]
        assert recovered.bank.balance("a") == 9

    def test_recovered_reply_cache_preserves_eviction_order(self,
                                                            dec_params_toy):
        journal = Journal()
        service = _service(dec_params_toy, reply_cache=3, journal=journal)
        _flood(service, 3)
        checkpoint = service.checkpoint()
        recovered = MarketService.recover(
            service.bank.params, service.bank.keypair, journal,
            checkpoint=checkpoint, n_shards=3, reply_cache=3,
        )
        assert list(recovered._replies) == list(service._replies)
        # the next completion evicts the *oldest* pre-crash entry
        recovered.submit("ops", "open-account", {"aid": "post", "balance": 1},
                         rid="post")
        recovered.drain()
        assert "flood:0" not in recovered._replies
        assert "flood:1" in recovered._replies

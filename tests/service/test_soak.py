"""Opt-in socket soak: loadgen vs a pooled 4-worker service, at length.

Run with ``REPRO_SOAK=1`` (CI runs it on the nightly cron).  The point
is volume: ≥10k requests through the real TCP front-end against a
service whose verification fans out across a 4-process pool — long
enough for pool recycling, frame fragmentation and reply reordering to
actually happen — then a full invariant sweep over the books:

* the cross-shard audit is clean (balance conservation, placement,
  no duplicated serials);
* every spent leaf serial is recorded exactly once, globally;
* accounting closes: deposits credited == tokens accepted, and the
  double-spend replays were all rejected.

The mix is deliberately skewed cheap: crypto deposits are the
expensive minority (as in the paper's market, where balance probes and
account chatter dwarf coin motion), which is what lets a 10k-request
soak finish in CI-cron time while still pushing thousands of frames
through every layer.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.service import (
    MarketService,
    ServiceFrontend,
    ShardedBank,
    VerificationBatcher,
    make_backend,
    mint_deposit_traffic,
    run_socket_trace,
)
from repro.service.loadgen import Request

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SOAK") != "1",
    reason="soak test: set REPRO_SOAK=1 to run (CI nightly cron does)",
)

#: total requests pushed over the socket — the issue floor is 10k
N_REQUESTS = 10_000
N_DEPOSITS = 96
N_ACCOUNTS = 6
REPLAY_FRACTION = 0.25
WORKERS = 4


@pytest.fixture(scope="module")
def soak_stack(dec_params_toy):
    bank = ShardedBank.create(dec_params_toy, random.Random(0x50AC), n_shards=4)
    backend = make_backend(dec_params_toy, bank.public_key, processes=WORKERS)
    batcher = VerificationBatcher(
        bank.params, bank.keypair, max_batch=16, seed=3, backend=backend
    )
    service = MarketService(bank, batcher=batcher, rng=random.Random(0xBEEF))
    frontend = ServiceFrontend(service).start()
    yield frontend, backend
    frontend.close()
    backend.close()


def _soak_trace(service: MarketService) -> tuple[list[Request], int, int]:
    """≥10k requests: a crypto core plus a cheap-query flood."""
    rng = random.Random(0x10AD)
    deposits = mint_deposit_traffic(
        service, rng,
        n_accounts=N_ACCOUNTS, n_deposits=N_DEPOSITS,
        node_level=1, replay_fraction=REPLAY_FRACTION,
    )
    # mint_deposit_traffic appends int(n·fraction) duplicate submissions
    # of fresh tokens; exactly one submission per distinct token lands
    n_replays = int(N_DEPOSITS * REPLAY_FRACTION)
    n_fresh = N_DEPOSITS - n_replays
    aids = sorted({d.payload["aid"] for d in deposits})
    requests: list[Request] = list(deposits)
    while len(requests) < N_REQUESTS - 1:
        requests.append(Request(
            sender=rng.choice(aids), kind="balance",
            payload={"aid": rng.choice(aids)},
        ))
    requests.append(Request(sender="auditor", kind="audit", payload={}))
    rng.shuffle(requests)
    return requests, n_fresh, n_replays


def test_socket_soak_holds_every_invariant(soak_stack):
    frontend, backend = soak_stack
    service = frontend.service
    requests, n_fresh, n_replays = _soak_trace(service)
    assert len(requests) >= N_REQUESTS

    balance_before = {
        aid: service.bank.balance(aid)
        for shard in service.bank.shards for aid in shard.accounts
    }

    report = run_socket_trace(frontend.address, requests,
                              pipeline_depth=64, timeout=3600.0)

    # -- delivery: every request answered, nothing lost or shed --------
    assert report.submitted == len(requests)
    assert report.completed == len(requests)
    assert report.errors == 0
    assert report.shed == 0
    # every replayed token rejected, every fresh one credited
    assert report.rejected == n_replays
    assert report.ok == len(requests) - n_replays

    # -- the pool actually carried the load (not a silent fallback) ----
    if hasattr(backend, "degraded"):
        assert not backend.degraded
        assert backend.dispatches > 0

    # -- invariant sweep over the books --------------------------------
    audit = service.bank.audit()
    assert audit.clean, f"audit findings after soak: {audit.findings}"

    # serial uniqueness, globally: no leaf serial on two shards, and
    # exactly one record per serial in the merged view
    seen: dict[int, int] = {}
    for index, shard in enumerate(service.bank.shards):
        for serial in shard._seen_serials:
            assert serial not in seen, (
                f"serial {serial} on shards {seen[serial]} and {index}"
            )
            seen[serial] = index
    merged = service.bank.merged()
    assert len(merged._seen_serials) == len(seen)

    # balance conservation: credits in == balance growth, account by
    # account (replays rejected ⇒ zero credit from them)
    credited: dict[str, int] = {}
    for aid, before in balance_before.items():
        after = service.bank.balance(aid)
        assert after >= before, f"{aid} lost money during the soak"
        credited[aid] = after - before
    total_leaves = sum(credited.values())
    # each fresh deposit at node_level=1 credits half a coin's leaves
    leaves_per_token = 1 << (service.bank.params.tree_level - 1)
    assert total_leaves == n_fresh * leaves_per_token

    # the service saw real concurrency worth of frames
    assert frontend.served >= report.completed - 1  # audit reply races close

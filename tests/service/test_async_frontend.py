"""The asyncio front door: one event loop, many sockets, same service.

Behavioral guarantees of :class:`~repro.service.aio
.AsyncServiceFrontend` beyond what the conformance suite proves
byte-for-byte: the wire protocol round-trips, a flooding client is
paused and bounded while a polite one keeps its share, a paused
connection resumes once its window drains, forced overload answers
``BUSY`` before the payload is ever parsed, and a mid-frame
disconnect at every offset leaves the dispatcher clean.
"""

from __future__ import annotations

import random
import socket
import threading
import time

import pytest

from repro.net.wire import encode_frame, read_frame, write_frame
from repro.service import (
    AdmissionController,
    AsyncServiceFrontend,
    MarketService,
    ServiceClient,
    ShardedBank,
    VerificationBatcher,
    run_async_socket_trace,
)


def _settle(predicate, timeout: float = 10.0) -> bool:
    """Poll *predicate* until true or *timeout* (event-loop handoffs
    land a beat after the client-visible reply)."""
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            return False
        time.sleep(0.01)
    return True


@pytest.fixture()
def async_frontend(service):
    front = AsyncServiceFrontend(service).start()
    yield front
    front.close()
    # close() joins with bounded timeouts; a thread may be observably
    # alive for an instant after close returns without being leaked
    assert _settle(lambda: not [
        t for t in threading.enumerate()
        if t.name.startswith("frontend-") and t.is_alive()
    ], timeout=5.0), "async frontend close() left threads running"


def _funded_deposits(service, n=4):
    from tests.service.conftest import mint_tokens

    return mint_tokens(service, random.Random(0xF00D), n, node_level=1)


class TestRequestKinds:
    """The blocking ServiceClient speaks to the async frontend
    unchanged — same frames, same replies."""

    def test_open_account_and_balance(self, async_frontend):
        with ServiceClient(async_frontend.address, sender="alice") as c:
            assert c.request("open-account",
                             {"aid": "alice", "balance": 40})["status"] == "OK"
            reply = c.request("balance", {"aid": "alice"})
            assert (reply["status"], reply["balance"]) == ("OK", 40)

    def test_deposit_and_double_spend(self, async_frontend):
        deposit = _funded_deposits(async_frontend.service, 1)[0]
        with ServiceClient(async_frontend.address) as c:
            first = c.request(deposit.kind, deposit.payload,
                              sender=deposit.sender)
            replay = c.request(deposit.kind, dict(deposit.payload),
                               sender="mallory")
        assert first["status"] == "OK"
        assert replay["status"] == "REJECTED"

    def test_rid_dedup(self, async_frontend):
        deposit = _funded_deposits(async_frontend.service, 1)[0]
        with ServiceClient(async_frontend.address) as c:
            first = c.request(deposit.kind, deposit.payload,
                              sender=deposit.sender, rid="aio:dedup:1")
            again = c.request(deposit.kind, deposit.payload,
                              sender=deposit.sender, rid="aio:dedup:1")
        strip = lambda reply: {k: v for k, v in reply.items()
                               if k not in ("cid", "req")}
        assert strip(again) == strip(first)
        assert async_frontend.service.dedup_hits == 1

    def test_malformed_request_gets_error_frame(self, async_frontend):
        with socket.create_connection(async_frontend.address,
                                      timeout=10) as sock:
            write_frame(sock, ["not", "a", "dict"])
            reply = read_frame(sock)
            assert reply["status"] == "ERROR"
            # the connection survives a malformed request
            write_frame(sock, {"cid": 7, "kind": "audit", "payload": {}})
            reply = read_frame(sock)
            assert reply["cid"] == 7 and reply["status"] == "OK"

    def test_async_loadgen_round_trip(self, async_frontend):
        requests = _funded_deposits(async_frontend.service, 6)
        report = run_async_socket_trace(async_frontend.address, requests,
                                        connections=3, pipeline_depth=2)
        assert report.ok == len(requests)
        assert report.errors == 0 and report.shed == 0


class TestBackpressure:
    """A stalled dispatcher exposes the window mechanics deterministically."""

    WINDOW = 2

    @pytest.fixture()
    def stalled(self, service):
        """Async frontend whose dispatcher is parked in after_batch."""
        front = AsyncServiceFrontend(service, window=self.WINDOW).start()
        gate = threading.Event()
        stalled = threading.Event()

        def stall() -> None:
            stalled.set()
            gate.wait(timeout=60)

        front.after_batch = stall
        yield front, gate, stalled
        gate.set()
        front.close()

    def test_flooder_is_paused_and_bounded_polite_client_admitted(self, stalled):
        front, gate, stalled_ev = stalled
        n_flood = 40
        # park the dispatcher: one served request, then after_batch waits
        starter = ServiceClient(front.address, timeout=30.0)
        assert starter.request("audit", {})["status"] == "OK"
        assert stalled_ev.wait(timeout=10)

        flooder = socket.create_connection(front.address, timeout=30)
        flood = b"".join(
            encode_frame({"cid": i, "kind": "audit", "payload": {}})
            for i in range(n_flood)
        )
        flooder.sendall(flood)

        # the flooder is read-paused with only `window` slots admitted;
        # everything else waits in *its* backlog, not the shared queue
        assert _settle(lambda: front.paused_connections == 1)
        assert front.pauses >= 1
        assert front.core.backlog <= self.WINDOW + 1

        # a polite client still gets its request admitted immediately
        polite = ServiceClient(front.address, timeout=30.0)
        polite_cid = polite.send("audit", {})
        assert _settle(lambda: front.core.backlog >= 1)
        assert front.core.backlog <= self.WINDOW + 2

        # release the dispatcher: everything drains, the flooder resumes
        gate.set()
        polite_reply = polite.recv()
        assert polite_reply["cid"] == polite_cid
        assert polite_reply["status"] == "OK"
        seen = set()
        for _ in range(n_flood):
            reply = read_frame(flooder)
            assert reply["status"] == "OK"
            seen.add(reply["cid"])
        assert seen == set(range(n_flood))
        assert _settle(lambda: front.paused_connections == 0)
        assert front.resumes >= 1
        for sock in (flooder, starter.sock, polite.sock):
            sock.close()

    def test_preparse_busy_under_forced_overload(self, dec_params_toy,
                                                 service_backend):
        """With the dispatcher stalled and a tight queue bound, frames
        are shed BUSY from the header alone — cid-less replies, zero
        decode work, dispatcher untouched."""
        bank = ShardedBank.create(dec_params_toy, random.Random(3), n_shards=2)
        batcher = VerificationBatcher(bank.params, bank.keypair, max_batch=4,
                                      seed=1, backend=service_backend,
                                      warm_tables=False)
        service = MarketService(
            bank, batcher=batcher, rng=random.Random(5),
            admission=AdmissionController(max_queue_depth=2),
        )
        front = AsyncServiceFrontend(service, window=64).start()
        gate = threading.Event()
        stalled_ev = threading.Event()
        front.after_batch = lambda: (stalled_ev.set(), gate.wait(timeout=60))
        try:
            starter = ServiceClient(front.address, timeout=30.0)
            assert starter.request("audit", {})["status"] == "OK"
            assert stalled_ev.wait(timeout=10)

            # dispatcher parked: enqueued frames pile into core.backlog
            # until it crosses max_queue_depth, then the shed starts
            with socket.create_connection(front.address, timeout=30) as sock:
                n = 10
                for i in range(n):
                    write_frame(sock, {"cid": i, "kind": "audit",
                                       "payload": {}})
                assert _settle(lambda: front.preparse_busy >= 1)
                gate.set()
                statuses, cidless = [], 0
                for _ in range(n):
                    reply = read_frame(sock)
                    statuses.append(reply["status"])
                    if "cid" not in reply:
                        cidless += 1
                        assert reply["status"] == "BUSY"
                        assert reply["reason"] == "overload"
            assert statuses.count("OK") + cidless == n
            assert cidless == front.preparse_busy >= 1
            # every admitted frame was answered by the dispatcher; shed
            # ones never reached it (+1 is the starter's request)
            assert _settle(
                lambda: front.served == statuses.count("OK") + 1)
            starter.close()
        finally:
            gate.set()
            front.close()


class TestDisconnects:
    def test_mid_frame_disconnect_at_every_offset(self, async_frontend):
        """A client dying at *any* byte offset inside a frame leaves
        nothing half-applied and the dispatcher serving the next
        client."""
        front = async_frontend
        before = front.service.completions
        torn = encode_frame({"cid": 0, "kind": "balance",
                             "payload": {"aid": "sp0"}})
        expected_errors = 0
        for offset in range(1, len(torn)):
            with socket.create_connection(front.address) as sock:
                sock.sendall(torn[:offset])
            expected_errors += 1
        # every torn connection is gone, every tear was counted, and
        # the torn half-frames never reached the service
        assert _settle(lambda: front.conn_errors == expected_errors)
        assert _settle(
            lambda: not front._conns), "torn connections not reaped"
        assert front.service.completions == before
        with ServiceClient(front.address) as c:
            reply = c.request("audit", {})
        assert reply["status"] == "OK" and reply["clean"] is True
        assert front.service.completions == before + 1

    def test_corrupt_frame_gets_error_and_close(self, async_frontend):
        front = async_frontend
        frame = bytearray(encode_frame({"cid": 9, "kind": "audit",
                                        "payload": {}}))
        frame[-1] ^= 0xFF
        with socket.create_connection(front.address, timeout=10) as sock:
            sock.sendall(bytes(frame))
            reply = read_frame(sock)
            assert reply is None or reply["status"] == "ERROR"
        assert front.service.completions == 0
        assert _settle(lambda: front.conn_errors >= 1)


class TestLifecycle:
    def test_close_is_idempotent(self, service):
        front = AsyncServiceFrontend(service).start()
        front.close()
        front.close()

    def test_context_manager(self, service):
        with AsyncServiceFrontend(service) as front:
            with ServiceClient(front.address) as c:
                assert c.request("audit", {})["status"] == "OK"

    def test_close_tears_down_live_connections(self, service):
        import pytest as _pytest

        from repro.net.wire import WireError

        front = AsyncServiceFrontend(service).start()
        c = ServiceClient(front.address, timeout=10.0)
        assert c.request("audit", {})["status"] == "OK"
        front.close()
        c.sock.settimeout(10)
        with _pytest.raises((WireError, OSError)):
            c.send("audit", {})
            c.recv()
        c.close()

    def test_metrics_flow(self, service):
        import repro.obs as obs

        telemetry = obs.Telemetry.enabled()
        with AsyncServiceFrontend(service, telemetry=telemetry) as front:
            with ServiceClient(front.address) as c:
                c.request("audit", {})
        snapshot = telemetry.registry.snapshot()
        counters = {m["name"]: m["value"] for m in snapshot["counters"]
                    if not m["labels"]}
        gauges = {m["name"]: m["value"] for m in snapshot["gauges"]
                  if not m["labels"]}
        assert counters["repro_frontend_frames_total"] >= 1
        assert counters["repro_frontend_conn_errors_total"] == 0
        assert counters["repro_frontend_preparse_busy_total"] == 0
        assert gauges["repro_frontend_connections"] == 0  # closed
        assert gauges["repro_frontend_paused_connections"] == 0

    def test_window_must_be_positive(self, service):
        with pytest.raises(ValueError, match="window"):
            AsyncServiceFrontend(service, window=0)

"""Opt-in C10k soak: 10,000 concurrent sockets on one event loop.

Run with ``REPRO_SOAK=1`` (CI runs it on the nightly cron).  The async
frontend's whole reason to exist is connection *count*: the threaded
frontend pays a stack per socket, the event loop pays a protocol
object.  This soak holds ten thousand sockets open **simultaneously**
against one :class:`~repro.service.aio.AsyncServiceFrontend`, probes
every one of them, and holds the SLOs:

* every socket connects (ramped under the listen backlog) and every
  probe is answered — zero errors, zero sheds;
* accept latency and request RTT stay bounded (generous absolute
  ceilings — CI machines vary — plus a sanity ratio against a
  threaded-frontend baseline at a scale threads can survive).

The client flood runs in a **subprocess** (``tools/async_soak_client
.py``): the container's fd ceiling is per-process, so server and
client each get their own 10k-descriptor budget.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import resource
import subprocess
import sys
import time

import pytest

from repro.service import (
    AsyncServiceFrontend,
    MarketService,
    ServiceFrontend,
    ShardedBank,
    VerificationBatcher,
)

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SOAK") != "1",
    reason="soak test: set REPRO_SOAK=1 to run (CI nightly cron does)",
)

#: concurrent sockets the async frontend must sustain — the issue floor
N_SOCKETS = 10_000
ROUNDS = 2
#: threaded baseline scale: one OS thread per socket caps what the
#: comparison leg can be asked to carry
BASELINE_SOCKETS = 512

CLIENT = pathlib.Path(__file__).resolve().parents[2] / "tools" / "async_soak_client.py"


def _raise_fd_limit(need: int) -> None:
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < need and hard > soft:
        resource.setrlimit(resource.RLIMIT_NOFILE, (min(need, hard), hard))


def _make_service(dec_params_toy) -> MarketService:
    bank = ShardedBank.create(dec_params_toy, random.Random(0xA10C), n_shards=2)
    batcher = VerificationBatcher(bank.params, bank.keypair, max_batch=16,
                                  seed=3, warm_tables=False)
    service = MarketService(bank, batcher=batcher, rng=random.Random(0xBEEF))
    service.bank.open_account("soak", 7)  # the balance probes' target
    return service


def _flood(port: int, connections: int) -> dict:
    proc = subprocess.run(
        [sys.executable, str(CLIENT), "--port", str(port),
         "--connections", str(connections), "--rounds", str(ROUNDS)],
        capture_output=True, text=True, timeout=1200,
    )
    assert proc.returncode == 0, (
        f"soak client failed (rc={proc.returncode}):\n"
        f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
    )
    return json.loads(proc.stdout)


def test_async_frontend_sustains_10k_sockets(dec_params_toy):
    _raise_fd_limit(N_SOCKETS + 256)

    # -- threaded baseline, at a scale a thread-per-socket model can hold
    with ServiceFrontend(_make_service(dec_params_toy)) as baseline_front:
        baseline = _flood(baseline_front.address[1], BASELINE_SOCKETS)
    assert baseline["opened"] == BASELINE_SOCKETS
    assert baseline["errors"] == 0

    # -- the C10k leg --------------------------------------------------
    with AsyncServiceFrontend(_make_service(dec_params_toy)) as front:
        report = _flood(front.address[1], N_SOCKETS)
        # `served` is bumped just after the send that unblocks the
        # client, so give the counter a moment to land
        deadline = time.monotonic() + 10.0
        while front.served < report["ok"] and time.monotonic() < deadline:
            time.sleep(0.05)
        served = front.served
    print(f"\nasync soak report: {json.dumps(report)}")
    print(f"threaded baseline ({BASELINE_SOCKETS} sockets): "
          f"{json.dumps(baseline)}")

    # every socket opened, was concurrently held, and was answered
    assert report["opened"] == N_SOCKETS
    assert report["peak_open"] == N_SOCKETS
    assert report["connect_failures"] == 0
    assert report["errors"] == 0
    assert report["busy"] == 0
    assert report["ok"] == N_SOCKETS * ROUNDS
    assert served >= report["ok"]

    # -- SLOs -----------------------------------------------------------
    # absolute ceilings, deliberately generous for shared CI iron
    assert report["connect_p99_ms"] < 2_000, report
    assert report["rtt_p99_ms"] < 10_000, report
    # and the sanity ratio: 20x the sockets may not cost more than ~50x
    # the baseline's median RTT at its own p99 — the loop must degrade
    # smoothly, not collapse
    floor_ms = max(baseline["rtt_p50_ms"], 1.0)
    assert report["rtt_p99_ms"] < 50 * floor_ms, (report, baseline)

"""Shared precomputation tables: export → publish → attach → parity.

The pool parent serializes its warm verification tables
(`export_verification_tables`), publishes them through
`crypto.tablestore`, and workers adopt instead of rebuilding.  These
tests pin the adoption paths: the fast-exp stats must record
*attaches* (not builds), corrupt payloads must be rejected loudly, and
the batcher/service recovery shortcuts must accept a table blob and
still verify identically.
"""

from __future__ import annotations

import pickle

import pytest

from repro.crypto import fastexp, tablestore
from repro.crypto.cl_sig import cl_blind_issue, cl_keygen
from repro.ecash.dec import begin_withdrawal, finish_withdrawal
from repro.ecash.spend import (
    adopt_verification_tables,
    create_spend,
    export_verification_tables,
    verify_spend,
)
from repro.ecash.tree import NodeId
from repro.service import Journal, MarketService, VerificationBatcher
from repro.service.workers import PooledBackend


@pytest.fixture()
def forced_fastexp():
    """Tables on, promotion-gated off, small moduli admitted — the test
    groups are far below the production `min_modulus_bits`."""
    previous = fastexp.configure(enabled=True, promote_after=0, min_modulus_bits=1)
    fastexp.reset()
    yield
    fastexp.configure(**previous)
    fastexp.reset()


def _attached_total() -> int:
    return sum(row.get("attached", 0) for row in fastexp.stats().values())


def _builds_total() -> int:
    return sum(row.get("builds", 0) for row in fastexp.stats().values())


class TestExportAdopt:
    def test_roundtrip_counts_attaches(self, dec_params, forced_fastexp, rng):
        bank_kp = cl_keygen(dec_params.backend, rng)
        blob = export_verification_tables(dec_params, bank_kp.public)
        assert isinstance(blob, bytes) and blob

        fastexp.reset()
        assert _attached_total() == 0
        installed = adopt_verification_tables(dec_params, blob)
        assert installed > 0
        assert _attached_total() >= installed
        # adoption must not have *built* anything
        assert _builds_total() == 0

    def test_adopted_tables_verify_identically(self, dec_params, forced_fastexp,
                                               rng):
        bank_kp = cl_keygen(dec_params.backend, rng)
        secret, request = begin_withdrawal(dec_params, rng)
        signature = cl_blind_issue(dec_params.backend, bank_kp, request, rng)
        coin = finish_withdrawal(dec_params, bank_kp.public, secret, signature)
        token = create_spend(dec_params, bank_kp.public, coin.secret,
                             coin.signature, NodeId(2, 1), rng)
        blob = export_verification_tables(dec_params, bank_kp.public)

        fastexp.reset()
        adopt_verification_tables(dec_params, blob)
        assert verify_spend(dec_params, bank_kp.public, token)

    def test_garbage_rejected(self, dec_params, forced_fastexp):
        with pytest.raises(Exception):
            adopt_verification_tables(dec_params, b"not a pickle")
        with pytest.raises(ValueError):
            adopt_verification_tables(
                dec_params, pickle.dumps({"version": 99, "int": []})
            )
        with pytest.raises(ValueError):
            adopt_verification_tables(dec_params, pickle.dumps([1, 2, 3]))

    def test_disabled_adopt_is_a_noop(self, dec_params, rng):
        bank_kp = cl_keygen(dec_params.backend, rng)
        previous = fastexp.configure(enabled=True, promote_after=0,
                                     min_modulus_bits=1)
        fastexp.reset()
        try:
            blob = export_verification_tables(dec_params, bank_kp.public)
            fastexp.configure(enabled=False)
            fastexp.reset()
            assert adopt_verification_tables(dec_params, blob) == 0
        finally:
            fastexp.configure(**previous)
            fastexp.reset()


class TestPublishedRef:
    def test_pooled_backend_publishes_tables(self, dec_params_toy,
                                             forced_fastexp, rng):
        keypair = cl_keygen(dec_params_toy.backend, rng)
        try:
            backend = PooledBackend(dec_params_toy, keypair.public, processes=2)
        except Exception:
            pytest.skip("process pool unavailable in this environment")
        try:
            assert backend.table_ref is not None
            blob = tablestore.load(backend.table_ref)
            fastexp.reset()
            assert adopt_verification_tables(dec_params_toy, blob) > 0
        finally:
            backend.close()
        # the published segment dies with the backend
        with pytest.raises(Exception):
            tablestore.load(backend.table_ref)

    def test_share_tables_off_skips_publication(self, dec_params_toy,
                                                forced_fastexp, rng):
        keypair = cl_keygen(dec_params_toy.backend, rng)
        try:
            backend = PooledBackend(dec_params_toy, keypair.public, processes=2,
                                    share_tables=False)
        except Exception:
            pytest.skip("process pool unavailable in this environment")
        try:
            assert backend.table_ref is None
        finally:
            backend.close()

    def test_no_publication_when_fastexp_disabled(self, dec_params_toy, rng):
        keypair = cl_keygen(dec_params_toy.backend, rng)
        previous = fastexp.configure(enabled=False)
        fastexp.reset()
        try:
            backend = PooledBackend(dec_params_toy, keypair.public, processes=2)
        except Exception:
            pytest.skip("process pool unavailable in this environment")
        else:
            try:
                assert backend.table_ref is None
            finally:
                backend.close()
        finally:
            fastexp.configure(**previous)
            fastexp.reset()


class TestRecoveryShortcut:
    def test_batcher_accepts_table_blob(self, dec_params, forced_fastexp, rng):
        keypair = cl_keygen(dec_params.backend, rng)
        blob = export_verification_tables(dec_params, keypair.public)
        fastexp.reset()
        batcher = VerificationBatcher(dec_params, keypair, tables=blob)
        assert _attached_total() > 0
        assert _builds_total() == 0
        assert batcher is not None

    def test_recover_accepts_table_blob(self, dec_params, forced_fastexp, rng):
        keypair = cl_keygen(dec_params.backend, rng)
        blob = export_verification_tables(dec_params, keypair.public)

        fastexp.reset()
        recovered = MarketService.recover(
            dec_params, keypair, Journal(), n_shards=2, tables=blob
        )
        assert _attached_total() > 0
        assert _builds_total() == 0
        assert isinstance(recovered, MarketService)

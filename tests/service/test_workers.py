"""The verification worker backends: dispatch, warm-up, fallback.

Cross-process *result* parity is held by ``test_worker_parity.py``;
this module covers the backend machinery itself — seed derivation
shared with the inline path, the ``REPRO_PROCESSES`` policy in
:func:`repro.service.workers.make_backend`, and the graceful
degradation paths (spawn failure at construction, pool breakage
mid-run).
"""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.metrics.parallel import SweepPoint, sweep, sweep_points
from repro.service import workers
from repro.service.workers import (
    InlineBackend,
    PooledBackend,
    VerificationBackend,
    make_backend,
)


def _square(point: SweepPoint) -> tuple[int, int]:
    """Module-level (picklable) worker: echoes the point's seed."""
    return point.params * point.params, point.seed


@pytest.fixture(scope="module")
def pooled(dec_params_toy) -> PooledBackend:
    backend = PooledBackend(dec_params_toy, None, processes=2)
    yield backend
    backend.close()


class TestInlineBackend:
    def test_matches_sweep_serial_path(self):
        grid = list(range(7))
        assert InlineBackend().run(_square, grid, seed=3) == sweep(
            _square, grid, seed=3, processes=1
        )

    def test_reports_one_worker(self):
        assert InlineBackend().workers == 1

    def test_close_is_idempotent(self):
        backend = InlineBackend()
        backend.close()
        backend.close()


class TestSweepPointSharing:
    def test_points_are_the_sweep_seed_derivation(self):
        points = sweep_points(["a", "b"], 9)
        assert [p.params for p in points] == ["a", "b"]
        assert [p.index for p in points] == [0, 1]
        # the exact constants the serial sweep has always used
        assert points[0].seed == (9 * 1_000_003) & 0x7FFFFFFF
        assert points[1].seed == (9 * 1_000_003 + 7919) & 0x7FFFFFFF

    def test_empty_grid(self):
        assert sweep_points([], 0) == []


class TestPooledBackend:
    def test_results_in_grid_order_with_inline_seeds(self, pooled):
        grid = list(range(11))
        assert pooled.run(_square, grid, seed=5) == InlineBackend().run(
            _square, grid, seed=5
        )

    def test_empty_grid_short_circuits(self, pooled):
        assert pooled.run(_square, [], seed=0) == []

    def test_counts_dispatches(self, dec_params_toy):
        telemetry = obs.Telemetry.enabled()
        backend = PooledBackend(dec_params_toy, None, processes=2,
                                telemetry=telemetry)
        try:
            backend.run(_square, [1, 2, 3], seed=1)
            assert backend.dispatches == 1
            snapshot = telemetry.registry.snapshot()
            counters = {
                (m["name"], tuple(sorted(m["labels"].items()))): m["value"]
                for m in snapshot["counters"]
            }
            gauges = {m["name"]: m["value"] for m in snapshot["gauges"]}
            assert counters[("repro_pool_dispatches_total", ())] == 1
            assert gauges["repro_pool_workers"] >= 1
            worker_chunks = sum(
                value
                for (name, _), value in counters.items()
                if name == "repro_pool_worker_chunks_total"
            )
            assert worker_chunks == 3
        finally:
            backend.close()

    def test_rejects_single_worker(self, dec_params_toy):
        with pytest.raises(ValueError):
            PooledBackend(dec_params_toy, None, processes=1)

    def test_broken_pool_degrades_to_inline(self, dec_params_toy):
        backend = PooledBackend(dec_params_toy, None, processes=2)
        try:
            # simulate every worker dying: results must still be the
            # inline ones, and the backend must stay degraded
            backend._pool.shutdown(wait=True, cancel_futures=True)
            grid = list(range(5))
            assert backend.run(_square, grid, seed=2) == InlineBackend().run(
                _square, grid, seed=2
            )
            assert backend.degraded
            assert backend.fallbacks == 1
            # subsequent runs stay inline without touching the dead pool
            assert backend.run(_square, grid, seed=3) == InlineBackend().run(
                _square, grid, seed=3
            )
            assert backend.fallbacks == 1
        finally:
            backend.close()


class TestMakeBackend:
    def test_explicit_serial_is_inline(self, dec_params_toy):
        backend = make_backend(dec_params_toy, processes=1)
        assert isinstance(backend, InlineBackend)

    def test_env_processes_one_is_inline(self, dec_params_toy, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "1")
        backend = make_backend(dec_params_toy)
        assert isinstance(backend, InlineBackend)

    def test_env_unset_defaults_serial(self, dec_params_toy, monkeypatch):
        monkeypatch.delenv("REPRO_PROCESSES", raising=False)
        backend = make_backend(dec_params_toy)
        assert isinstance(backend, InlineBackend)

    def test_env_processes_pools(self, dec_params_toy, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "2")
        backend = make_backend(dec_params_toy)
        try:
            assert isinstance(backend, PooledBackend)
            assert backend.workers == 2
        finally:
            backend.close()

    def test_spawn_failure_falls_back_inline(self, dec_params_toy, monkeypatch):
        def explode(*args, **kwargs):
            raise OSError("no processes on this host")

        monkeypatch.setattr(workers, "PooledBackend", explode)
        telemetry = obs.Telemetry.enabled()
        backend = make_backend(dec_params_toy, processes=4, telemetry=telemetry)
        assert isinstance(backend, InlineBackend)
        fallbacks = telemetry.registry.counter(
            "repro_pool_fallbacks_total",
            "dispatches degraded to inline after a pool failure",
        )
        assert fallbacks.value == 1
        # the fallback backend still serves work
        assert backend.run(_square, [4], seed=0)[0][0] == 16


class TestBatcherIntegration:
    def test_batcher_adopts_backend_worker_count(self, sharded_bank):
        from repro.service import VerificationBatcher

        backend = InlineBackend()
        batcher = VerificationBatcher(
            sharded_bank.params, sharded_bank.keypair,
            processes=7, warm_tables=False, backend=backend,
        )
        assert batcher.backend is backend
        assert batcher.processes == 1  # backend wins over the hint

    def test_batcher_default_is_inline(self, sharded_bank):
        from repro.service import VerificationBatcher

        batcher = VerificationBatcher(
            sharded_bank.params, sharded_bank.keypair, warm_tables=False
        )
        assert isinstance(batcher.backend, InlineBackend)
        batcher.close()

    def test_backend_is_a_context_manager(self):
        with InlineBackend() as backend:
            assert isinstance(backend, VerificationBackend)

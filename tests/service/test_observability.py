"""End-to-end telemetry through the serving stack.

The acceptance bar for the observability layer: one deposit submitted
to :class:`MarketService` yields a *single* trace id whose spans cover
admission → batch verification → shard apply → journal append → reply,
exported as trace JSON Perfetto loads; the planted request/account
material never appears in any export; and the toggles-off path hands
out the shared no-op span (no per-request allocation).
"""

from __future__ import annotations

import json
import random

import pytest

from repro import obs
from repro.service import (
    AdmissionController,
    Journal,
    MarketService,
    VerificationBatcher,
)
from repro.service.loadgen import mint_deposit_traffic

from .conftest import mint_tokens


@pytest.fixture()
def traced_service(sharded_bank):
    telemetry = obs.Telemetry.enabled()
    batcher = VerificationBatcher(
        sharded_bank.params, sharded_bank.keypair, max_batch=8, seed=1
    )
    service = MarketService(
        sharded_bank,
        batcher=batcher,
        rng=random.Random(5),
        journal=Journal(),
        telemetry=telemetry,
    )
    return service, telemetry


#: every phase of the request path the acceptance criterion names
PIPELINE_SPANS = {
    "submit", "admission", "verify_spend", "apply", "shard_apply",
    "journal_append", "reply",
}


def test_one_deposit_yields_one_trace_through_every_phase(traced_service, rng):
    service, telemetry = traced_service
    request = mint_tokens(service, rng, 1)[0]
    rid = "obs:dep:0"
    service.submit(request.sender, "deposit", request.payload, rid=rid)
    service.drain()

    expected = obs.trace_id(rid)
    records = [r for r in telemetry.tracer.records() if r.trace == expected]
    names = {r.name for r in records}
    assert PIPELINE_SPANS <= names, f"missing {PIPELINE_SPANS - names}"

    # the request's timeline is internally consistent
    for record in records:
        assert record.end >= record.start
    # nested spans acknowledge their parents within the trace
    by_id = {r.span_id: r for r in records}
    for record in records:
        if record.parent is not None:
            assert record.parent in by_id

    # and it is the ONLY request trace — minting/bank setup traffic
    # lands on background ("bg*") lanes, not on a request id
    request_traces = {
        r.trace for r in telemetry.tracer.records()
        if not r.trace.startswith("bg") and r.trace != "batcher"
    }
    assert request_traces == {expected}


def test_trace_export_is_perfetto_loadable_and_secret_free(traced_service, rng):
    service, telemetry = traced_service
    requests = mint_tokens(service, rng, 2)
    for i, request in enumerate(requests):
        service.submit(request.sender, "deposit", request.payload,
                       rid=f"obs:dep:{i}")
    service.drain()

    blob = telemetry.tracer.export_jsonl()
    events = json.loads(blob)
    assert events, "no events exported"
    for event in events:
        assert event["ph"] in ("X", "M")
        if event["ph"] == "X":
            assert event["ts"] >= 0 and event["dur"] >= 0

    # the rid and the account ids must never reach the export
    assert "obs:dep" not in blob
    for aid in ("sp0", "sp1", "sp2"):
        assert f'"{aid}"' not in blob


def test_busy_and_status_counters_land_in_the_registry(sharded_bank):
    telemetry = obs.Telemetry.enabled()
    batcher = VerificationBatcher(
        sharded_bank.params, sharded_bank.keypair, max_batch=8, seed=1
    )
    service = MarketService(
        sharded_bank,
        batcher=batcher,
        admission=AdmissionController(max_queue_depth=1),
        rng=random.Random(5),
        journal=Journal(),
        telemetry=telemetry,
    )
    rng = random.Random(11)
    requests = mint_deposit_traffic(service, rng, n_accounts=2, n_deposits=4)
    for i, request in enumerate(requests):
        service.submit(request.sender, "deposit", request.payload,
                       rid=f"busy:{i}")
    service.drain()

    registry = telemetry.registry
    assert registry.counter("repro_service_requests_total").value == 4
    shed = registry.counter("repro_admission_shed_total", reason="queue").value
    busy = registry.counter("repro_service_replies_total", status="BUSY").value
    ok = registry.counter("repro_service_replies_total", status="OK").value
    assert shed == busy == service.shed > 0
    assert ok == 4 - busy
    assert registry.counter("repro_journal_appends_total", kind="accept").value > 0
    assert registry.counter("repro_batcher_flushes_total").value >= 1
    latency = registry.histogram("repro_request_latency_seconds")
    assert latency.count == ok


def test_dump_telemetry_writes_all_three_exports(traced_service, rng, tmp_path):
    service, telemetry = traced_service
    request = mint_tokens(service, rng, 1)[0]
    service.submit(request.sender, "deposit", request.payload, rid="obs:d0")
    service.drain()

    paths = service.dump_telemetry(tmp_path)
    assert json.loads(open(paths["trace"]).read())
    metrics = json.loads(open(paths["metrics"]).read())
    assert any(e["name"] == "repro_service_requests_total"
               for e in metrics["counters"])
    # fastexp cache counters are published on dump
    assert any(e["name"].startswith("repro_fastexp_")
               for e in metrics["gauges"])
    prom = open(paths["prometheus"]).read()
    assert "# TYPE repro_service_requests_total counter" in prom

    # without a directory the same exports come back in-memory
    exports = service.dump_telemetry()
    assert set(exports) == {"trace", "metrics", "prometheus"}


def test_recovery_spans_and_counters(dec_params_toy):
    # built locally: recovery needs a journal that outlives the first
    # incarnation
    from repro.service.shard import ShardedBank

    rng = random.Random(3)
    params = dec_params_toy
    telemetry = obs.Telemetry.enabled()
    journal = Journal()
    bank = ShardedBank.create(params, rng, n_shards=2, journal=journal)
    service = MarketService(bank, rng=random.Random(4), telemetry=telemetry)
    service.submit("acct", "open-account", {"aid": "a0", "balance": 4},
                   rid="open:0")
    service.drain()

    recovered = MarketService.recover(
        params, bank.keypair, journal, n_shards=2, telemetry=telemetry
    )
    assert recovered.bank.balance("a0") == 4
    names = {r.name for r in telemetry.tracer.records()}
    assert {"recover", "bank_replay"} <= names
    assert telemetry.registry.counter("repro_recoveries_total").value == 1
    replayed = telemetry.registry.counter("repro_recovery_replayed_total").value
    assert replayed >= 1


def test_toggles_off_path_allocates_no_spans(service, rng):
    # the default-built service falls back to the module default, which
    # is disabled unless REPRO_TRACE/REPRO_METRICS say otherwise
    telemetry = service.obs
    if telemetry.tracing or telemetry.metrics:
        pytest.skip("REPRO_TRACE/REPRO_METRICS enabled in this environment")
    assert telemetry.tracer.span("submit", kind="deposit") is obs.NOOP_SPAN
    request = mint_tokens(service, rng, 1)[0]
    service.submit(request.sender, "deposit", request.payload, rid="off:0")
    service.drain()
    assert telemetry.tracer.records() == []
    assert telemetry.registry.counter("repro_service_requests_total").value == 0

"""Token bucket and admission controller."""

from __future__ import annotations

import pytest

from repro.service import AdmissionController, TokenBucket


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        assert [bucket.allow(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=1)
        assert bucket.allow(0.0)
        assert not bucket.allow(0.0)
        assert bucket.allow(0.5)  # 0.5 s * 2 tokens/s = 1 token back

    def test_refill_capped_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        bucket.allow(0.0)
        bucket.allow(0.0)
        results = [bucket.allow(10.0), bucket.allow(10.0), bucket.allow(10.0)]
        assert results == [True, True, False]

    def test_disabled_bucket_always_allows(self):
        bucket = TokenBucket(rate=None)
        assert all(bucket.allow(0.0) for _ in range(100))

    def test_time_going_backwards_does_not_refill(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        assert bucket.allow(5.0)
        assert not bucket.allow(1.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_unbounded_controller_admits_everything(self):
        control = AdmissionController()
        assert all(control.admit(0.0, depth).admitted for depth in (0, 10, 10**6))
        assert control.shed_total == 0

    def test_rate_shed_counted_with_reason(self):
        control = AdmissionController(rate=1.0, burst=1)
        assert control.admit(0.0, 0).admitted
        decision = control.admit(0.0, 0)
        assert not decision.admitted and decision.reason == "rate"
        assert control.shed_by_rate == 1 and control.shed_by_queue == 0

    def test_queue_shed_counted_with_reason(self):
        control = AdmissionController(max_queue_depth=2)
        assert control.admit(0.0, 1).admitted
        decision = control.admit(0.0, 2)
        assert not decision.admitted and decision.reason == "queue"
        assert control.shed_by_queue == 1

    def test_queue_shed_does_not_consume_rate_tokens(self):
        control = AdmissionController(rate=1.0, burst=1, max_queue_depth=1)
        assert not control.admit(0.0, 5).admitted  # shed on queue...
        assert control.admit(0.0, 0).admitted  # ...token still there

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=0)

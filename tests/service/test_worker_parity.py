"""Cross-process parity: pooled verification ≡ inline, bit for bit.

The worker pool is only admissible if it is *invisible* in every
observable output: the same seeded deposit/withdraw workload pushed
through an inline-backend service and a pooled-backend service must
produce

* byte-identical reply envelopes (canonical codec bytes, in order),
* byte-identical write-ahead journal records, and
* equal service/batcher metric counters,

with the fast-exp tables both on and off (the pool warms per-process
tables; warm vs cold may never change a verdict).  Any divergence here
means worker scheduling leaked into results — the exact failure mode
the shared :func:`repro.metrics.parallel.sweep_points` seed derivation
exists to prevent.
"""

from __future__ import annotations

import random

import pytest

import repro.obs as obs
from repro.crypto import fastexp
from repro.crypto.cl_sig import cl_keygen
from repro.ecash.dec import begin_withdrawal
from repro.net.codec import encode
from repro.service import (
    InlineBackend,
    Journal,
    MarketService,
    PooledBackend,
    Request,
    ShardedBank,
    VerificationBatcher,
    mint_deposit_traffic,
)

#: enough deposits to span several batches and several pool chunks
N_DEPOSITS = 12
MAX_BATCH = 5


@pytest.fixture(scope="module")
def parity_workload(dec_params_toy):
    """One seeded request mix: deposits (with double-spend replays),
    withdrawals, account opens and balance probes."""
    params = dec_params_toy
    keypair = cl_keygen(params.backend, random.Random(0xA11CE))
    mint_bank = ShardedBank(params, keypair, random.Random(1), n_shards=1)
    deposits = mint_deposit_traffic(
        MarketService(mint_bank),
        random.Random(2),
        n_accounts=3,
        n_deposits=N_DEPOSITS,
        node_level=1,
        replay_fraction=0.2,
    )
    rng = random.Random(3)
    requests = list(deposits)
    # interleave cheap and withdraw traffic at fixed positions
    requests.insert(2, Request(sender="sp0", kind="balance",
                               payload={"aid": "sp0"}))
    requests.insert(5, Request(sender="fresh", kind="open-account",
                               payload={"aid": "fresh", "balance": 64}))
    _, issuance = begin_withdrawal(params, rng)
    requests.insert(7, Request(sender="fresh", kind="withdraw",
                               payload={"aid": "fresh", "request": issuance}))
    requests.append(Request(sender="sp1", kind="audit", payload={}))
    return params, keypair, mint_bank.merged(), requests


def _run(workload, backend_factory, *, fastexp_on: bool) -> dict:
    """The workload through one service; every comparable artefact."""
    params, keypair, book, requests = workload
    previous = fastexp.configure(enabled=fastexp_on)
    fastexp.reset()
    try:
        telemetry = obs.Telemetry.enabled()
        journal = Journal(telemetry=telemetry)
        bank = ShardedBank(params, keypair, random.Random(7), n_shards=4,
                           telemetry=telemetry)
        for aid, balance in book.accounts.items():
            bank.open_account(aid, balance)
        for aid in book.withdrawals:
            bank.account_home(aid).withdrawals.append(aid)
        backend = backend_factory(params, keypair)
        batcher = VerificationBatcher(
            params, keypair, max_batch=MAX_BATCH, seed=11,
            warm_tables=fastexp_on, backend=backend, telemetry=telemetry,
        )
        service = MarketService(bank, batcher=batcher, rng=random.Random(13),
                                journal=journal, telemetry=telemetry)
        reply_bytes: list[bytes] = []
        service.transport.add_observer(
            lambda e: reply_bytes.append(encode(e.payload))
            if e.kind == "reply" else None
        )
        for i, request in enumerate(requests):
            service.submit(request.sender, request.kind, request.payload,
                           rid=f"{request.sender}:parity:{i}")
            service.step()
        service.drain()
        backend.close()

        counters = {
            (m["name"], tuple(sorted(m["labels"].items()))): m["value"]
            for m in telemetry.registry.snapshot()["counters"]
            # pool-plumbing counters exist only on the pooled side and
            # are *about* the backend, not about verdicts
            if not m["name"].startswith("repro_pool_")
        }
        return {
            "replies": reply_bytes,
            "journal": [encode(rec.to_state()) for rec in journal.records()],
            "counters": counters,
            "statuses": {
                "completions": service.completions,
                "failures": [(f.sender, f.seq, f.kind, f.error)
                             for f in service.failures],
                "flushes": batcher.flushes,
                "jobs": batcher.jobs_processed,
            },
        }
    finally:
        fastexp.configure(**previous)
        fastexp.reset()


def _inline(params, keypair):
    return InlineBackend()


def _pooled(params, keypair):
    return PooledBackend(params, keypair.public, processes=2)


@pytest.mark.parametrize("fastexp_on", [False, True],
                         ids=["fastexp-off", "fastexp-on"])
def test_pooled_is_bit_identical_to_inline(parity_workload, fastexp_on):
    inline = _run(parity_workload, _inline, fastexp_on=fastexp_on)
    pooled = _run(parity_workload, _pooled, fastexp_on=fastexp_on)

    assert pooled["replies"] == inline["replies"], (
        "pooled backend changed a reply byte"
    )
    assert pooled["journal"] == inline["journal"], (
        "pooled backend changed a journal record"
    )
    assert pooled["counters"] == inline["counters"]
    assert pooled["statuses"] == inline["statuses"]


def test_workload_exercises_every_status(parity_workload):
    """The parity baseline is only meaningful if the workload actually
    covers OK, REJECTED (double spend) and all four request kinds."""
    inline = _run(parity_workload, _inline, fastexp_on=False)
    assert inline["statuses"]["failures"], "expected double-spend rejections"
    assert inline["statuses"]["flushes"] >= 2, "expected multiple batches"
    kinds = {request.kind for request in parity_workload[3]}
    assert {"deposit", "withdraw", "balance", "open-account", "audit"} <= kinds


def test_fastexp_toggle_does_not_change_replies(parity_workload):
    """Warm tables change time, never bytes — on either backend."""
    off = _run(parity_workload, _inline, fastexp_on=False)
    on = _run(parity_workload, _inline, fastexp_on=True)
    assert off["replies"] == on["replies"]
    assert off["journal"] == on["journal"]

"""Sharded bank: placement, deposits, snapshot/restore/audit."""

from __future__ import annotations

import random

import pytest

from repro.core.ledger import SnapshotError
from repro.ecash.dec import DoubleSpendError
from repro.service import MarketService, ShardedBank, account_shard, serial_shard

from tests.service.conftest import mint_tokens


class TestPlacement:
    def test_account_shard_stable_and_in_range(self):
        for aid in ("alice", "bob", "sp17", ""):
            home = account_shard(aid, 4)
            assert 0 <= home < 4
            assert account_shard(aid, 4) == home  # no salted hashing

    def test_serial_shard_stable_and_in_range(self):
        for serial in (0, 1, 2**200 + 17, 31337):
            home = serial_shard(serial, 4)
            assert 0 <= home < 4
            assert serial_shard(serial, 4) == home

    def test_single_shard_maps_everything_home(self):
        assert account_shard("anyone", 1) == 0
        assert serial_shard(123456789, 1) == 0

    def test_accounts_spread_across_shards(self):
        homes = {account_shard(f"sp{i}", 4) for i in range(64)}
        assert len(homes) > 1


class TestAccounts:
    def test_open_and_balance(self, sharded_bank):
        sharded_bank.open_account("alice", 16)
        assert sharded_bank.has_account("alice")
        assert sharded_bank.balance("alice") == 16
        assert not sharded_bank.has_account("bob")

    def test_withdrawal_debits_and_records(self, sharded_bank):
        value = 1 << sharded_bank.params.tree_level
        sharded_bank.open_account("alice", value + 3)
        sharded_bank.apply_withdrawal("alice")
        assert sharded_bank.balance("alice") == 3
        assert sharded_bank.account_home("alice").withdrawals == ["alice"]

    def test_underfunded_withdrawal_rejected(self, sharded_bank):
        sharded_bank.open_account("alice", 1)
        with pytest.raises(ValueError, match="cannot cover"):
            sharded_bank.apply_withdrawal("alice")
        assert sharded_bank.balance("alice") == 1

    def test_minimum_shard_count(self, dec_params_toy, rng):
        with pytest.raises(ValueError):
            ShardedBank.create(dec_params_toy, rng, n_shards=0)


class TestDeposits:
    def test_deposit_credits_denomination(self, service, rng):
        requests = mint_tokens(service, rng, 2, node_level=1)
        bank = service.bank
        request = requests[0]
        token = request.payload["token"]
        serials = bank.expand_serials(token)
        amount = bank.apply_deposit(request.sender, token, serials)
        assert amount == token.denomination(bank.params.tree_level)

    def test_exact_replay_rejected_atomically(self, service, rng):
        requests = mint_tokens(service, rng, 1)
        bank = service.bank
        request = requests[0]
        token = request.payload["token"]
        serials = bank.expand_serials(token)
        balance_after = None
        bank.apply_deposit(request.sender, token, serials)
        balance_after = bank.balance(request.sender)
        with pytest.raises(DoubleSpendError) as exc_info:
            bank.apply_deposit(request.sender, token, serials)
        evidence = exc_info.value.evidence
        assert evidence is not None and evidence.serial in serials
        # nothing credited, no serial rewritten
        assert bank.balance(request.sender) == balance_after

    def test_conflicting_serials_caught_across_shards(self, service, rng):
        """A token sharing any leaf serial conflicts regardless of where
        the other serials live."""
        requests = mint_tokens(service, rng, 1, node_level=0)  # whole coin
        bank = service.bank
        request = requests[0]
        token = request.payload["token"]
        serials = bank.expand_serials(token)
        assert len(serials) == 1 << bank.params.tree_level
        bank.apply_deposit(request.sender, token, serials)
        # overlapping subset: same node replayed under a different alias
        bank.open_account("mallory", 0)
        with pytest.raises(DoubleSpendError):
            bank.apply_deposit("mallory", token, serials[:1])

    def test_unknown_account_rejected(self, service, rng):
        requests = mint_tokens(service, rng, 1)
        token = requests[0].payload["token"]
        serials = service.bank.expand_serials(token)
        with pytest.raises(ValueError, match="unknown account"):
            service.bank.apply_deposit("nobody", token, serials)


def _deposited_bank(service, rng, n=4):
    """A bank with *n* applied deposits, plus the applied requests."""
    requests = mint_tokens(service, rng, n, node_level=1)
    bank = service.bank
    for request in requests:
        token = request.payload["token"]
        bank.apply_deposit(request.sender, token, bank.expand_serials(token))
    return bank, requests


class TestSnapshotRoundTrip:
    def test_snapshot_restore_audit_round_trip(self, service, rng, dec_params_toy):
        bank, _ = _deposited_bank(service, rng)
        blobs = bank.snapshot()
        assert len(blobs) == bank.n_shards

        restored = ShardedBank(
            dec_params_toy, bank.keypair, random.Random(9), n_shards=bank.n_shards
        )
        restored.restore(blobs)
        assert restored.audit().clean
        assert restored.merged().accounts == bank.merged().accounts
        assert restored.merged()._seen_serials == bank.merged()._seen_serials
        assert restored.deposit_seq == bank.deposit_seq

    def test_restored_bank_still_detects_double_spends(self, service, rng, dec_params_toy):
        bank, requests = _deposited_bank(service, rng)
        restored = ShardedBank(
            dec_params_toy, bank.keypair, random.Random(9), n_shards=bank.n_shards
        )
        restored.restore(bank.snapshot())
        token = requests[0].payload["token"]
        with pytest.raises(DoubleSpendError):
            restored.apply_deposit(
                requests[0].sender, token, restored.expand_serials(token)
            )

    @pytest.mark.parametrize("shard_index", [0, 1, 2, 3])
    def test_corrupt_shard_blob_identified(self, service, rng, dec_params_toy, shard_index):
        bank, _ = _deposited_bank(service, rng)
        blobs = bank.snapshot()
        bad = bytearray(blobs[shard_index])
        bad[-1] ^= 0xFF
        blobs[shard_index] = bytes(bad)
        restored = ShardedBank(
            dec_params_toy, bank.keypair, random.Random(9), n_shards=bank.n_shards
        )
        with pytest.raises(SnapshotError, match=f"shard {shard_index}"):
            restored.restore(blobs)

    def test_shard_count_mismatch_rejected(self, service, rng, dec_params_toy):
        bank, _ = _deposited_bank(service, rng)
        restored = ShardedBank(
            dec_params_toy, bank.keypair, random.Random(9), n_shards=2
        )
        with pytest.raises(ValueError, match="shards"):
            restored.restore(bank.snapshot())


class TestCrossShardAudit:
    def test_clean_after_traffic(self, service, rng):
        bank, _ = _deposited_bank(service, rng)
        assert bank.audit().clean

    def test_misplaced_account_flagged(self, sharded_bank):
        sharded_bank.open_account("alice", 4)
        home = account_shard("alice", sharded_bank.n_shards)
        wrong = (home + 1) % sharded_bank.n_shards
        balance = sharded_bank.shards[home].accounts.pop("alice")
        sharded_bank.shards[wrong].accounts["alice"] = balance
        report = sharded_bank.audit()
        assert any("wrong" in f or "home is" in f for f in report.findings)

    def test_duplicated_serial_flagged(self, service, rng):
        bank, _ = _deposited_bank(service, rng)
        serial, record = next(iter(bank.serial_home(0)._seen_serials.items())) if \
            bank.serial_home(0)._seen_serials else (None, None)
        merged = bank.merged()
        serial, record = next(iter(merged._seen_serials.items()))
        home = serial_shard(serial, bank.n_shards)
        other = (home + 1) % bank.n_shards
        bank.shards[other]._seen_serials[serial] = record
        report = bank.audit()
        assert not report.clean
        assert any("duplicated" in f for f in report.findings)

"""The TCP front-end: the market service as an actual network peer.

Everything the in-process server suite guarantees — per-sender FIFO,
exactly-once by rid, BUSY shedding, batched verification — must
survive the wire.  These tests drive a live :class:`ServiceFrontend`
through real loopback sockets via :class:`ServiceClient` and the raw
wire helpers.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.ecash.dec import begin_withdrawal
from repro.service import (
    MarketService,
    ServiceClient,
    ServiceFrontend,
    ShardedBank,
    VerificationBatcher,
    run_socket_trace,
)
from repro.service.loadgen import Request


def _stray_reader_threads() -> list[threading.Thread]:
    """Frontend reader/accept threads still alive (should be none
    after close — the reader-leak regression guard)."""
    return [t for t in threading.enumerate()
            if t.name.startswith("frontend-") and t.is_alive()]


def _assert_no_stray_threads(timeout: float = 5.0) -> None:
    """Poll before asserting: close() joins each thread with a bounded
    timeout, so a thread can be observably alive for an instant after
    close returns without being leaked."""
    deadline = time.monotonic() + timeout
    while _stray_reader_threads() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert not _stray_reader_threads(), \
        "frontend.close() left reader threads running"


@pytest.fixture()
def frontend(service):
    front = ServiceFrontend(service).start()
    yield front
    front.close()
    _assert_no_stray_threads()


@pytest.fixture()
def client(frontend):
    with ServiceClient(frontend.address, sender="alice", timeout=30.0) as c:
        yield c


def _funded_deposits(service, n=4):
    from tests.service.conftest import mint_tokens

    return mint_tokens(service, random.Random(0xF00D), n, node_level=1)


class TestRequestKinds:
    def test_open_account_and_balance(self, client):
        opened = client.request("open-account",
                                {"aid": "alice", "balance": 40})
        assert opened["status"] == "OK"
        balance = client.request("balance", {"aid": "alice"})
        assert balance["status"] == "OK"
        assert balance["balance"] == 40

    def test_deposit_over_socket_credits_account(self, frontend, client):
        deposit = _funded_deposits(frontend.service, 1)[0]
        before = client.request("balance",
                                {"aid": deposit.payload["aid"]})["balance"]
        reply = client.request(deposit.kind, deposit.payload,
                               sender=deposit.sender)
        assert reply["status"] == "OK"
        assert reply["amount"] >= 1
        after = client.request("balance",
                               {"aid": deposit.payload["aid"]})["balance"]
        assert after == before + reply["amount"]

    def test_withdraw_over_socket(self, frontend, client):
        service = frontend.service
        client.request("open-account", {"aid": "alice", "balance": 64})
        _, issuance = begin_withdrawal(service.bank.params, random.Random(9))
        reply = client.request(
            "withdraw", {"aid": "alice", "request": issuance})
        assert reply["status"] == "OK"
        assert "signature" in reply

    def test_audit_over_socket(self, client):
        reply = client.request("audit", {})
        assert reply["status"] == "OK"
        assert reply["clean"] is True

    def test_double_spend_rejected_over_socket(self, frontend, client):
        deposit = _funded_deposits(frontend.service, 1)[0]
        first = client.request(deposit.kind, deposit.payload,
                               sender=deposit.sender)
        replay = client.request(deposit.kind, dict(deposit.payload),
                                sender="mallory")
        assert first["status"] == "OK"
        assert replay["status"] == "REJECTED"

    def test_unknown_kind_is_a_service_error(self, client):
        reply = client.request("frobnicate", {})
        assert reply["status"] == "ERROR"


class TestExactlyOnce:
    def test_rid_dedup_over_socket(self, frontend, client):
        """The same rid twice gets the cached verdict, applied once."""
        deposit = _funded_deposits(frontend.service, 1)[0]
        rid = "socket:dedup:1"
        first = client.request(deposit.kind, deposit.payload,
                               sender=deposit.sender, rid=rid)
        again = client.request(deposit.kind, deposit.payload,
                               sender=deposit.sender, rid=rid)
        assert first["status"] == "OK"
        assert again["status"] == "OK"
        # the cached verdict verbatim (new seq, same body), no re-apply
        strip = lambda reply: {k: v for k, v in reply.items()
                               if k not in ("cid", "req")}
        assert strip(again) == strip(first)
        assert frontend.service.dedup_hits == 1
        balance = client.request("balance", {"aid": deposit.payload["aid"]})
        assert balance["balance"] == first["amount"], "applied exactly once"

    def test_distinct_rids_apply_twice(self, frontend, client):
        client.request("open-account", {"aid": "alice", "balance": 1},
                       rid="open:1")
        reply = client.request("open-account", {"aid": "alice", "balance": 1},
                               rid="open:2")
        assert reply["status"] == "ERROR"  # second open is a real attempt


class TestFrontendRejections:
    def test_malformed_request_gets_error_frame(self, frontend):
        from repro.net.wire import read_frame, write_frame
        import socket

        with socket.create_connection(frontend.address, timeout=10) as sock:
            write_frame(sock, ["not", "a", "dict"])
            reply = read_frame(sock)
            assert reply["status"] == "ERROR"
            assert "kind" in reply["error"]
            # the connection survives a malformed request
            write_frame(sock, {"cid": 7, "kind": "audit", "payload": {}})
            reply = read_frame(sock)
            assert reply["cid"] == 7 and reply["status"] == "OK"

    def test_malformed_payload_gets_error_frame(self, client):
        cid = client.send("deposit", {"aid": "alice"})  # no token
        reply = client.recv()
        assert reply["cid"] == cid
        assert reply["status"] == "ERROR"


class TestConcurrentClients:
    def test_interleaved_clients_all_served(self, frontend):
        deposits = _funded_deposits(frontend.service, 6)
        replies: dict[str, list] = {}
        errors: list[Exception] = []

        def drive(name: str, requests: list[Request]) -> None:
            try:
                with ServiceClient(frontend.address, sender=name,
                                   timeout=60.0) as c:
                    out = []
                    for request in requests:
                        out.append(c.request(request.kind, request.payload,
                                             sender=request.sender))
                    replies[name] = out
            except Exception as exc:  # surfaced below
                errors.append(exc)

        half = len(deposits) // 2
        threads = [
            threading.Thread(target=drive, args=(f"client{i}", chunk))
            for i, chunk in enumerate((deposits[:half], deposits[half:]))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        statuses = [reply["status"]
                    for out in replies.values() for reply in out]
        assert statuses == ["OK"] * len(deposits)
        # the dispatcher bumps `served` just *after* the send that
        # unblocks the client, so give the counter a moment to land
        deadline = time.monotonic() + 10.0
        while frontend.served < len(deposits) and time.monotonic() < deadline:
            time.sleep(0.01)
        assert frontend.served == len(deposits)

    def test_socket_loadgen_round_trip(self, frontend):
        """`run_socket_trace` — the loadgen driving the service as a
        network peer — completes a mixed trace with zero losses."""
        service = frontend.service
        requests = _funded_deposits(service, 4)
        requests.append(Request(sender="probe", kind="audit", payload={}))
        report = run_socket_trace(frontend.address, requests,
                                  pipeline_depth=4)
        assert report.completed == len(requests)
        assert report.ok == len(requests)
        assert report.errors == 0 and report.shed == 0
        assert report.latency is not None


class TestLifecycle:
    def test_close_is_idempotent(self, service):
        front = ServiceFrontend(service).start()
        front.close()
        front.close()

    def test_abrupt_disconnect_during_shutdown_leaks_no_threads(self, service):
        """Reader threads are joined on close even when clients vanish
        abruptly — the historical leak: readers were spawned untracked,
        so a client that dropped mid-shutdown left its thread behind."""
        front = ServiceFrontend(service).start()
        clients = [ServiceClient(front.address, timeout=10.0)
                   for _ in range(4)]
        for i, c in enumerate(clients):
            assert c.request("audit", {}, rid=f"shutdown:{i}")["status"] == "OK"
        # abrupt: half the clients drop without a goodbye while their
        # reader threads are parked in recv(); the rest stay connected
        for c in clients[:2]:
            c.sock.close()
        front.close()
        _assert_no_stray_threads()
        for c in clients[2:]:
            c.close()

    def test_context_manager(self, service):
        with ServiceFrontend(service) as front:
            with ServiceClient(front.address) as c:
                assert c.request("audit", {})["status"] == "OK"

    def test_close_tears_down_live_connections(self, service):
        front = ServiceFrontend(service).start()
        c = ServiceClient(front.address, timeout=10.0)
        assert c.request("audit", {})["status"] == "OK"
        front.close()
        # the server side of the live connection is gone: the next read
        # sees EOF (WireError from recv), never a hang
        from repro.net.wire import WireError

        c.sock.settimeout(10)
        with pytest.raises((WireError, OSError)):
            c.send("audit", {})
            c.recv()
        c.close()

    def test_frontend_metrics_flow(self, service):
        import repro.obs as obs

        telemetry = obs.Telemetry.enabled()
        with ServiceFrontend(service, telemetry=telemetry) as front:
            with ServiceClient(front.address) as c:
                c.request("audit", {})
        counters = {m["name"]: m["value"]
                    for m in telemetry.registry.snapshot()["counters"]
                    if not m["labels"]}
        assert counters["repro_frontend_frames_total"] >= 1
        assert counters["repro_frontend_conn_errors_total"] == 0

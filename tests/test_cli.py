"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo", "dec"])
        assert args.mechanism == "dec" and args.level == 3
        assert args.break_algorithm == "epcba"

    def test_attack_subcommands(self):
        args = build_parser().parse_args(["attack", "denomination", "--trials", "10"])
        assert args.attack_kind == "denomination" and args.trials == 10
        args = build_parser().parse_args(["attack", "timing"])
        assert args.attack_kind == "timing"

    def test_chain_args(self):
        args = build_parser().parse_args(["chain", "3", "--bits", "10"])
        assert args.length == 3 and args.bits == 10

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "chain", "2"])
        assert args.seed == 7


class TestCommands:
    def test_demo_pbs(self, capsys):
        assert main(["demo", "pbs", "--participants", "1", "--rsa-bits", "512"]) == 0
        out = capsys.readouterr().out
        assert "sp-0 balance: 1" in out
        assert "Operation counts:" in out and "Traffic:" in out

    def test_demo_dec(self, capsys):
        assert main([
            "demo", "dec", "--level", "2", "--payment", "2",
            "--participants", "1", "--rsa-bits", "512",
        ]) == 0
        out = capsys.readouterr().out
        assert "sp-0 balance: 2" in out

    def test_attack_denomination(self, capsys):
        assert main(["attack", "denomination", "--trials", "20", "--jobs", "5"]) == 0
        out = capsys.readouterr().out
        for strategy in ("none", "pcba", "epcba", "unitary"):
            assert strategy in out

    def test_attack_timing(self, capsys):
        assert main(["attack", "timing", "--trials", "20", "--participants", "5"]) == 0
        out = capsys.readouterr().out
        assert "immediate deposits" in out and "chance level" in out

    def test_chain(self, capsys):
        assert main(["chain", "2", "--bits", "10"]) == 0
        out = capsys.readouterr().out
        assert "chain of length 2" in out

    def test_fig2_small(self, capsys):
        assert main(["fig2", "--max-level", "1", "--chain-bits", "10"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out and "chain-search" in out and "precomputed" in out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--max-rounds", "2", "--step", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out and "PPMSdec" in out and "PPMSpbs" in out


class TestReport:
    def test_report_command(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["report", "--trials", "20", "--rounds", "1",
                     "--out", str(out_file)]) == 0
        text = out_file.read_text()
        for marker in ("Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5",
                       "Table I", "Table II", "Privacy experiments"):
            assert marker in text


class TestCombinedAttackCommand:
    def test_combined_table(self, capsys):
        assert main(["attack", "combined", "--trials", "5",
                     "--participants", "5"]) == 0
        out = capsys.readouterr().out
        assert "both (the paper's)" in out
        assert "cash break only" in out

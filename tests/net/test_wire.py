"""Wire framing robustness: torn frames, oversize, corruption, disconnects.

The framing layer's contract is binary: a frame is either delivered
whole and intact, or rejected with a clean :class:`WireError` — never a
hang, never a partially-applied message, never a silently different
value.  The corruption sweep runs over every golden fixture in
``tests/fixtures/`` (the pinned byte formats real peers exchange) and
flips every single byte of every frame; the CRC makes each flip loud.

The socket half exercises the front-end from
:mod:`repro.service.frontend` against real TCP connections, including
the ``FaultyTransport``-style scenario of a client dying mid-frame.
"""

from __future__ import annotations

import pathlib
import random
import socket

import pytest

from repro.net.codec import encode
from repro.net.wire import (
    HEADER_SIZE,
    MAGIC,
    MAX_FRAME,
    FrameDecoder,
    WireError,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)

FIXTURES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "fixtures").glob("*.bin")
)

SAMPLE_VALUES = [
    None,
    True,
    -(1 << 200),
    3.5,
    b"\x00" * 17,
    "unicode ❤",
    {"nested": [1, {"k": (2, 3)}], "empty": {}},
]


class TestRoundTrip:
    @pytest.mark.parametrize("value", SAMPLE_VALUES, ids=repr)
    def test_values_survive_framing(self, value):
        frame = encode_frame(value)
        decoded, consumed = decode_frame(frame)
        assert decoded == value
        assert consumed == len(frame)

    def test_frame_layout(self):
        frame = encode_frame(b"x")
        assert frame[:4] == MAGIC
        assert len(frame) == HEADER_SIZE + len(encode(b"x"))

    @pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.name)
    def test_golden_fixtures_survive_framing(self, fixture):
        """The committed export blobs ship over the wire byte-exact."""
        blob = fixture.read_bytes()
        decoded, _ = decode_frame(encode_frame(blob))
        assert decoded == blob

    def test_back_to_back_frames(self):
        data = encode_frame(1) + encode_frame("two")
        first, consumed = decode_frame(data)
        second, rest = decode_frame(data[consumed:])
        assert (first, second) == (1, "two")
        assert consumed + rest == len(data)

    def test_oversized_payload_refused_at_encode(self):
        blob = b"\x00" * (MAX_FRAME + 1)
        with pytest.raises(WireError, match="MAX_FRAME"):
            encode_frame(blob)


class TestTornFrames:
    def test_every_split_point_buffers_cleanly(self):
        """A frame delivered in two fragments at *any* split yields the
        value exactly once, no matter where the tear lands."""
        frame = encode_frame({"k": [1, 2, 3], "v": b"payload"})
        for split in range(len(frame) + 1):
            decoder = FrameDecoder()
            decoder.feed(frame[:split])
            early = list(decoder.frames())
            decoder.feed(frame[split:])
            late = list(decoder.frames())
            assert early + late == [{"k": [1, 2, 3], "v": b"payload"}], split

    def test_byte_at_a_time(self):
        frame = encode_frame([1, "x", None])
        decoder = FrameDecoder()
        seen = []
        for i in range(len(frame)):
            decoder.feed(frame[i : i + 1])
            seen.extend(decoder.frames())
            if i < len(frame) - 1:
                assert seen == []
        assert seen == [[1, "x", None]]

    def test_torn_tail_is_pending_not_error(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(0) + encode_frame(1)[:5])
        assert list(decoder.frames()) == [0]
        assert decoder.pending_bytes == 5

    def test_strict_decode_rejects_truncation(self):
        frame = encode_frame({"a": 1})
        for cut in range(len(frame)):
            with pytest.raises(WireError, match="truncated"):
                decode_frame(frame[:cut])


class TestOversizedPrefix:
    def test_rejected_from_header_alone(self):
        """An announced length over the cap fails before any payload
        arrives — no buffering toward a 2 GiB promise."""
        import struct
        import zlib

        header = struct.pack(">4sII", MAGIC, MAX_FRAME + 1, zlib.crc32(b""))
        decoder = FrameDecoder()
        decoder.feed(header)
        with pytest.raises(WireError, match="exceeds MAX_FRAME"):
            list(decoder.frames())

    def test_poisoned_decoder_stays_poisoned(self):
        import struct

        decoder = FrameDecoder()
        decoder.feed(struct.pack(">4sII", MAGIC, MAX_FRAME + 1, 0))
        with pytest.raises(WireError):
            list(decoder.frames())
        with pytest.raises(WireError):
            decoder.feed(b"more")
        with pytest.raises(WireError):
            list(decoder.frames())

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(1))
        frame[0] ^= 0xFF
        with pytest.raises(WireError, match="magic"):
            decode_frame(bytes(frame))


class TestCorruptionSweep:
    """Flip every byte of every golden fixture's frame: all rejected."""

    @pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.name)
    def test_single_byte_corruption_always_rejected(self, fixture):
        frame = bytearray(encode_frame(fixture.read_bytes()))
        for position in range(len(frame)):
            corrupted = bytearray(frame)
            corrupted[position] ^= 0x01
            with pytest.raises(WireError):
                decode_frame(bytes(corrupted))

    @pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.name)
    def test_single_byte_corruption_never_partially_applies(self, fixture):
        """Through the incremental decoder too: a corrupt frame yields
        zero values (not a different one), then poisons the stream."""
        frame = bytearray(encode_frame(fixture.read_bytes()))
        rng = random.Random(0xBAD)
        for position in rng.sample(range(len(frame)), min(32, len(frame))):
            corrupted = bytearray(frame)
            corrupted[position] ^= 0x80
            decoder = FrameDecoder()
            decoder.feed(bytes(corrupted))
            with pytest.raises(WireError):
                list(decoder.frames())


@pytest.fixture()
def wire_service(dec_params_toy):
    """A small live service behind the socket front-end."""
    import repro.service as svc

    bank = svc.ShardedBank.create(dec_params_toy, random.Random(1), n_shards=2)
    batcher = svc.VerificationBatcher(
        bank.params, bank.keypair, max_batch=4, seed=1, warm_tables=False
    )
    service = svc.MarketService(bank, batcher=batcher, rng=random.Random(5))
    frontend = svc.ServiceFrontend(service).start()
    yield frontend
    frontend.close()


class TestSocketFrontendDisconnects:
    def test_mid_frame_disconnect_leaves_service_alive(self, wire_service):
        """The FaultyTransport scenario over a real socket: a client
        dies mid-frame; nothing applies, the next client is served."""
        frontend = wire_service
        before = frontend.service.completions
        torn = encode_frame({"cid": 0, "kind": "balance",
                             "payload": {"aid": "sp0"}})
        with socket.create_connection(frontend.address) as sock:
            sock.sendall(torn[: len(torn) // 2])
        # the torn half-frame must not reach the service at all
        with socket.create_connection(frontend.address, timeout=10) as sock:
            write_frame(sock, {"cid": 1, "kind": "audit", "payload": {}})
            reply = read_frame(sock)
        assert reply["status"] == "OK" and reply["clean"] is True
        assert frontend.service.completions == before + 1
        assert frontend.conn_errors >= 1

    def test_mid_frame_server_eof_raises_clean_wire_error(self):
        """Client side of the same coin: reading a torn reply raises
        WireError, never hangs."""
        listener = socket.create_server(("127.0.0.1", 0))
        try:
            peer = socket.create_connection(
                listener.getsockname()[:2], timeout=10)
            victim, _ = listener.accept()
            victim.sendall(encode_frame(42)[:7])  # 7 of 12 header bytes
            victim.close()
            peer.settimeout(10)
            with pytest.raises(WireError, match="mid-frame"):
                read_frame(peer)
            peer.close()
        finally:
            listener.close()

    def test_corrupt_frame_gets_error_and_close(self, wire_service):
        frontend = wire_service
        frame = bytearray(encode_frame({"cid": 9, "kind": "audit",
                                        "payload": {}}))
        frame[-1] ^= 0xFF  # payload corruption -> checksum mismatch
        with socket.create_connection(frontend.address, timeout=10) as sock:
            sock.sendall(bytes(frame))
            reply = read_frame(sock)
            # best-effort error frame, then EOF
            assert reply is None or reply["status"] == "ERROR"
        assert frontend.service.completions == 0

    def test_oversized_announcement_costs_nothing(self, wire_service):
        import struct

        frontend = wire_service
        header = struct.pack(">4sII", MAGIC, MAX_FRAME + 1, 0)
        with socket.create_connection(frontend.address, timeout=10) as sock:
            sock.sendall(header)
            reply = read_frame(sock)
            assert reply is None or reply["status"] == "ERROR"
        # service never saw a request
        assert frontend.service.completions == 0

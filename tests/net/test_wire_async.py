"""The async read path holds the same wire contract as the blocking one.

:func:`repro.net.wire.read_frame_async` and
:meth:`~repro.net.wire.FrameDecoder.raw_frames` are the event-loop
front door's framing; this suite ports the blocking suite's
guarantees — every-byte corruption sweep over the same golden
fixtures, torn-frame delivery at every split point, oversize
rejection from the header alone, mid-frame EOF as a clean
:class:`WireError` — to the async readers.  Stream fragmentation is
driven directly through :class:`asyncio.StreamReader.feed_data`, so
every tear and every flip is deterministic.
"""

from __future__ import annotations

import asyncio
import pathlib
import random
import struct
import zlib

import pytest

from repro.net.wire import (
    HEADER_SIZE,
    MAGIC,
    MAX_FRAME,
    FrameDecoder,
    WireError,
    decode_payload,
    encode_frame,
    parse_header,
    read_frame_async,
    write_frame_async,
)

FIXTURES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "fixtures").glob("*.bin")
)


def read_all(data: bytes, *, chunks: list[int] | None = None) -> list:
    """Drive ``read_frame_async`` over *data*, optionally fragmented.

    Feeds the byte stream into a fresh :class:`asyncio.StreamReader`
    (split at *chunks* boundaries when given), EOFs it, and returns
    every frame read until clean EOF.  WireErrors propagate.
    """

    async def run() -> list:
        reader = asyncio.StreamReader()
        if chunks is None:
            reader.feed_data(data)
        else:
            offset = 0
            for size in chunks:
                reader.feed_data(data[offset:offset + size])
                offset += size
            reader.feed_data(data[offset:])
        reader.feed_eof()
        values = []
        while True:
            value = await read_frame_async(reader)
            if value is None:
                return values
            values.append(value)

    return asyncio.run(run())


class TestAsyncRoundTrip:
    @pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.name)
    def test_golden_fixtures_survive_async_read(self, fixture):
        blob = fixture.read_bytes()
        assert read_all(encode_frame(blob)) == [blob]

    def test_back_to_back_frames(self):
        # (no None value here: like read_frame, the async reader
        # reserves None for "clean EOF between frames")
        data = encode_frame(1) + encode_frame("two") + encode_frame(b"")
        assert read_all(data) == [1, "two", b""]

    def test_write_then_read_over_a_real_stream_pair(self):
        """write_frame_async -> read_frame_async over a live asyncio
        server: the two helpers interoperate on actual transports."""

        async def run():
            received = []
            done = asyncio.Event()

            async def handler(reader, writer):
                while True:
                    value = await read_frame_async(reader)
                    if value is None:
                        break
                    received.append(value)
                writer.close()
                done.set()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            await write_frame_async(writer, {"k": [1, 2]})
            await write_frame_async(writer, b"\x00" * 9)
            writer.close()
            await writer.wait_closed()
            await asyncio.wait_for(done.wait(), 10)
            server.close()
            await server.wait_closed()
            return received

        assert asyncio.run(run()) == [{"k": [1, 2]}, b"\x00" * 9]


class TestAsyncTornFrames:
    def test_every_split_point_reads_cleanly(self):
        """A frame torn at *any* byte boundary still reads exactly once
        through the async reader."""
        frame = encode_frame({"k": [1, 2, 3], "v": b"payload"})
        for split in range(len(frame) + 1):
            values = read_all(frame, chunks=[split])
            assert values == [{"k": [1, 2, 3], "v": b"payload"}], split

    def test_byte_at_a_time(self):
        frame = encode_frame([1, "x", None])
        assert read_all(frame, chunks=[1] * len(frame)) == [[1, "x", None]]

    def test_eof_mid_header_at_every_cut_is_a_wire_error(self):
        """EOF inside a frame — at any offset — raises WireError, never
        returns a value and never hangs."""
        frame = encode_frame({"a": 1})
        for cut in range(1, len(frame)):
            with pytest.raises(WireError, match="closed"):
                read_all(frame[:cut])

    def test_eof_between_frames_is_clean(self):
        data = encode_frame(0) + encode_frame(1)
        assert read_all(data) == [0, 1]


class TestAsyncOversizedPrefix:
    def test_rejected_from_header_alone(self):
        header = struct.pack(">4sII", MAGIC, MAX_FRAME + 1, zlib.crc32(b""))
        with pytest.raises(WireError, match="exceeds MAX_FRAME"):
            read_all(header)

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(1))
        frame[0] ^= 0xFF
        with pytest.raises(WireError, match="magic"):
            read_all(bytes(frame))


class TestAsyncCorruptionSweep:
    """Flip every byte of every golden fixture's frame: all rejected."""

    @pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.name)
    def test_single_byte_corruption_always_rejected(self, fixture):
        frame = bytearray(encode_frame(fixture.read_bytes()))
        for position in range(len(frame)):
            corrupted = bytearray(frame)
            corrupted[position] ^= 0x01
            with pytest.raises(WireError):
                read_all(bytes(corrupted))

    @pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.name)
    def test_corruption_rejected_when_torn_too(self, fixture):
        """Corruption plus fragmentation (the realistic failure): the
        async reader still rejects every flip, fed in two chunks."""
        frame = bytearray(encode_frame(fixture.read_bytes()))
        rng = random.Random(0xA51)
        for position in rng.sample(range(len(frame)), min(32, len(frame))):
            corrupted = bytearray(frame)
            corrupted[position] ^= 0x80
            split = rng.randrange(len(frame) + 1)
            with pytest.raises(WireError):
                read_all(bytes(corrupted), chunks=[split])


class TestRawFrames:
    """The pre-parse hook: header-validated, payload untouched."""

    def test_raw_then_decode_matches_frames(self):
        values = [{"cid": 1, "kind": "audit"}, b"blob", 17]
        stream = b"".join(encode_frame(v) for v in values)
        decoder = FrameDecoder()
        decoder.feed(stream)
        raw = list(decoder.raw_frames())
        assert [decode_payload(p, crc) for _l, crc, p in raw] == values

    def test_raw_frames_skip_crc_check(self):
        """The whole point: a corrupt payload passes raw_frames (the
        shed path never looks at it) but fails decode_payload."""
        frame = bytearray(encode_frame({"cid": 2, "kind": "deposit"}))
        frame[-1] ^= 0xFF
        decoder = FrameDecoder()
        decoder.feed(bytes(frame))
        (_length, crc, payload), = decoder.raw_frames()
        with pytest.raises(WireError, match="checksum"):
            decode_payload(payload, crc)

    def test_raw_frames_still_reject_bad_headers(self):
        decoder = FrameDecoder()
        decoder.feed(struct.pack(">4sII", b"NOPE", 4, 0))
        with pytest.raises(WireError, match="magic"):
            list(decoder.raw_frames())
        with pytest.raises(WireError):  # poisoned
            decoder.feed(b"more")

    def test_parse_header_round_trip(self):
        frame = encode_frame(b"xyz")
        length, crc = parse_header(frame[:HEADER_SIZE])
        assert length == len(frame) - HEADER_SIZE
        assert decode_payload(frame[HEADER_SIZE:], crc) == b"xyz"

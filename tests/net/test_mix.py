"""Tests for the mix-network anonymization model."""

from __future__ import annotations

import random

from repro.net.mix import MixNetwork
from repro.net.transport import Transport


def make_mix(seed=0):
    return MixNetwork(transport=Transport(), rng=random.Random(seed))


class TestBatching:
    def test_flush_delivers_everything(self):
        mix = make_mix()
        for i in range(5):
            mix.enqueue(f"sp-{i}", "MA", "report", {"i": i})
        delivered = mix.flush()
        assert len(delivered) == 5
        assert not mix.pending

    def test_flush_empty_batch(self):
        mix = make_mix()
        assert mix.flush() == []
        assert mix.observations[-1].batch_size == 0

    def test_shuffling_changes_order(self):
        """Across seeds, delivery order must vary — the anonymity property."""
        orders = set()
        for seed in range(20):
            mix = make_mix(seed)
            for i in range(6):
                mix.enqueue(f"sp-{i}", "MA", "report", i)
            mix.flush()
            orders.add(tuple(e.payload for e in mix.transport.log))
        assert len(orders) > 1

    def test_transport_still_accounts(self):
        mix = make_mix()
        mix.enqueue("sp-0", "MA", "report", b"x" * 100)
        mix.flush()
        assert mix.transport.meter.output_bytes("sp-0") > 100


class TestObserverView:
    def test_observation_records_multiset_only(self):
        """The eavesdropper sees sorted lengths, not sender order."""
        mix = make_mix()
        mix.enqueue("sp-0", "MA", "r", b"a" * 10)
        mix.enqueue("sp-1", "MA", "r", b"b" * 200)
        mix.flush()
        obs = mix.observations[-1]
        assert obs.batch_size == 2
        assert obs.message_lengths == tuple(sorted(obs.message_lengths))

    def test_equal_length_messages_indistinguishable(self):
        """When all messages have the same length the observation carries
        zero distinguishing information — the fake-coin padding goal."""
        mix_a, mix_b = make_mix(1), make_mix(2)
        for mix, senders in ((mix_a, ["x", "y"]), (mix_b, ["p", "q"])):
            for s in senders:
                mix.enqueue(s, "MA", "r", b"z" * 64)
            mix.flush()
        assert mix_a.observations[-1] == mix_b.observations[-1]

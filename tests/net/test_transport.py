"""Tests for the accounted transport."""

from __future__ import annotations

import pytest

from repro.net.codec import encode
from repro.net.transport import Transport


class TestDelivery:
    def test_returns_decoded_copy(self):
        t = Transport()
        payload = {"coins": [1, 2, 3]}
        delivered = t.send("A", "B", "test", payload)
        assert delivered == payload
        assert delivered is not payload  # a copy, not the same object

    def test_mutation_does_not_leak(self):
        t = Transport()
        payload = {"xs": [1]}
        delivered = t.send("A", "B", "test", payload)
        delivered["xs"].append(2)
        assert payload == {"xs": [1]}

    def test_unencodable_fails_loudly(self):
        t = Transport()
        with pytest.raises(TypeError):
            t.send("A", "B", "bad", object())


class TestAccounting:
    def test_meter_matches_encoding(self):
        t = Transport()
        payload = b"hello" * 100
        t.send("A", "B", "k", payload)
        assert t.meter.output_bytes("A") == len(encode(payload))
        assert t.meter.input_bytes("B") == len(encode(payload))

    def test_accumulates(self):
        t = Transport()
        t.send("A", "B", "k", 1)
        t.send("A", "B", "k", 2)
        assert t.meter.messages == 2
        assert t.meter.total_bytes() == t.meter.output_bytes("A")

    def test_multiple_parties(self):
        t = Transport()
        t.send("A", "B", "k", b"x" * 10)
        t.send("B", "C", "k", b"y" * 20)
        assert t.meter.output_bytes("B") > 0
        assert t.meter.input_bytes("C") == t.meter.output_bytes("B")


class TestLog:
    def test_envelopes_recorded_in_order(self):
        t = Transport()
        t.send("A", "B", "first", 1)
        t.send("B", "A", "second", 2)
        assert [e.kind for e in t.log] == ["first", "second"]
        assert [e.seq for e in t.log] == [0, 1]

    def test_messages_between(self):
        t = Transport()
        t.send("A", "B", "k", 1)
        t.send("B", "A", "k", 2)
        t.send("A", "C", "k", 3)
        assert len(t.messages_between("A", "B")) == 2
        assert len(t.messages_between("A", "C")) == 1

    def test_observer_called(self):
        t = Transport()
        seen = []
        t.add_observer(lambda env: seen.append(env.kind))
        t.send("A", "B", "watched", 1)
        assert seen == ["watched"]

    def test_reset(self):
        t = Transport()
        t.send("A", "B", "k", 1)
        t.reset()
        assert not t.log and t.meter.total_bytes() == 0
        t.send("A", "B", "k", 1)
        assert t.log[0].seq == 0

"""Unit + property tests for the canonical codec."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.net  # noqa: F401 — registers wire types
from repro.ecash.tree import NodeId
from repro.net.codec import codec_dataclass, decode, encode, encoded_size, register

# recursive strategy over the codec's type universe
scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(10**40), max_value=10**40)
    | st.binary(max_size=64)
    | st.text(max_size=32)
)
values = st.recursive(
    scalars,
    lambda children: st.lists(children, max_size=4)
    | st.tuples(children, children)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


class TestRoundTrip:
    @given(values)
    @settings(max_examples=150)
    def test_roundtrip(self, value):
        assert decode(encode(value)) == value

    @given(values)
    @settings(max_examples=50)
    def test_canonical(self, value):
        assert encode(value) == encode(value)

    def test_big_integers(self):
        big = 1 << 4096
        assert decode(encode(big)) == big
        assert decode(encode(-big)) == -big

    def test_dict_key_order_irrelevant(self):
        assert encode({"a": 1, "b": 2}) == encode({"b": 2, "a": 1})

    def test_list_tuple_distinguished(self):
        assert decode(encode([1, 2])) == [1, 2]
        assert decode(encode((1, 2))) == (1, 2)
        assert encode([1]) != encode((1,))

    def test_encoded_size(self):
        assert encoded_size(b"1234") == len(encode(b"1234"))


class TestErrorHandling:
    def test_unencodable_type(self):
        with pytest.raises(TypeError):
            encode(object())

    def test_non_str_dict_key(self):
        with pytest.raises(TypeError):
            encode({1: "a"})

    def test_trailing_garbage(self):
        with pytest.raises(ValueError):
            decode(encode(1) + b"\x00")

    def test_truncated(self):
        blob = encode(b"hello world")
        with pytest.raises(ValueError):
            decode(blob[:-3])

    def test_unknown_tag(self):
        with pytest.raises(ValueError):
            decode(b"\xff")

    def test_empty(self):
        with pytest.raises(ValueError):
            decode(b"")


class TestDataclassSupport:
    def test_registered_roundtrip(self):
        node = NodeId(3, 5)
        assert decode(encode(node)) == node

    def test_nested_registered(self):
        payload = {"nodes": [NodeId(1, 0), NodeId(2, 3)], "tag": b"x"}
        assert decode(encode(payload)) == payload

    def test_unregistered_dataclass_rejected(self):
        @dataclasses.dataclass
        class Unregistered:
            x: int

        with pytest.raises(TypeError):
            encode(Unregistered(1))

    def test_register_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            register(int)

    def test_register_idempotent(self):
        register(NodeId)  # already registered by repro.net
        register(NodeId)

    def test_register_name_collision_rejected(self):
        @codec_dataclass
        @dataclasses.dataclass
        class Collider:
            x: int

        @dataclasses.dataclass
        class Other:
            x: int

        with pytest.raises(ValueError):
            register(Other, name=f"{Collider.__module__}.{Collider.__qualname__}")

    def test_unknown_tag_name_rejected(self):
        blob = bytearray(encode(NodeId(0, 0)))
        # corrupt the registered tag name
        idx = bytes(blob).find(b"NodeId")
        blob[idx : idx + 6] = b"NoSuch"
        with pytest.raises(ValueError):
            decode(bytes(blob))


class TestWireTypes:
    def test_spend_token_like_structures(self, dec_params, rng):
        """All registered protocol types round-trip (smoke via SpendToken
        covered in ecash tests; here: points and proofs)."""
        from repro.crypto.pairing.curve import Point
        from repro.crypto.pairing.field import Fp2

        p = 10007
        x = Fp2(3, 4, p)
        assert decode(encode(x)) == x
        pt = Point(Fp2(1, 0, p), Fp2(2, 0, p), p, is_infinity=True)
        assert decode(encode(pt)) == pt


class TestFuzzing:
    """decode() must reject garbage with ValueError — never crash oddly."""

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=200)
    def test_random_bytes_never_crash(self, blob):
        try:
            decode(blob)
        except ValueError:
            pass  # the only acceptable failure mode

    @given(values, st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=255))
    @settings(max_examples=100)
    def test_single_byte_corruption_never_crashes(self, value, pos, new_byte):
        blob = bytearray(encode(value))
        if not blob:
            return
        blob[pos % len(blob)] = new_byte
        try:
            decode(bytes(blob))
        except ValueError:
            pass

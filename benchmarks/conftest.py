"""Shared fixtures for the paper-reproduction benchmarks.

Run with::

    pytest benchmarks/ --benchmark-only

Each module regenerates one table or figure of the paper (see
DESIGN.md §4 and EXPERIMENTS.md).  Parameter sizes are chosen so the
whole suite completes on a laptop in minutes; the *shapes* of the
curves (growth with L, node depth, rounds; PPMSdec ≫ PPMSpbs) are what
reproduce the paper, not the absolute milliseconds.
"""

from __future__ import annotations

import random

import pytest

import repro.net  # noqa: F401 — codec registrations
from repro.ecash.dec import setup


#: RSA modulus for protocol benches (paper-era realistic: 1024)
BENCH_RSA_BITS = 1024


@pytest.fixture(scope="session")
def bench_rng():
    return random.Random(0xBEEC)


@pytest.fixture(scope="session")
def params_by_level(bench_rng):
    """DEC parameter sets for a range of tree levels (precomputed chains).

    Cached per session: Fig. 3/4 sweep node levels inside these.
    """
    cache = {}

    def get(level: int, *, edge_rounds: int = 8):
        key = (level, edge_rounds)
        if key not in cache:
            cache[key] = setup(
                level,
                bench_rng,
                security_bits=48,
                edge_rounds=edge_rounds,
                real_pairing=True,
            )
        return cache[key]

    return get

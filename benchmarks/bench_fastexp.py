"""Fixed-base combs and multi-exponentiation: micro + end-to-end effect.

The acceptance experiments for :mod:`repro.crypto.fastexp`:

* **fixed-base micro** — at paper parameters (1024-bit modulus, 160-bit
  exponents) a Lim–Lee comb table must beat naive ``pow`` by at least
  **2×** on the same exponent stream;
* **multi-exp micro** — Straus interleaving over several bases must
  beat the product-of-``pow`` loop it replaces;
* **service end-to-end** — the sharded+batched deposit replay of
  :mod:`benchmarks.bench_service_throughput` must gain at least **15%**
  throughput with the tables enabled (the PR 1 code path is exactly
  the tables-disabled configuration);
* **node-time end-to-end** — the Fig. 3 spend+verify step is timed
  with tables on vs off and the ratio recorded.

All measured numbers land in ``benchmark.extra_info`` so that
``make fastexp-bench`` persists them in ``BENCH_fastexp.json``.

Setting ``REPRO_BENCH_SMOKE=1`` shrinks the workloads and turns the
speedup assertions into recorded-only numbers — the CI smoke step uses
this to check the benches *run* without gating on a loaded machine.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.crypto import fastexp
from repro.crypto.cl_sig import cl_blind_issue, cl_keygen
from repro.crypto.fastexp import FixedBaseTable
from repro.ecash.dec import begin_withdrawal, finish_withdrawal, setup
from repro.ecash.spend import create_spend, verify_spend
from repro.ecash.tree import NodeId
from repro.service import (
    AdmissionController,
    MarketService,
    ShardedBank,
    VerificationBatcher,
)
from repro.service.loadgen import mint_deposit_traffic, run_trace

#: reduced-parameter mode for CI: still runs every bench, skips the
#: speedup gates (shared runners are too noisy to assert ratios on)
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

# Paper parameters: 1024-bit modulus, 160-bit exponents.  Generating a
# fresh 1024-bit safe prime takes minutes; this is the well-known RFC
# 2409 Oakley Group 2 safe prime (also pinned in tests/crypto).
P1024 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE65381FFFFFFFFFFFFFFFF",
    16,
)
Q1024 = (P1024 - 1) // 2
G1024 = 4  # quadratic residue -> generates the order-q subgroup

EXP_BITS = 160
N_EXPONENTS = 16 if SMOKE else 64
COMB_REQUIRED_SPEEDUP = 2.0

N_DEPOSITS = 16 if SMOKE else 64
SECURITY_BITS = 64
SERVICE_REQUIRED_GAIN = 1.15


def _exponents(rng: random.Random, n: int, bits: int = EXP_BITS) -> list[int]:
    return [rng.getrandbits(bits) | (1 << (bits - 1)) for _ in range(n)]


def _best_of(fn, rounds: int = 3) -> float:
    """Min wall seconds over *rounds* calls of *fn* (noise floor)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(autouse=True)
def _default_fastexp_config():
    """Each bench starts from (and restores) the shipped defaults."""
    previous = fastexp.configure()
    fastexp.reset()
    yield
    fastexp.configure(**previous)
    fastexp.reset()


def test_fixed_base_comb_2x_over_pow(benchmark, bench_rng):
    """Acceptance: comb ≥ 2× naive ``pow`` at 1024-bit/160-bit."""
    exps = _exponents(bench_rng, N_EXPONENTS)
    table = FixedBaseTable(G1024, P1024, bits=EXP_BITS, order=Q1024)

    naive_wall = _best_of(lambda: [pow(G1024, e, P1024) for e in exps])
    assert [table.exp(e) for e in exps] == [pow(G1024, e, P1024) for e in exps]

    benchmark.pedantic(lambda: [table.exp(e) for e in exps],
                       rounds=3, iterations=1)
    comb_wall = benchmark.stats.stats.min
    speedup = naive_wall / comb_wall
    benchmark.extra_info.update(
        modulus_bits=P1024.bit_length(),
        exponent_bits=EXP_BITS,
        exponents=N_EXPONENTS,
        teeth=table.teeth,
        splits=table.splits,
        table_entries=table.table_size,
        naive_us_per_exp=round(naive_wall / N_EXPONENTS * 1e6, 1),
        comb_us_per_exp=round(comb_wall / N_EXPONENTS * 1e6, 1),
        speedup=round(speedup, 3),
        smoke=SMOKE,
    )
    if not SMOKE:
        assert speedup >= COMB_REQUIRED_SPEEDUP, (
            f"comb reached only {speedup:.2f}x over pow "
            f"(required {COMB_REQUIRED_SPEEDUP}x)"
        )


def test_multi_exp_over_pow_loop(benchmark, bench_rng):
    """Straus interleaving vs the product-of-pow loop it replaces."""
    n_bases = 4 if SMOKE else 8
    rounds_per_call = 4
    bases = [pow(G1024, bench_rng.randrange(1, Q1024), P1024)
             for _ in range(n_bases)]
    streams = [_exponents(bench_rng, n_bases) for _ in range(rounds_per_call)]

    def naive():
        out = []
        for exps in streams:
            acc = 1
            for b, e in zip(bases, exps):
                acc = acc * pow(b, e, P1024) % P1024
            out.append(acc)
        return out

    def straus():
        return [fastexp.multi_exp(bases, exps, P1024) for exps in streams]

    assert naive() == straus()
    naive_wall = _best_of(naive)
    benchmark.pedantic(straus, rounds=3, iterations=1)
    straus_wall = benchmark.stats.stats.min
    speedup = naive_wall / straus_wall
    benchmark.extra_info.update(
        modulus_bits=P1024.bit_length(),
        exponent_bits=EXP_BITS,
        bases=n_bases,
        products_per_call=rounds_per_call,
        naive_ms_per_product=round(naive_wall / rounds_per_call * 1e3, 3),
        straus_ms_per_product=round(straus_wall / rounds_per_call * 1e3, 3),
        speedup=round(speedup, 3),
        smoke=SMOKE,
    )
    if not SMOKE:
        assert speedup > 1.0, (
            f"multi-exp slower than the pow loop ({speedup:.2f}x)"
        )


@pytest.fixture(scope="module")
def service_workload(bench_rng):
    """Same minted deposit workload as bench_service_throughput."""
    params = setup(3, bench_rng, security_bits=SECURITY_BITS, edge_rounds=6)
    keypair = cl_keygen(params.backend, bench_rng)
    mint_bank = ShardedBank(params, keypair, random.Random(1), n_shards=1)
    requests = mint_deposit_traffic(
        MarketService(mint_bank),
        random.Random(2),
        n_accounts=8,
        n_deposits=N_DEPOSITS,
        node_level=1,
    )
    arrivals = [0.002 * i for i in range(len(requests))]
    return params, keypair, mint_bank.merged(), requests, arrivals


def _replay(workload, *, warm_tables: bool) -> float:
    """Wall seconds to serve the workload, batched config (PR 1 shape)."""
    params, keypair, book, requests, arrivals = workload
    bank = ShardedBank(params, keypair, random.Random(3), n_shards=4)
    for aid, balance in book.accounts.items():
        bank.open_account(aid, balance)
    for aid in book.withdrawals:
        bank.account_home(aid).withdrawals.append(aid)
    batcher = VerificationBatcher(
        params, keypair, max_batch=N_DEPOSITS, processes=1,
        pairing_batch=True, seed=5, warm_tables=warm_tables,
    )
    service = MarketService(bank, batcher=batcher,
                            admission=AdmissionController())
    report = run_trace(service, requests, arrivals)
    assert report.ok == len(requests), report
    return report.wall_elapsed


def test_service_throughput_gain_with_tables(benchmark, service_workload):
    """Acceptance: deposit throughput ≥ 15% over the tables-off path.

    Tables off (``REPRO_FASTEXP`` disabled, no warm-up) is exactly the
    PR 1 verification code path; tables on is the shipped default.
    """
    disabled = fastexp.configure(enabled=False)
    fastexp.reset()
    try:
        off_wall = min(_replay(service_workload, warm_tables=False)
                       for _ in range(2))
    finally:
        fastexp.configure(**disabled)

    fastexp.reset()
    benchmark.pedantic(
        lambda: _replay(service_workload, warm_tables=True),
        rounds=2, iterations=1,
    )
    on_wall = benchmark.stats.stats.min
    gain = off_wall / on_wall
    benchmark.extra_info.update(
        deposits=N_DEPOSITS,
        security_bits=SECURITY_BITS,
        tables_off_wall_s=round(off_wall, 4),
        tables_on_wall_s=round(on_wall, 4),
        tables_off_throughput_rps=round(N_DEPOSITS / off_wall, 2),
        tables_on_throughput_rps=round(N_DEPOSITS / on_wall, 2),
        throughput_gain=round(gain, 3),
        cache=fastexp.stats(),
        smoke=SMOKE,
    )
    if not SMOKE:
        assert gain >= SERVICE_REQUIRED_GAIN, (
            f"tables gained only {gain:.2f}x deposit throughput "
            f"(required {SERVICE_REQUIRED_GAIN}x)"
        )


def test_node_spend_verify_with_tables(benchmark, params_by_level):
    """Fig. 3 step (L=3, Ni=2) with tables on vs off; ratio recorded."""
    level, node_level = (2, 1) if SMOKE else (3, 2)
    params = params_by_level(level)
    rng = random.Random(level * 100 + node_level)
    bank_kp = cl_keygen(params.backend, rng)
    secret, request = begin_withdrawal(params, rng)
    signature = cl_blind_issue(params.backend, bank_kp, request, rng)
    coin = finish_withdrawal(params, bank_kp.public, secret, signature)
    node = NodeId(node_level, 0)

    def spend_and_verify():
        token = create_spend(
            params, bank_kp.public, coin.secret, coin.signature, node, rng
        )
        assert verify_spend(params, bank_kp.public, token)

    disabled = fastexp.configure(enabled=False)
    fastexp.reset()
    try:
        off_wall = _best_of(spend_and_verify, rounds=2)
    finally:
        fastexp.configure(**disabled)

    fastexp.reset()
    spend_and_verify()  # promote/build tables before timing
    benchmark.pedantic(spend_and_verify, rounds=3, iterations=1)
    on_wall = benchmark.stats.stats.min
    benchmark.extra_info.update(
        level=level,
        node_level=node_level,
        tables_off_ms=round(off_wall * 1e3, 2),
        tables_on_ms=round(on_wall * 1e3, 2),
        node_time_ratio=round(off_wall / on_wall, 3),
        smoke=SMOKE,
    )

"""Fig. 2 — DEC setup executing time vs tree level L.

Paper: "setup executing time is especially high when the level reaches
7, the reason is obvious too, for computing the prime chain."  The
dominant cost is the online first-kind Cunningham-chain search, whose
expected sample count grows ~(ln N / 2)^length.

Two measurement series:

* ``test_setup_with_chain_search`` — the paper's curve: full
  ``Setup(DEC)`` including the randomized chain search.  At our chain
  bit-size the explosion starts around length 5–7, exactly like the
  paper's level-7 wall (their chain elements were larger).
* ``test_setup_precomputed_chain`` — the paper's deployment answer
  ("we separate PPMSdec's setup stage from online executing"): setup
  from the tabulated chain, flat and fast at every level — the inset
  of Fig. 2.

Search *effort* (candidates tried) is also recorded as a machine-
independent proxy via ``test_chain_search_attempts``.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.cunningham import find_chain_with_stats
from repro.ecash.dec import setup

# chain element size for the online search; small enough that the
# expensive lengths stay minutes-not-hours, large enough to show growth
SEARCH_BITS = 12
SEARCH_LEVELS = [0, 1, 2, 3, 4, 5]
PRECOMPUTED_LEVELS = [0, 2, 4, 6, 8, 10, 12]


@pytest.mark.parametrize("level", SEARCH_LEVELS)
def test_setup_with_chain_search(benchmark, level):
    """Fig. 2 main curve: Setup(DEC) including the chain search."""
    rng = random.Random(1000 + level)
    benchmark.pedantic(
        lambda: setup(level, rng, use_known_chain=False, chain_bits=SEARCH_BITS,
                      security_bits=32, real_pairing=False),
        rounds=3 if level <= 3 else 1,
        iterations=1,
    )


@pytest.mark.parametrize("level", PRECOMPUTED_LEVELS)
def test_setup_precomputed_chain(benchmark, level):
    """Fig. 2 inset / offline mode: setup from the tabulated chain."""
    rng = random.Random(2000 + level)
    benchmark.pedantic(
        lambda: setup(level, rng, use_known_chain=True, security_bits=32,
                      real_pairing=False),
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize("length", [1, 2, 3, 4, 5, 6])
def test_chain_search_attempts(benchmark, length):
    """Machine-independent effort proxy: candidates per successful search."""
    rng = random.Random(3000 + length)

    def run():
        _, attempts = find_chain_with_stats(length, SEARCH_BITS, rng)
        return attempts

    attempts = benchmark.pedantic(run, rounds=3 if length <= 4 else 1, iterations=1)
    benchmark.extra_info["attempts_last_run"] = attempts

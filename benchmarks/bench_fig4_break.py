"""Fig. 4 — cash-breaking time per breaking-node level at fixed L = 12.

Paper: "we fix level L = 12, and use generated parameters and groups to
calculate every child nodes and their path values to root.  With a
fixed level, the deeper a child node is in the tree, the higher the
cost" (their range: ~1 → ~2 ms).

The measured operation is the paper's: given the coin secret, derive
the key chain (the node's "path value to root") for a node at each
depth — one modular exponentiation per tower storey, so cost is linear
in depth with a small dynamic range, exactly the Fig. 4 shape.

The module also carries the DESIGN.md §6 *ablation*: coin counts and
denomination-coverage of the three break strategies, printed as
``extra_info`` on the byte-level benchmarks.
"""

from __future__ import annotations

import random

import pytest

from repro.core.cashbreak import BREAK_FN_BY_NAME, coverage
from repro.ecash.tree import NodeId, derive_key_chain

LEVEL = 12
NODE_LEVELS = list(range(0, LEVEL + 1, 2)) + [LEVEL - 1]


@pytest.fixture(scope="module")
def tower12(bench_rng):
    from repro.crypto.groups import build_tower

    return build_tower(LEVEL, bench_rng)


@pytest.mark.parametrize("node_level", sorted(set(NODE_LEVELS)))
def test_break_node_path_derivation(benchmark, tower12, node_level):
    """Fig. 4 series: path-value derivation cost vs breaking-node depth."""
    rng = random.Random(node_level)
    secret = rng.randrange(1, tower12.group(0).q)
    node = NodeId(node_level, (1 << node_level) - 1)

    benchmark(lambda: derive_key_chain(tower12, secret, node))


@pytest.mark.parametrize("strategy", ["unitary", "pcba", "epcba"])
def test_break_plan_computation(benchmark, strategy):
    """Ablation: the break-plan computation itself (Algorithms 2-3) —
    trivially cheap next to the crypto, as the paper assumes."""
    break_fn = BREAK_FN_BY_NAME[strategy]
    amounts = list(range(1, (1 << LEVEL) + 1, 257))

    def run():
        return [break_fn(w, LEVEL) for w in amounts]

    plans = benchmark(run)
    coins = sum(sum(1 for c in plan if c) for plan in plans)
    benchmark.extra_info["mean_coins_per_payment"] = round(coins / len(plans), 2)


@pytest.mark.parametrize("strategy", ["unitary", "pcba", "epcba"])
def test_break_coverage_ablation(benchmark, strategy):
    """Ablation: denomination-coverage (privacy) per strategy at L=8.

    unitary covers all of [1, w]; EPCBA ≥ PCBA.  The mean coverage size
    lands in extra_info so the ablation table can be read off the
    benchmark output.
    """
    level = 8  # full [1, 2^12] coverage sweeps are combinatorial; 2^8 suffices
    break_fn = BREAK_FN_BY_NAME[strategy]
    amounts = list(range(1, (1 << level) + 1, 17))

    def run():
        return [len(coverage(break_fn(w, level))) for w in amounts]

    sizes = benchmark(run)
    benchmark.extra_info["mean_coverage"] = round(sum(sizes) / len(sizes), 1)

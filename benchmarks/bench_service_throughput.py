"""Service-level deposit throughput: sharded+batched vs batch-size-1.

The acceptance experiment for :mod:`repro.service`: the same minted
deposit workload is replayed through two market-service
configurations —

* **baseline** — one shard, ``max_batch=1``, per-token
  :func:`~repro.ecash.spend.verify_spend` (5 pairings per token);
* **batched** — four shards, ``max_batch=64``,
  :func:`~repro.ecash.batch.batch_verify_spends` (4 pairings per batch
  plus 2 per token, with shared-window multi-exponentiation).

The speedup, both wall times and the achieved throughputs are recorded
in ``benchmark.extra_info`` (landing in ``--benchmark-json`` output),
and the batched configuration must be at least **2×** the baseline.

A companion (non-timed) overload run drives the batched service past
its admission bound with guaranteed double-spend replays: the service
must shed with explicit ``BUSY`` replies, admit **zero**
double-deposits, and still pass the cross-shard audit.

The fixed-base/Miller tables of :mod:`repro.crypto.fastexp` are
**disabled** for every timed replay here: they speed up the per-token
baseline even more than the batched path (5 pairings per token all
hit the Miller cache), which would confound the variable this bench
isolates — batching.  The tables' own end-to-end effect is measured
by :mod:`benchmarks.bench_fastexp`.
"""

from __future__ import annotations

import os
import random
import time

import pytest

import repro.obs as obs
from repro.crypto import fastexp
from repro.crypto.cl_sig import cl_keygen
from repro.ecash.dec import setup
from repro.service import (
    AdmissionController,
    MarketService,
    ShardedBank,
    VerificationBatcher,
    make_backend,
)
from repro.service.loadgen import mint_deposit_traffic, run_trace

#: deposits per replay; also the batched configuration's batch size
N_DEPOSITS = 64
#: pairing subgroup size — large enough that pairing cost (what
#: batching amortizes) dominates the sigma-protocol bookkeeping
SECURITY_BITS = 64
REQUIRED_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def service_workload(bench_rng):
    """One minted deposit workload, shared by every configuration.

    Tokens bind to the bank keypair, so both configurations are built
    around the same keypair and the same pre-funded account book.
    """
    params = setup(3, bench_rng, security_bits=SECURITY_BITS, edge_rounds=6)
    keypair = cl_keygen(params.backend, bench_rng)
    mint_bank = ShardedBank(params, keypair, random.Random(1), n_shards=1)
    requests = mint_deposit_traffic(
        MarketService(mint_bank),
        random.Random(2),
        n_accounts=8,
        n_deposits=N_DEPOSITS,
        node_level=1,
    )
    arrivals = [0.002 * i for i in range(len(requests))]
    return params, keypair, mint_bank.merged(), requests, arrivals


def _make_service(workload, *, n_shards, max_batch, pairing_batch,
                  admission=None, telemetry=None, backend=None) -> MarketService:
    params, keypair, book, _, _ = workload
    bank = ShardedBank(params, keypair, random.Random(3), n_shards=n_shards)
    for aid, balance in book.accounts.items():
        bank.open_account(aid, balance)
    for aid in book.withdrawals:
        bank.account_home(aid).withdrawals.append(aid)
    batcher = VerificationBatcher(
        params, keypair, max_batch=max_batch, processes=1,
        pairing_batch=pairing_batch, seed=5, warm_tables=False,
        backend=backend,
    )
    return MarketService(
        bank, batcher=batcher,
        admission=admission if admission is not None else AdmissionController(),
        telemetry=telemetry,
    )


def _replay(workload, *, telemetry=None, **config) -> float:
    """Wall seconds to serve the whole workload under *config*.

    Fast-exp tables off for the timed region — see the module
    docstring.
    """
    _, _, _, requests, arrivals = workload
    previous = fastexp.configure(enabled=False)
    fastexp.reset()
    try:
        service = _make_service(workload, telemetry=telemetry, **config)
        report = run_trace(service, requests, arrivals)
    finally:
        fastexp.configure(**previous)
        fastexp.reset()
    assert report.ok == len(requests), report
    return report.wall_elapsed


BASELINE = dict(n_shards=1, max_batch=1, pairing_batch=False)
BATCHED = dict(n_shards=4, max_batch=N_DEPOSITS, pairing_batch=True)


def test_single_shard_batch1_deposits(benchmark, service_workload):
    wall = benchmark.pedantic(
        lambda: _replay(service_workload, **BASELINE), rounds=2, iterations=1
    )
    benchmark.extra_info.update(BASELINE, deposits=N_DEPOSITS)


def test_sharded_batched_deposits_2x(benchmark, service_workload):
    """The acceptance assertion: batched multi-shard ≥ 2× batch-size-1."""
    baseline_wall = min(_replay(service_workload, **BASELINE) for _ in range(2))
    benchmark.pedantic(
        lambda: _replay(service_workload, **BATCHED), rounds=2, iterations=1
    )
    batched_wall = benchmark.stats.stats.min
    speedup = baseline_wall / batched_wall
    benchmark.extra_info.update(
        BATCHED,
        deposits=N_DEPOSITS,
        baseline_wall_s=round(baseline_wall, 4),
        batched_wall_s=round(batched_wall, 4),
        baseline_throughput_rps=round(N_DEPOSITS / baseline_wall, 2),
        batched_throughput_rps=round(N_DEPOSITS / batched_wall, 2),
        speedup=round(speedup, 3),
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"batched configuration reached only {speedup:.2f}x over "
        f"single-shard batch-1 (required {REQUIRED_SPEEDUP}x)"
    )


#: worker counts for the scaling curve; the 4-vs-1 ratio is asserted
WORKER_COUNTS = (1, 2, 4)
#: required verify-throughput ratio, 4 workers vs 1 (multicore hosts)
REQUIRED_WORKER_SPEEDUP = 2.0


def test_worker_scaling_curve(benchmark, service_workload):
    """Process-pool scaling: deposit throughput at 1/2/4 workers.

    Verification is pure bigint arithmetic dispatched through
    :func:`repro.service.make_backend`, so on a multicore host four
    workers must clear **2×** the single-worker throughput.  The
    assertion is gated on ``os.cpu_count() >= 4`` — on smaller hosts
    (CI runners included) the curve is still measured and recorded in
    ``extra_info``, it just cannot be expected to scale.  Pools are
    spawned (and their tables warmed) *outside* the timed region:
    steady-state throughput is the quantity, not cold start.
    """
    params, keypair, _, requests, _ = service_workload
    previous = fastexp.configure(enabled=False)
    fastexp.reset()
    walls: dict[int, float] = {}
    try:
        for n in WORKER_COUNTS:
            backend = make_backend(params, keypair.public, processes=n)
            try:
                if getattr(backend, "workers", 1) != n and n > 1:
                    pytest.skip(f"host cannot spawn a {n}-process pool")
                if n == max(WORKER_COUNTS):
                    last = benchmark.pedantic(
                        lambda: _replay(service_workload, backend=backend,
                                        **BATCHED),
                        rounds=2, iterations=1,
                    )
                    walls[n] = (benchmark.stats.stats.min
                                if benchmark.stats is not None else last)
                else:
                    walls[n] = min(
                        _replay(service_workload, backend=backend, **BATCHED)
                        for _ in range(2)
                    )
            finally:
                backend.close()
    finally:
        fastexp.configure(**previous)
        fastexp.reset()

    curve = {
        f"throughput_rps_{n}w": round(N_DEPOSITS / wall, 2)
        for n, wall in walls.items()
    }
    speedup_4v1 = walls[1] / walls[max(WORKER_COUNTS)]
    benchmark.extra_info.update(
        BATCHED, deposits=N_DEPOSITS, cpu_count=os.cpu_count(),
        worker_counts=list(WORKER_COUNTS),
        speedup_4v1=round(speedup_4v1, 3), **curve,
    )
    if (os.cpu_count() or 1) >= max(WORKER_COUNTS):
        assert speedup_4v1 >= REQUIRED_WORKER_SPEEDUP, (
            f"4-worker pool reached only {speedup_4v1:.2f}x over one "
            f"worker on a {os.cpu_count()}-core host "
            f"(required {REQUIRED_WORKER_SPEEDUP}x)"
        )


#: tracing-on may cost at most this fraction over toggles-off
MAX_TRACING_OVERHEAD = 0.03


def test_tracing_overhead_under_three_percent(benchmark, service_workload):
    """Observability acceptance: full tracing+metrics ≤ 3% wall overhead.

    The same batched replay runs twice — with the module-default
    *disabled* telemetry (the toggles-off path every other benchmark in
    this file times, so its cost is already bounded by the 2× speedup
    assertion above) and with a fully enabled stack sized to hold every
    span.  Min-of-rounds on both sides damps scheduler noise before the
    ratio is taken.
    """
    plain_wall = min(_replay(service_workload, **BATCHED) for _ in range(3))

    def traced_run() -> float:
        telemetry = obs.Telemetry.enabled(capacity=65536)
        return _replay(service_workload, telemetry=telemetry, **BATCHED)

    benchmark.pedantic(traced_run, rounds=3, iterations=1)
    traced_wall = benchmark.stats.stats.min
    overhead = traced_wall / plain_wall - 1.0
    benchmark.extra_info.update(
        BATCHED,
        deposits=N_DEPOSITS,
        plain_wall_s=round(plain_wall, 4),
        traced_wall_s=round(traced_wall, 4),
        tracing_overhead=round(overhead, 4),
    )
    assert overhead <= MAX_TRACING_OVERHEAD, (
        f"tracing-on replay cost {overhead:.1%} over toggles-off "
        f"(budget {MAX_TRACING_OVERHEAD:.0%})"
    )


def test_overload_sheds_busy_and_admits_no_double_deposit(benchmark, service_workload):
    """Overload: replays past the admission bound shed as BUSY; every
    admitted replay is REJECTED; the cross-shard audit stays clean."""
    _, _, _, requests, _ = service_workload

    def overload_run():
        service = _make_service(
            service_workload,
            **BATCHED,
            admission=AdmissionController(max_queue_depth=4),
        )
        # phase 1: the fresh workload, paced (queue never hits the bound)
        for request in requests:
            service.submit(request.sender, request.kind, request.payload)
            service.step(force=True)
        assert service.shed == 0

        # phase 2: replay every token in one burst — all double spends
        statuses: list[str] = []
        service.add_completion_observer(lambda c: statuses.append(c.status))
        for request in requests:
            service.submit(request.sender, request.kind, request.payload)
        service.drain()
        return service, statuses

    service, statuses = benchmark.pedantic(overload_run, rounds=1, iterations=1)

    assert statuses.count("BUSY") == service.shed > 0
    assert statuses.count("REJECTED") == len(requests) - statuses.count("BUSY")
    assert "OK" not in statuses  # zero double-deposits admitted
    report = service.bank.audit()
    assert report.clean, report.findings
    benchmark.extra_info.update(
        replayed=len(requests),
        shed_busy=statuses.count("BUSY"),
        rejected_double_spends=statuses.count("REJECTED"),
        double_deposits_admitted=statuses.count("OK"),
        audit_clean=report.clean,
    )

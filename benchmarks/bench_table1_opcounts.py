"""Table I — core-operation complexity per party and mechanism.

Paper's claimed rows (at minimum level and node index):

    PPMSdec:  JO = (8+i)ZKP + 4Enc + 1Dec + 1H   SP = 4Dec   MA = 1Enc
    PPMSpbs:  JO = 2Enc + 1H                     SP = 2Dec + 3H
              MA = 1Dec + 2H

This bench runs each mechanism once at the paper's scenario (minimal
tree level / node index for PPMSdec; one unitary round for PPMSpbs),
collects the instrumented counts, prints the measured table next to
the paper's, and asserts the *structural* claims that define the
mechanisms: ZKP count linear in node depth for PPMSdec's JO, zero ZKPs
anywhere in PPMSpbs, and verification-heavy SPs.
"""

from __future__ import annotations

import random

import pytest

from repro.core.ppms_dec import PPMSdecSession
from repro.core.ppms_pbs import PPMSpbsSession
from repro.metrics.opcount import OpCounter, format_table

from benchmarks.conftest import BENCH_RSA_BITS

PAPER_TABLE1 = {
    "PPMSdec": {"JO": "(8+i)ZKP+4Enc+1Dec+1H", "SP": "4Dec", "MA": "1Enc"},
    "PPMSpbs": {"JO": "2Enc+1H", "SP": "2Dec+3H", "MA": "1Dec+2H"},
}


def _run_dec(params, payment: int, seed: int) -> OpCounter:
    rng = random.Random(seed)
    session = PPMSdecSession(params, rng, rsa_bits=BENCH_RSA_BITS, break_algorithm="pcba")
    jo = session.new_job_owner("jo", funds=1 << params.tree_level)
    sp = session.new_participant("sp")
    session.run_job(jo, [sp], payment=payment)
    return session.counter


def _run_pbs(seed: int) -> OpCounter:
    rng = random.Random(seed)
    session = PPMSpbsSession(rng, rsa_bits=BENCH_RSA_BITS)
    jo = session.new_job_owner(funds=1)
    sp = session.new_participant()
    session.run_job(jo, [sp])
    return session.counter


def test_table1_report(benchmark, params_by_level, capsys):
    """Regenerate Table I: measured counts vs the paper's claims."""
    params = params_by_level(2)
    counter_dec = _run_dec(params, payment=1 << params.tree_level, seed=1)  # root node, i=0
    counter_pbs = _run_pbs(seed=2)

    lines = ["", "=== Table I: core operation complexity (measured) ==="]
    for name, counter in (("PPMSdec", counter_dec), ("PPMSpbs", counter_pbs)):
        lines.append(format_table(counter, ["JO", "SP", "MA"], title=f"[{name}]"))
        lines.append(f"paper claims: {PAPER_TABLE1[name]}")
    report = "\n".join(lines)
    with capsys.disabled():
        print(report)

    benchmark.pedantic(lambda: _run_pbs(seed=3), rounds=1, iterations=1)

    # structural claims
    assert counter_dec.get("JO", "ZKP") > 0
    assert counter_pbs.get("JO", "ZKP") == 0
    assert counter_pbs.get("SP", "ZKP") == 0
    assert counter_pbs.get("MA", "ZKP") == 0


def test_dec_jo_zkp_linear_in_depth(benchmark, params_by_level):
    """The "(8+i)" structure: JO's ZKP count grows by a constant per
    extra level of node depth."""
    params = params_by_level(4)
    top = 1 << params.tree_level
    counts = {}
    for payment, depth in ((top, 0), (top // 2, 1), (top // 4, 2), (top // 8, 3)):
        counts[depth] = _run_dec(params, payment, seed=10 + depth).get("JO", "ZKP")
    deltas = [counts[d + 1] - counts[d] for d in range(3)]
    assert all(d == deltas[0] for d in deltas), f"non-linear ZKP growth: {counts}"
    assert deltas[0] >= 1
    benchmark.extra_info["jo_zkp_by_depth"] = counts
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.parametrize("mechanism", ["PPMSdec", "PPMSpbs"])
def test_sp_is_verification_heavy(benchmark, params_by_level, mechanism):
    """Both mechanisms load the SP with Dec (verification) ops, not Enc."""
    if mechanism == "PPMSdec":
        counter = _run_dec(params_by_level(2), payment=1, seed=20)
    else:
        counter = _run_pbs(seed=21)
    assert counter.get("SP", "Dec") > counter.get("SP", "Enc")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Phase breakdown of one PPMSdec deal — where the milliseconds go.

Not a single paper figure, but the decomposition behind Figs. 3 and 5:
one complete deal is withdrawal (blind CL issuance), cash break + token
minting (the JO's ZK work), SP-side verification, and bank-side deposit
verification with serial expansion.  Each phase is benchmarked in
isolation at the same parameter point so their relative weights are
directly comparable in the output table.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.cl_sig import cl_blind_issue, cl_keygen
from repro.core.cashbreak import epcba
from repro.ecash.dec import DECBank, begin_withdrawal, finish_withdrawal
from repro.ecash.spend import create_spend, verify_spend
from repro.ecash.tree import CoinTree
from repro.ecash.wallet import Wallet

LEVEL = 3
PAYMENT = 5  # EPCBA-breaks into 3 coins


@pytest.fixture(scope="module")
def stage(params_by_level):
    """Shared parameter point + a certified coin and its minted tokens."""
    params = params_by_level(LEVEL)
    rng = random.Random(404)
    bank_kp = cl_keygen(params.backend, rng)
    secret, request = begin_withdrawal(params, rng)
    signature = cl_blind_issue(params.backend, bank_kp, request, rng)
    coin = finish_withdrawal(params, bank_kp.public, secret, signature)
    wallet = Wallet(tree=CoinTree(LEVEL), secret=secret)
    nodes = wallet.allocate_amount(epcba(PAYMENT, LEVEL))
    tokens = [
        create_spend(params, bank_kp.public, coin.secret, coin.signature, node, rng)
        for node in nodes
    ]
    return params, bank_kp, coin, tokens


def test_phase_withdrawal(benchmark, stage):
    """Blind withdrawal: request + issuance + unwrap."""
    params, bank_kp, _, _ = stage
    rng = random.Random(1)

    def withdraw():
        secret, request = begin_withdrawal(params, rng)
        signature = cl_blind_issue(params.backend, bank_kp, request, rng)
        return finish_withdrawal(params, bank_kp.public, secret, signature)

    benchmark.pedantic(withdraw, rounds=5, iterations=1)


def test_phase_mint_payment(benchmark, stage):
    """Cash break + spend-token minting for a payment of 5."""
    params, bank_kp, coin, _ = stage
    rng = random.Random(2)

    def mint():
        wallet = Wallet(tree=CoinTree(LEVEL), secret=coin.secret)
        return [
            create_spend(params, bank_kp.public, coin.secret, coin.signature, node, rng)
            for node in wallet.allocate_amount(epcba(PAYMENT, LEVEL))
        ]

    benchmark.pedantic(mint, rounds=5, iterations=1)


def test_phase_sp_verification(benchmark, stage):
    """SP-side verification of all coins in the payment."""
    params, bank_kp, _, tokens = stage
    benchmark.pedantic(
        lambda: all(verify_spend(params, bank_kp.public, t) for t in tokens),
        rounds=5, iterations=1,
    )


def test_phase_bank_deposit(benchmark, stage):
    """Bank-side deposit: verification + serial expansion + credit."""
    params, bank_kp, coin, tokens = stage

    def deposit_all():
        rng = random.Random(3)
        bank = DECBank.create(params, rng)
        bank.keypair = bank_kp
        bank.open_account("sp", 0)
        return sum(bank.deposit("sp", t) for t in tokens)

    result = benchmark.pedantic(deposit_all, rounds=5, iterations=1)
    assert result == PAYMENT

"""Shared parameter-grid helpers for the benchmark modules."""

from __future__ import annotations

__all__ = ["spend_cases"]


def spend_cases(max_level: int) -> list[tuple[int, int]]:
    """(tree level L, node level Ni) grid matching Fig. 3's sweep.

    Every node level 0..L for each L, thinned at the large end so the
    suite stays laptop-sized.
    """
    cases: list[tuple[int, int]] = []
    for level in range(0, max_level + 1, 2):
        for node_level in range(level + 1):
            cases.append((level, node_level))
    return cases

"""Fig. 5 — cumulative executing time over multiple rounds, PPMSdec vs
PPMSpbs.

Paper: "we measured the average of multiple rounds of executing time of
the two mechanisms, both including a setup stage ... With one single
round costing less time, PPMSpbs has a much lower growth rate than
PPMSdec" (their scale: PPMSdec ≈ 25 s at 100 rounds, PPMSpbs far
below).

One *round* is a complete deal: job/labor registration → payment →
data → delivery → verification → deposit, for one JO and one SP.
Accounts (the residents' long-lived bank identities) are created in the
un-timed setup phase — the paper's rounds likewise assume enrolled
residents.  DEC parameters are sized at 112-bit pairing subgroups so
the mechanisms' *relative* cost is faithful: spend-proof work must
dominate plain RSA arithmetic like it does at full security, otherwise
the figure's gap collapses into keygen noise.
"""

from __future__ import annotations

import random

import pytest

from repro.core.ppms_dec import PPMSdecSession
from repro.core.ppms_pbs import PPMSpbsSession
from repro.ecash.dec import setup

ROUNDS = [5, 10, 20, 30]
DEC_LEVEL = 3
RSA_BITS = 768
SECURITY_BITS = 112


@pytest.fixture(scope="module")
def fig5_params(bench_rng):
    return setup(DEC_LEVEL, bench_rng, security_bits=SECURITY_BITS, edge_rounds=8)


def _dec_setup(params, n_rounds: int, seed: int):
    rng = random.Random(seed)
    session = PPMSdecSession(params, rng, rsa_bits=RSA_BITS, break_algorithm="epcba")
    jo = session.new_job_owner("jo", funds=(1 << DEC_LEVEL) * n_rounds)
    sps = [session.new_participant(f"sp-{i}") for i in range(n_rounds)]
    return session, jo, sps


def _dec_rounds(session, jo, sps):
    for i, sp in enumerate(sps):
        session.run_job(jo, [sp], payment=1 + (i % (1 << DEC_LEVEL)))


def _pbs_setup(n_rounds: int, seed: int):
    rng = random.Random(seed)
    session = PPMSpbsSession(rng, rsa_bits=RSA_BITS)
    jo = session.new_job_owner(funds=n_rounds)
    sps = [session.new_participant() for _ in range(n_rounds)]
    return session, jo, sps


def _pbs_rounds(session, jo, sps):
    for sp in sps:
        session.run_job(jo, [sp])


@pytest.mark.parametrize("n_rounds", ROUNDS)
def test_ppmsdec_rounds(benchmark, fig5_params, n_rounds):
    """Fig. 5, "PPMM 1" series (cumulative; account setup un-timed)."""
    benchmark.pedantic(
        _dec_rounds,
        setup=lambda: (_dec_setup(fig5_params, n_rounds, n_rounds), {}),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("n_rounds", ROUNDS)
def test_ppmspbs_rounds(benchmark, n_rounds):
    """Fig. 5, "PPMM 2" series."""
    benchmark.pedantic(
        _pbs_rounds,
        setup=lambda: (_pbs_setup(n_rounds, n_rounds), {}),
        rounds=1,
        iterations=1,
    )


def test_fig5_shape(benchmark, fig5_params):
    """The reproduced claim itself: per-round PPMSpbs ≪ per-round PPMSdec."""
    import time

    n = 5
    session, jo, sps = _dec_setup(fig5_params, n, 99)
    t0 = time.perf_counter()
    _dec_rounds(session, jo, sps)
    dec_per_round = (time.perf_counter() - t0) / n

    session_p, jo_p, sps_p = _pbs_setup(n, 99)
    t0 = time.perf_counter()
    _pbs_rounds(session_p, jo_p, sps_p)
    pbs_per_round = (time.perf_counter() - t0) / n

    assert pbs_per_round < dec_per_round, (
        f"PPMSpbs per-round {pbs_per_round:.3f}s must undercut "
        f"PPMSdec per-round {dec_per_round:.3f}s"
    )
    benchmark.extra_info["dec_per_round_s"] = round(dec_per_round, 4)
    benchmark.extra_info["pbs_per_round_s"] = round(pbs_per_round, 4)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Fig. 3 — executing time of the main (post-setup) steps per node level.

Paper: for every tree level L and every node level Ni, measure the
main protocol steps around one coin node.  Expectation: time grows with
L and with node depth Ni, but with an "acceptable growth rate"
(single-digit→tens of ms in their Java setup).

Our "main steps" for a node at depth Ni are exactly the paper's:
mint a spend token for the node (the e-cash transfer) and verify it —
the per-node work of payment submission + money deposit.  The proof
bundle grows linearly in Ni (one committed-double-log edge per path
step), which is where the growth comes from.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.cl_sig import cl_keygen
from repro.ecash.dec import begin_withdrawal, finish_withdrawal
from repro.ecash.spend import create_spend, verify_spend
from repro.ecash.tree import NodeId

from benchmarks.cases import spend_cases

CASES = spend_cases(max_level=6)


@pytest.mark.parametrize("level,node_level", CASES, ids=[f"L{l}-Ni{n}" for l, n in CASES])
def test_node_spend_and_verify(benchmark, params_by_level, level, node_level):
    """One full spend+verify of the node at depth Ni in a level-L tree."""
    params = params_by_level(level)
    rng = random.Random(level * 100 + node_level)
    bank_kp = cl_keygen(params.backend, rng)
    from repro.crypto.cl_sig import cl_blind_issue

    secret, request = begin_withdrawal(params, rng)
    signature = cl_blind_issue(params.backend, bank_kp, request, rng)
    coin = finish_withdrawal(params, bank_kp.public, secret, signature)
    node = NodeId(node_level, 0)

    def spend_and_verify():
        token = create_spend(
            params, bank_kp.public, coin.secret, coin.signature, node, rng
        )
        assert verify_spend(params, bank_kp.public, token)

    benchmark.pedantic(spend_and_verify, rounds=3, iterations=1)

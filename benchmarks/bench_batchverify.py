"""RLC batch verification: batch-size→throughput curve + warm spawn.

The acceptance experiments for :mod:`repro.crypto.batchverify` and the
shared-table transport:

* **batch curve** — deposit-verify throughput of the sigma-equation
  RLC path (`batch_verify_spends(sigma_batch=True)`) at batch sizes
  1/2/7/32 versus the PR 2 two-stage screen (`sigma_batch=False`)
  on the same tokens.  Gate: **≥ 1.5×** at batch 32.
* **shared warm-up** — the per-worker table warm-up with the parent's
  blob adopted over shared memory versus rebuilt locally (plus the
  end-to-end 2-worker pool spawn walls, recorded).  Gate: adoption
  strictly faster than the local rebuild.

All measured numbers land in ``benchmark.extra_info`` so that
``make batchverify-bench`` persists them (the batch curve is also
merged into ``BENCH_fastexp.json``, the tracked artifact).

``REPRO_BENCH_SMOKE=1`` shrinks workloads and records ratios without
gating on them.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.crypto import fastexp
from repro.crypto.cl_sig import cl_blind_issue, cl_keygen
from repro.ecash.batch import batch_verify_spends
from repro.ecash.dec import begin_withdrawal, finish_withdrawal, setup
from repro.ecash.spend import (
    adopt_verification_tables,
    create_spend,
    export_verification_tables,
    warm_verification_tables,
)
from repro.ecash.tree import NodeId
from repro.service.workers import PooledBackend

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

BATCH_SIZES = (1, 2, 7, 32)
SECURITY_BITS = 48 if SMOKE else 64
N_DISTINCT_TOKENS = 4 if SMOKE else 8
REQUIRED_SPEEDUP_AT_32 = 1.5


@pytest.fixture(autouse=True)
def _default_fastexp_config():
    previous = fastexp.configure()
    fastexp.reset()
    yield
    fastexp.configure(**previous)
    fastexp.reset()


@pytest.fixture(scope="module")
def deposit_stack(bench_rng):
    """One certified coin and a ring of distinct honest spend tokens."""
    params = setup(3, bench_rng, security_bits=SECURITY_BITS, edge_rounds=6)
    keypair = cl_keygen(params.backend, bench_rng)
    secret, request = begin_withdrawal(params, bench_rng)
    signature = cl_blind_issue(params.backend, keypair, request, bench_rng)
    coin = finish_withdrawal(params, keypair.public, secret, signature)
    tokens = [
        create_spend(params, keypair.public, coin.secret, coin.signature,
                     NodeId(3, i), bench_rng)
        for i in range(N_DISTINCT_TOKENS)
    ]
    return params, keypair, tokens


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batch_size_throughput_curve(benchmark, deposit_stack):
    """Acceptance: RLC path ≥ 1.5× the two-stage screen at batch 32."""
    params, keypair, tokens = deposit_stack
    bank_pk = keypair.public
    curve = {}
    for size in BATCH_SIZES:
        batch = [tokens[i % len(tokens)] for i in range(size)]
        legacy_wall = _best_of(lambda: batch_verify_spends(
            params, bank_pk, batch, random.Random(7), sigma_batch=False))
        rlc_wall = _best_of(lambda: batch_verify_spends(
            params, bank_pk, batch, random.Random(7)))
        assert batch_verify_spends(params, bank_pk, batch, random.Random(7)) \
            == [True] * size
        curve[size] = {
            "legacy_tokens_per_s": round(size / legacy_wall, 2),
            "rlc_tokens_per_s": round(size / rlc_wall, 2),
            "speedup": round(legacy_wall / rlc_wall, 3),
        }

    batch32 = [tokens[i % len(tokens)] for i in range(32)]
    benchmark.pedantic(
        lambda: batch_verify_spends(params, bank_pk, batch32, random.Random(7)),
        rounds=3, iterations=1,
    )
    benchmark.extra_info.update(
        security_bits=SECURITY_BITS,
        distinct_tokens=N_DISTINCT_TOKENS,
        batch_curve=curve,
        speedup_at_32=curve[32]["speedup"],
        smoke=SMOKE,
    )
    if not SMOKE:
        assert curve[32]["speedup"] >= REQUIRED_SPEEDUP_AT_32, (
            f"RLC path reached only {curve[32]['speedup']:.2f}x over the "
            f"two-stage screen at batch 32 "
            f"(required {REQUIRED_SPEEDUP_AT_32}x)"
        )


def test_worker_warmup_with_shared_tables(benchmark, deposit_stack):
    """Acceptance: adopting published tables beats rebuilding them.

    The pool initializer either attaches to the parent's blob
    (`adopt_verification_tables`) or re-derives every fixed-base comb
    and Miller table (`warm_verification_tables`) — this is the
    per-worker warm-up the shared transport exists to cut.  Both paths
    are timed from a cold cache, exactly as a freshly spawned worker
    sees them; end-to-end 2-worker pool spawn walls are recorded
    alongside (they carry OS process-start noise, so the gate is on
    the warm-up itself).
    """
    params, keypair, _tokens = deposit_stack
    blob = export_verification_tables(params, keypair.public)

    def local_build() -> None:
        fastexp.reset()
        warm_verification_tables(params, keypair.public)

    def adopt() -> None:
        fastexp.reset()
        adopt_verification_tables(params, blob)

    local_wall = _best_of(local_build)
    benchmark.pedantic(adopt, rounds=3, iterations=1)
    adopt_wall = benchmark.stats.stats.min
    gain = local_wall / adopt_wall

    def spawn(share: bool) -> float | None:
        start = time.perf_counter()
        try:
            backend = PooledBackend(params, keypair.public, processes=2,
                                    share_tables=share)
        except Exception:
            return None
        wall = time.perf_counter() - start
        backend.close()
        return wall

    spawn_shared = spawn(True)
    spawn_unshared = spawn(False)
    benchmark.extra_info.update(
        workers=2,
        security_bits=SECURITY_BITS,
        table_blob_bytes=len(blob),
        local_warmup_s=round(local_wall, 4),
        adopt_warmup_s=round(adopt_wall, 4),
        warmup_gain=round(gain, 3),
        pool_spawn_shared_s=(
            None if spawn_shared is None else round(spawn_shared, 4)
        ),
        pool_spawn_unshared_s=(
            None if spawn_unshared is None else round(spawn_unshared, 4)
        ),
        smoke=SMOKE,
    )
    if not SMOKE:
        assert gain > 1.0, (
            f"adopting shared tables was slower than rebuilding "
            f"({gain:.2f}x)"
        )

"""Ablation benchmarks for the design choices DESIGN.md §6 calls out.

Not paper figures — these quantify the choices a re-implementer makes:

* **Pairing backend** — real Tate pairing vs the paper's own
  "multiplicative→additive" trivial map (Section VI-B).  The toy map is
  orders of magnitude faster, which is presumably why the authors
  mention it; the Tate numbers are what a secure deployment pays.
* **Batch deposit verification** — the random-linear-combination
  screening of :mod:`repro.ecash.batch` vs per-token verification, on
  the bank's unitary-deposit hot path.
* **Edge-proof rounds** — the cut-and-choose soundness knob: spend cost
  vs ``2^-rounds`` soundness error per path edge.
* **Stadler double-log rounds** — same knob for the standalone proof.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.cl_sig import cl_blind_issue, cl_keygen, cl_sign, cl_verify
from repro.crypto.groups import build_tower
from repro.crypto.hashing import Transcript
from repro.crypto.pairing import ToyPairing, TatePairing, generate_curve
from repro.crypto.zkp.double_log import prove_double_log, verify_double_log
from repro.ecash.batch import batch_verify_spends
from repro.ecash.dec import begin_withdrawal, finish_withdrawal, setup
from repro.ecash.spend import DECParams, create_spend, verify_spend
from repro.ecash.tree import NodeId


# ---------------------------------------------------------------------------
# pairing backend ablation
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def backends(bench_rng):
    return {
        "tate": TatePairing(generate_curve(48, bench_rng)),
        "toy": ToyPairing.generate(96, bench_rng),
    }


@pytest.mark.parametrize("backend_name", ["tate", "toy"])
def test_cl_sign_backend(benchmark, backends, backend_name):
    backend = backends[backend_name]
    rng = random.Random(1)
    kp = cl_keygen(backend, rng)
    benchmark(lambda: cl_sign(backend, kp, 123456, rng))


@pytest.mark.parametrize("backend_name", ["tate", "toy"])
def test_cl_verify_backend(benchmark, backends, backend_name):
    backend = backends[backend_name]
    rng = random.Random(2)
    kp = cl_keygen(backend, rng)
    sig = cl_sign(backend, kp, 123456, rng)
    benchmark(lambda: cl_verify(backend, kp.public, 123456, sig))


# ---------------------------------------------------------------------------
# batch verification ablation
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def deposit_batch(params_by_level):
    """A batch of 8 honest unitary deposits from one coin."""
    params = params_by_level(3)
    rng = random.Random(3)
    bank_kp = cl_keygen(params.backend, rng)
    secret, request = begin_withdrawal(params, rng)
    signature = cl_blind_issue(params.backend, bank_kp, request, rng)
    coin = finish_withdrawal(params, bank_kp.public, secret, signature)
    tokens = [
        create_spend(params, bank_kp.public, coin.secret, coin.signature, NodeId(3, i), rng)
        for i in range(8)
    ]
    return params, bank_kp, tokens


def test_deposit_verify_individual(benchmark, deposit_batch):
    params, bank_kp, tokens = deposit_batch
    result = benchmark(
        lambda: [verify_spend(params, bank_kp.public, t) for t in tokens]
    )
    assert all(result)


def test_deposit_verify_batched(benchmark, deposit_batch):
    params, bank_kp, tokens = deposit_batch
    rng = random.Random(4)
    result = benchmark(
        lambda: batch_verify_spends(params, bank_kp.public, tokens, rng)
    )
    assert all(result)


# ---------------------------------------------------------------------------
# soundness-rounds ablations
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("rounds", [8, 16, 32])
def test_spend_cost_vs_edge_rounds(benchmark, bench_rng, rounds):
    """Spend cost scales linearly with the per-edge soundness rounds."""
    params = setup(3, bench_rng, security_bits=48, edge_rounds=rounds)
    rng = random.Random(rounds)
    bank_kp = cl_keygen(params.backend, rng)
    secret, request = begin_withdrawal(params, rng)
    signature = cl_blind_issue(params.backend, bank_kp, request, rng)
    coin = finish_withdrawal(params, bank_kp.public, secret, signature)
    node = NodeId(3, 0)
    benchmark.pedantic(
        lambda: create_spend(params, bank_kp.public, coin.secret, coin.signature, node, rng),
        rounds=3, iterations=1,
    )
    benchmark.extra_info["soundness_error_per_edge"] = f"2^-{rounds}"


@pytest.mark.parametrize("rounds", [16, 32, 64])
def test_double_log_cost_vs_rounds(benchmark, bench_rng, rounds):
    tower = build_tower(2, bench_rng)
    inner, outer = tower.group(0), tower.group(1)
    rng = random.Random(rounds)
    x = rng.randrange(inner.q)
    y = outer.power(pow(inner.g, x, outer.q))

    def prove_and_verify():
        proof = prove_double_log(outer, inner.g, inner.q, y, x, rng,
                                 Transcript(b"bench"), rounds=rounds)
        assert verify_double_log(outer, inner.g, inner.q, y, proof, Transcript(b"bench"))

    benchmark.pedantic(prove_and_verify, rounds=3, iterations=1)

"""Table II — communication traffic per party and mechanism.

Paper's claimed rows (bytes; minimum level and node index for PPMSdec):

    scheme    JO in   JO out   SP in   SP out   total
    PPMSdec     664     4864    3840     2176   11.27 kB
    PPMSpbs     256      784     768      384    2.14 kB

We run one complete round of each mechanism over the byte-accounted
transport, print the measured table next to the paper's, and assert
the reproduced *shape*: PPMSdec's total traffic dominates PPMSpbs's by
a clear factor (the paper's ratio is ≈ 5.3×), and within PPMSdec the
payment path (JO output / SP input) carries the bulk.
"""

from __future__ import annotations

import random

import pytest

from repro.core.ppms_dec import PPMSdecSession
from repro.core.ppms_pbs import PPMSpbsSession
from repro.metrics.traffic import TrafficMeter, format_traffic_table

from benchmarks.conftest import BENCH_RSA_BITS

PAPER_TABLE2 = {
    "PPMSdec": {"JO": (664, 4864), "SP": (3840, 2176), "total_kb": 11.27},
    "PPMSpbs": {"JO": (256, 784), "SP": (768, 384), "total_kb": 2.14},
}


def _run_dec(params, seed: int) -> TrafficMeter:
    rng = random.Random(seed)
    session = PPMSdecSession(params, rng, rsa_bits=BENCH_RSA_BITS, break_algorithm="pcba")
    jo = session.new_job_owner("jo", funds=1 << params.tree_level)
    sp = session.new_participant("sp")
    session.run_job(jo, [sp], payment=1 << params.tree_level)  # minimal node index
    return session.transport.meter


def _run_pbs(seed: int) -> TrafficMeter:
    rng = random.Random(seed)
    session = PPMSpbsSession(rng, rsa_bits=BENCH_RSA_BITS)
    jo = session.new_job_owner(funds=1)
    sp = session.new_participant()
    session.run_job(jo, [sp])
    return session.transport.meter


def test_table2_report(benchmark, params_by_level, capsys):
    """Regenerate Table II and assert the traffic ordering."""
    params = params_by_level(2)
    meter_dec = _run_dec(params, seed=1)
    meter_pbs = _run_pbs(seed=2)

    lines = ["", "=== Table II: communication traffic (measured) ==="]
    for name, meter in (("PPMSdec", meter_dec), ("PPMSpbs", meter_pbs)):
        lines.append(format_traffic_table(meter, ["JO", "SP", "MA"], title=f"[{name}]"))
        claim = PAPER_TABLE2[name]
        lines.append(
            f"paper claims: JO in/out {claim['JO']}, SP in/out {claim['SP']}, "
            f"total {claim['total_kb']} kB"
        )
    with capsys.disabled():
        print("\n".join(lines))

    benchmark.pedantic(lambda: _run_pbs(seed=3), rounds=1, iterations=1)

    # reproduced shape: DEC total clearly dominates PBS total
    ratio = meter_dec.total_bytes() / meter_pbs.total_bytes()
    assert ratio > 2.0, f"expected PPMSdec ≫ PPMSpbs, measured ratio {ratio:.2f}"

    # within PPMSdec the encrypted payment dominates: JO output > JO input
    assert meter_dec.output_bytes("JO") > meter_dec.input_bytes("JO")
    # the SP receives (payment) more than it sends before deposits
    assert meter_dec.input_bytes("SP") > 0


def test_dec_traffic_grows_with_node_depth(benchmark, params_by_level):
    """Deeper spend nodes ⇒ longer proofs ⇒ more bytes on the wire."""
    params = params_by_level(4)
    shallow = _run_dec_payment(params, payment=1 << params.tree_level, seed=5)
    deep = _run_dec_payment(params, payment=1, seed=6)
    assert deep > shallow
    benchmark.extra_info["bytes_shallow"] = shallow
    benchmark.extra_info["bytes_deep"] = deep
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _run_dec_payment(params, payment: int, seed: int) -> int:
    rng = random.Random(seed)
    session = PPMSdecSession(params, rng, rsa_bits=BENCH_RSA_BITS, break_algorithm="pcba")
    jo = session.new_job_owner("jo", funds=1 << params.tree_level)
    sp = session.new_participant("sp")
    session.run_job(jo, [sp], payment=payment)
    return session.transport.meter.total_bytes()


def test_pbs_traffic_flat_across_rounds(benchmark):
    """PPMSpbs per-round traffic is constant — no per-round state growth."""
    totals = []
    rng = random.Random(9)
    session = PPMSpbsSession(rng, rsa_bits=BENCH_RSA_BITS)
    jo = session.new_job_owner(funds=10)
    prev = 0
    for _ in range(4):
        sp = session.new_participant()
        session.run_job(jo, [sp])
        now = session.transport.meter.total_bytes()
        totals.append(now - prev)
        prev = now
    spread = max(totals) - min(totals)
    assert spread < max(totals) * 0.1, f"per-round traffic varies: {totals}"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
